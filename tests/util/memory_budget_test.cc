#include "src/util/memory_budget.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/fault_injection.h"

namespace emdbg {
namespace {

class MemoryBudgetTest : public ::testing::Test {
 protected:
  MemoryBudgetTest() { FaultInjection::DisarmAll(); }
  ~MemoryBudgetTest() override { FaultInjection::DisarmAll(); }
};

TEST_F(MemoryBudgetTest, UnlimitedBudgetIsPureAccounting) {
  MemoryBudget b;
  EXPECT_TRUE(b.unlimited());
  EXPECT_EQ(b.remaining(), SIZE_MAX);
  ASSERT_TRUE(b.Reserve(1'000'000'000).ok());
  EXPECT_EQ(b.used(), 1'000'000'000u);
  EXPECT_EQ(b.peak(), 1'000'000'000u);
  b.Release(1'000'000'000);
  EXPECT_EQ(b.used(), 0u);
  EXPECT_EQ(b.peak(), 1'000'000'000u);  // peak is sticky
}

TEST_F(MemoryBudgetTest, LimitDeniesAndReleasesMakeRoom) {
  MemoryBudget b(1000, "t");
  ASSERT_TRUE(b.Reserve(600).ok());
  ASSERT_TRUE(b.Reserve(400).ok());
  EXPECT_EQ(b.remaining(), 0u);
  Status denied = b.Reserve(1);
  EXPECT_EQ(denied.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(denied.message().find("'t'"), std::string::npos);
  b.Release(400);
  EXPECT_TRUE(b.Reserve(400).ok());
  EXPECT_EQ(b.stats().denials, 1u);
  EXPECT_EQ(b.used(), 1000u);
}

TEST_F(MemoryBudgetTest, ReleaseNeverUnderflows) {
  MemoryBudget b(100, "t");
  ASSERT_TRUE(b.Reserve(50).ok());
  b.Release(500);  // clamped
  EXPECT_EQ(b.used(), 0u);
  EXPECT_TRUE(b.Reserve(100).ok());
}

TEST_F(MemoryBudgetTest, ChildQuotaChargesParentAndRollsBackOnParentDenial) {
  MemoryBudget root(1000, "root");
  MemoryBudget quota(&root, 800, "s1");
  ASSERT_TRUE(quota.Reserve(700).ok());
  EXPECT_EQ(root.used(), 700u);
  // Fits the child's limit (800) but not the parent's remaining 300: the
  // child's local charge must roll back so its accounting stays exact.
  Status denied = quota.Reserve(400);
  EXPECT_EQ(denied.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(quota.used(), 700u);
  EXPECT_EQ(root.used(), 700u);
  // Over the child's own limit, parent untouched.
  EXPECT_FALSE(quota.Reserve(200).ok());
  EXPECT_EQ(root.used(), 700u);
  quota.Release(700);
  EXPECT_EQ(root.used(), 0u);
}

TEST_F(MemoryBudgetTest, SiblingQuotasIsolateTenants) {
  MemoryBudget root(0, "root");  // unlimited root, limited children
  MemoryBudget q1(&root, 100, "s1");
  MemoryBudget q2(&root, 100, "s2");
  ASSERT_TRUE(q1.Reserve(100).ok());
  EXPECT_FALSE(q1.Reserve(1).ok());   // s1 is full...
  EXPECT_TRUE(q2.Reserve(100).ok());  // ...but s2 is unaffected
  EXPECT_EQ(root.used(), 200u);
}

TEST_F(MemoryBudgetTest, ChildDestructorReturnsLeakedBytesToParent) {
  MemoryBudget root(1000, "root");
  {
    MemoryBudget quota(&root, 500, "leaky");
    ASSERT_TRUE(quota.Reserve(300).ok());
    // No Release: the consumer "died". The child's destructor must give
    // the bytes back so the shared budget is not permanently shrunk.
  }
  EXPECT_EQ(root.used(), 0u);
}

TEST_F(MemoryBudgetTest, ReclaimersRunInPriorityThenColdnessOrder) {
  MemoryBudget b(100, "t");
  ASSERT_TRUE(b.Reserve(100).ok());
  std::vector<std::string> order;
  // Register out of order: memo shards (latest class) first.
  b.AddReclaimer(MemoryBudget::kReclaimMemoShards, "memo",
                 [&](size_t) -> size_t {
                   order.push_back("memo");
                   b.Release(40);
                   return 40;
                 });
  const uint64_t tok_id =
      b.AddReclaimer(MemoryBudget::kReclaimTokenCaches, "tok-hot",
                     [&](size_t) -> size_t {
                       order.push_back("tok-hot");
                       return 0;
                     });
  b.AddReclaimer(MemoryBudget::kReclaimTokenCaches, "tok-cold",
                 [&](size_t) -> size_t {
                   order.push_back("tok-cold");
                   return 0;
                 });
  b.AddReclaimer(MemoryBudget::kReclaimIdCaches, "ids",
                 [&](size_t) -> size_t {
                   order.push_back("ids");
                   return 0;
                 });
  b.Touch(tok_id);  // tok-hot is now warmer than tok-cold
  ASSERT_TRUE(b.Reserve(30).ok());
  // Cheapest class first (ids), then token caches coldest-first, then the
  // memo — which frees enough, so the walk stops there.
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "ids");
  EXPECT_EQ(order[1], "tok-cold");
  EXPECT_EQ(order[2], "tok-hot");
  EXPECT_EQ(order[3], "memo");
  EXPECT_GE(b.stats().reclaim_runs, 1u);
  EXPECT_EQ(b.stats().reclaimed_bytes, 40u);
}

TEST_F(MemoryBudgetTest, ReclaimStopsEarlyOnceTheRequestFits) {
  MemoryBudget b(100, "t");
  ASSERT_TRUE(b.Reserve(100).ok());
  int second_ran = 0;
  b.AddReclaimer(MemoryBudget::kReclaimIdCaches, "first",
                 [&](size_t) -> size_t {
                   b.Release(50);
                   return 50;
                 });
  b.AddReclaimer(MemoryBudget::kReclaimTokenCaches, "second",
                 [&](size_t) -> size_t {
                   second_ran++;
                   return 0;
                 });
  ASSERT_TRUE(b.Reserve(20).ok());
  EXPECT_EQ(second_ran, 0);  // the first eviction already made room
}

TEST_F(MemoryBudgetTest, RemovedReclaimerNeverRuns) {
  MemoryBudget b(10, "t");
  ASSERT_TRUE(b.Reserve(10).ok());
  int ran = 0;
  const uint64_t id = b.AddReclaimer(
      MemoryBudget::kReclaimIdCaches, "gone", [&](size_t) -> size_t {
        ran++;
        return 0;
      });
  b.RemoveReclaimer(id);
  EXPECT_FALSE(b.Reserve(5).ok());
  EXPECT_EQ(ran, 0);
}

TEST_F(MemoryBudgetTest, TryReserveNeverRunsReclaimers) {
  MemoryBudget b(100, "t");
  ASSERT_TRUE(b.Reserve(100).ok());
  int ran = 0;
  b.AddReclaimer(MemoryBudget::kReclaimIdCaches, "r",
                 [&](size_t) -> size_t {
                   ran++;
                   b.Release(100);
                   return 100;
                 });
  EXPECT_EQ(b.TryReserve(50).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ran, 0);  // a reclaiming TryReserve would deadlock its caller
  b.Release(60);
  EXPECT_TRUE(b.TryReserve(50).ok());
}

TEST_F(MemoryBudgetTest, TryReservePropagatesToParentWithRollback) {
  MemoryBudget root(100, "root");
  MemoryBudget quota(&root, 0, "s");
  ASSERT_TRUE(root.Reserve(80).ok());
  EXPECT_FALSE(quota.TryReserve(50).ok());
  EXPECT_EQ(quota.used(), 0u);  // local charge rolled back
  EXPECT_TRUE(quota.TryReserve(20).ok());
  EXPECT_EQ(root.used(), 100u);
}

TEST_F(MemoryBudgetTest, MemReserveFaultDeniesEvenWithRoom) {
  MemoryBudget b(0, "t");
  FaultInjection::Plan plan;
  plan.every = 1;
  FaultInjection::Arm("mem.reserve", plan);
  Status s = b.Reserve(1);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("injected"), std::string::npos);
  EXPECT_EQ(b.used(), 0u);
  FaultInjection::DisarmAll();
  EXPECT_TRUE(b.Reserve(1).ok());
}

TEST_F(MemoryBudgetTest, TryReserveSkipsTheFaultSite) {
  MemoryBudget b(0, "t");
  FaultInjection::Plan plan;
  plan.every = 1;
  FaultInjection::Arm("mem.reserve", plan);
  // Billing true-up from inside reclaim callbacks must not be failable.
  EXPECT_TRUE(b.TryReserve(64).ok());
  FaultInjection::DisarmAll();
}

TEST_F(MemoryBudgetTest, ReservationRaiiReleasesOnScopeExit) {
  MemoryBudget b(100, "t");
  {
    Result<MemoryReservation> r = MemoryReservation::Make(&b, 60);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->bytes(), 60u);
    EXPECT_EQ(b.used(), 60u);
    Result<MemoryReservation> denied = MemoryReservation::Make(&b, 60);
    EXPECT_FALSE(denied.ok());
  }
  EXPECT_EQ(b.used(), 0u);
  // Null budget: a no-op reservation that always succeeds.
  Result<MemoryReservation> null_r = MemoryReservation::Make(nullptr, 1 << 30);
  ASSERT_TRUE(null_r.ok());
  EXPECT_EQ(null_r->bytes(), 0u);
}

TEST_F(MemoryBudgetTest, ConcurrentReserveReleaseStaysConsistent) {
  MemoryBudget b(1 << 20, "t");
  std::atomic<uint64_t> granted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        if (b.Reserve(512).ok()) {
          granted.fetch_add(1, std::memory_order_relaxed);
          b.Release(512);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(b.used(), 0u);
  EXPECT_GT(granted.load(), 0u);
  EXPECT_LE(b.peak(), size_t{1} << 20);  // the limit was never breached
}

}  // namespace
}  // namespace emdbg
