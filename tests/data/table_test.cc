#include "src/data/table.h"

#include <gtest/gtest.h>

namespace emdbg {
namespace {

Table SmallTable() {
  Table t("t", Schema({"name", "city"}));
  EXPECT_TRUE(t.AppendRow({"alice", "madison"}).ok());
  EXPECT_TRUE(t.AppendRow({"bob", "verona"}).ok());
  return t;
}

TEST(TableTest, BasicAccess) {
  const Table t = SmallTable();
  EXPECT_EQ(t.name(), "t");
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_attributes(), 2u);
  EXPECT_EQ(t.Value(0, 0), "alice");
  EXPECT_EQ(t.Value(1, 1), "verona");
  EXPECT_EQ(t.row(0), (Row{"alice", "madison"}));
}

TEST(TableTest, ArityMismatchRejected) {
  Table t("t", Schema({"a", "b"}));
  const Status s = t.AppendRow({"only-one"});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableTest, ColumnView) {
  const Table t = SmallTable();
  const auto col = t.Column(1);
  ASSERT_EQ(col.size(), 2u);
  EXPECT_EQ(col[0], "madison");
  EXPECT_EQ(col[1], "verona");
}

TEST(TableTest, PayloadBytes) {
  const Table t = SmallTable();
  EXPECT_EQ(t.PayloadBytes(),
            std::string("alice").size() + std::string("madison").size() +
                std::string("bob").size() + std::string("verona").size());
}

TEST(TableTest, EmptyTable) {
  const Table t("empty", Schema({"x"}));
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_EQ(t.PayloadBytes(), 0u);
  EXPECT_TRUE(t.Column(0).empty());
}

}  // namespace
}  // namespace emdbg
