#include "src/data/generator.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace emdbg {
namespace {

using generator_internal::MakeWord;
using generator_internal::Perturb;

TEST(MakeWordTest, ProducesLowercaseNonEmpty) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const std::string w = MakeWord(rng, 2);
    EXPECT_FALSE(w.empty());
    for (char c : w) {
      EXPECT_TRUE(c >= 'a' && c <= 'z') << w;
    }
  }
}

TEST(MakeWordTest, MoreSyllablesMakesLongerWordsOnAverage) {
  Rng rng(2);
  size_t len1 = 0;
  size_t len3 = 0;
  for (int i = 0; i < 200; ++i) {
    len1 += MakeWord(rng, 1).size();
    len3 += MakeWord(rng, 3).size();
  }
  EXPECT_GT(len3, len1 * 2);
}

TEST(PerturbTest, ChangesValueMostly) {
  Rng rng(3);
  int changed = 0;
  for (int i = 0; i < 100; ++i) {
    if (Perturb("sony camera dsc", AttrKind::kTitle, rng) !=
        "sony camera dsc") {
      ++changed;
    }
  }
  EXPECT_GT(changed, 60);
}

TEST(PerturbTest, YearJitterIsSmall) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const std::string out = Perturb("2005", AttrKind::kYear, rng);
    const int year = std::stoi(out);
    EXPECT_GE(year, 2004);
    EXPECT_LE(year, 2006);
  }
}

TEST(PerturbTest, PriceJitterStaysClose) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const std::string out = Perturb("100.00", AttrKind::kPrice, rng);
    const double price = std::stod(out);
    EXPECT_GE(price, 94.0);
    EXPECT_LE(price, 106.0);
  }
}

TEST(GenerateDatasetTest, ShapesMatchProfile) {
  const GeneratedDataset ds = testing::SmallProducts();
  EXPECT_EQ(ds.a.num_rows(), 60u);
  EXPECT_EQ(ds.b.num_rows(), 120u);
  EXPECT_EQ(ds.a.schema().names(),
            (std::vector<std::string>{"title", "modelno", "brand",
                                      "category", "price"}));
  EXPECT_EQ(ds.a.schema(), ds.b.schema());
  EXPECT_GE(ds.candidates.size(), 900u * 9 / 10);
  EXPECT_EQ(ds.labels.size(), ds.candidates.size());
}

TEST(GenerateDatasetTest, TwinCountMatchesFraction) {
  const GeneratedDataset ds = testing::SmallProducts();
  EXPECT_EQ(ds.true_matches.size(), 30u);  // 0.5 * min(60, 120)
}

TEST(GenerateDatasetTest, EveryTrueMatchIsACandidateAndLabeled) {
  const GeneratedDataset ds = testing::SmallProducts();
  std::unordered_set<uint64_t> match_keys;
  for (const PairId& m : ds.true_matches) {
    match_keys.insert((static_cast<uint64_t>(m.a) << 32) | m.b);
  }
  size_t labeled = 0;
  for (size_t i = 0; i < ds.candidates.size(); ++i) {
    const PairId& p = ds.candidates.pair(i);
    const bool is_match =
        match_keys.count((static_cast<uint64_t>(p.a) << 32) | p.b) > 0;
    EXPECT_EQ(ds.labels.Get(i), is_match);
    if (is_match) ++labeled;
  }
  EXPECT_EQ(labeled, ds.true_matches.size());
}

TEST(GenerateDatasetTest, PairIndicesInRange) {
  const GeneratedDataset ds = testing::SmallProducts();
  for (const PairId& p : ds.candidates.pairs()) {
    EXPECT_LT(p.a, ds.a.num_rows());
    EXPECT_LT(p.b, ds.b.num_rows());
  }
}

TEST(GenerateDatasetTest, NoDuplicateCandidates) {
  const GeneratedDataset ds = testing::SmallProducts();
  std::unordered_set<uint64_t> seen;
  for (const PairId& p : ds.candidates.pairs()) {
    EXPECT_TRUE(
        seen.insert((static_cast<uint64_t>(p.a) << 32) | p.b).second);
  }
}

TEST(GenerateDatasetTest, DeterministicForSeed) {
  const GeneratedDataset x = testing::SmallProducts(123);
  const GeneratedDataset y = testing::SmallProducts(123);
  EXPECT_EQ(x.a.rows(), y.a.rows());
  EXPECT_EQ(x.b.rows(), y.b.rows());
  EXPECT_EQ(x.candidates.pairs(), y.candidates.pairs());
}

TEST(GenerateDatasetTest, DifferentSeedsDiffer) {
  const GeneratedDataset x = testing::SmallProducts(123);
  const GeneratedDataset y = testing::SmallProducts(456);
  EXPECT_NE(x.a.rows(), y.a.rows());
}

TEST(GenerateDatasetTest, TwinsAreSimilarButDirty) {
  const GeneratedDataset ds = testing::SmallProducts();
  // Twins share the same latent entity: titles should mostly overlap even
  // after perturbation. Check at least one exact attribute agreement
  // across all twins on average.
  size_t exact_agreements = 0;
  for (const PairId& m : ds.true_matches) {
    for (AttrIndex attr = 0; attr < ds.a.num_attributes(); ++attr) {
      if (!ds.a.Value(m.a, attr).empty() &&
          ds.a.Value(m.a, attr) == ds.b.Value(m.b, attr)) {
        ++exact_agreements;
      }
    }
  }
  EXPECT_GT(exact_agreements, ds.true_matches.size());  // > 1 per twin avg
}

TEST(GenerateDatasetTest, MatchRateComputed) {
  const GeneratedDataset ds = testing::SmallProducts();
  EXPECT_NEAR(ds.MatchRate(),
              static_cast<double>(ds.true_matches.size()) /
                  static_cast<double>(ds.candidates.size()),
              1e-12);
}

}  // namespace
}  // namespace emdbg
