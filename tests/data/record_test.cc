#include "src/data/record.h"

#include <gtest/gtest.h>

namespace emdbg {
namespace {

TEST(SchemaTest, FindAndContains) {
  const Schema s({"title", "modelno", "price"});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.name(0), "title");
  EXPECT_TRUE(s.Contains("price"));
  EXPECT_FALSE(s.Contains("brand"));
  auto idx = s.Find("modelno");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
}

TEST(SchemaTest, FindMissingIsNotFound) {
  const Schema s({"a"});
  EXPECT_EQ(s.Find("b").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, Equality) {
  EXPECT_EQ(Schema({"a", "b"}), Schema({"a", "b"}));
  EXPECT_FALSE(Schema({"a", "b"}) == Schema({"b", "a"}));
}

TEST(SchemaTest, EmptySchema) {
  const Schema s;
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.Contains("x"));
}

TEST(SchemaTest, CaseSensitiveNames) {
  const Schema s({"Title"});
  EXPECT_TRUE(s.Contains("Title"));
  EXPECT_FALSE(s.Contains("title"));
}

}  // namespace
}  // namespace emdbg
