#include "src/data/candidate_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "src/util/csv.h"

namespace emdbg {
namespace {

class CandidateIoTest : public ::testing::Test {
 protected:
  CandidateIoTest()
      // Per-test path: ctest runs suite members as parallel processes.
      : path_(::testing::TempDir() + "/emdbg_candidates_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name() +
              ".csv") {}
  ~CandidateIoTest() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(CandidateIoTest, RoundTripWithLabels) {
  CandidateSet pairs({{0, 5}, {1, 3}, {7, 7}});
  PairLabels labels(3);
  labels.Set(1);
  ASSERT_TRUE(SaveCandidatesCsv(pairs, &labels, path_).ok());
  auto loaded = LoadCandidatesCsv(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->has_labels);
  EXPECT_EQ(loaded->candidates.pairs(), pairs.pairs());
  EXPECT_EQ(loaded->labels, labels);
}

TEST_F(CandidateIoTest, RoundTripWithoutLabels) {
  CandidateSet pairs({{2, 9}});
  ASSERT_TRUE(SaveCandidatesCsv(pairs, nullptr, path_).ok());
  auto loaded = LoadCandidatesCsv(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->has_labels);
  EXPECT_EQ(loaded->candidates.pairs(), pairs.pairs());
}

TEST_F(CandidateIoTest, LabelSizeMismatchRejected) {
  CandidateSet pairs({{0, 0}});
  PairLabels labels(5);
  EXPECT_EQ(SaveCandidatesCsv(pairs, &labels, path_).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CandidateIoTest, BadHeaderRejected) {
  ASSERT_TRUE(WriteStringToFile(path_, "x,y\n1,2\n").ok());
  EXPECT_EQ(LoadCandidatesCsv(path_).status().code(),
            StatusCode::kParseError);
}

TEST_F(CandidateIoTest, BadLabelRejected) {
  ASSERT_TRUE(WriteStringToFile(path_, "a,b,label\n1,2,7\n").ok());
  EXPECT_EQ(LoadCandidatesCsv(path_).status().code(),
            StatusCode::kParseError);
}

TEST_F(CandidateIoTest, BadIndicesRejected) {
  ASSERT_TRUE(WriteStringToFile(path_, "a,b\n-1,2\n").ok());
  EXPECT_EQ(LoadCandidatesCsv(path_).status().code(),
            StatusCode::kParseError);
  ASSERT_TRUE(WriteStringToFile(path_, "a,b\nxyz,2\n").ok());
  EXPECT_EQ(LoadCandidatesCsv(path_).status().code(),
            StatusCode::kParseError);
}

TEST_F(CandidateIoTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadCandidatesCsv("/no/such/file").status().code(),
            StatusCode::kIoError);
}

TEST_F(CandidateIoTest, EmptyCandidateSetRoundTrips) {
  ASSERT_TRUE(SaveCandidatesCsv(CandidateSet(), nullptr, path_).ok());
  auto loaded = LoadCandidatesCsv(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->candidates.empty());
}

}  // namespace
}  // namespace emdbg
