/// Parameterized sweep over every generated attribute kind: values render
/// non-trivially, twins stay recognizably similar under perturbation, and
/// every perturbation path terminates with a sane string.

#include <gtest/gtest.h>

#include "src/data/generator.h"
#include "src/text/similarity_registry.h"

namespace emdbg {
namespace {

using generator_internal::Perturb;

class AttrKindTest : public ::testing::TestWithParam<AttrKind> {
 protected:
  /// Generates a tiny single-attribute dataset of the tested kind.
  GeneratedDataset Generate(double dirtiness) {
    DatasetProfile p;
    p.name = "kind_test";
    p.table_a_rows = 40;
    p.table_b_rows = 40;
    p.candidate_pairs = 300;
    p.twin_fraction = 0.8;
    p.attributes = {{"value", GetParam(), dirtiness, 0.0}};
    p.num_categories = 4;
    p.seed = 2025;
    return GenerateDataset(p);
  }
};

TEST_P(AttrKindTest, RendersNonEmptyValues) {
  const GeneratedDataset ds = Generate(0.0);
  size_t non_empty = 0;
  for (uint32_t row = 0; row < ds.a.num_rows(); ++row) {
    if (!ds.a.Value(row, 0).empty()) ++non_empty;
  }
  EXPECT_EQ(non_empty, ds.a.num_rows());
}

TEST_P(AttrKindTest, CleanTwinsAgreeExactly) {
  const GeneratedDataset ds = Generate(0.0);
  for (const PairId& m : ds.true_matches) {
    EXPECT_EQ(ds.a.Value(m.a, 0), ds.b.Value(m.b, 0));
  }
}

TEST_P(AttrKindTest, DirtyTwinsRemainSimilar) {
  const GeneratedDataset ds = Generate(0.5);
  ASSERT_FALSE(ds.true_matches.empty());
  double total_sim = 0.0;
  for (const PairId& m : ds.true_matches) {
    total_sim += ComputeSimilarity(SimFunction::kTrigram,
                                   ds.a.Value(m.a, 0), ds.b.Value(m.b, 0));
  }
  const double mean_sim =
      total_sim / static_cast<double>(ds.true_matches.size());
  // Even at 50% dirtiness, twins should be far more similar than chance.
  EXPECT_GT(mean_sim, 0.5);
}

TEST_P(AttrKindTest, PerturbTerminatesAndStaysPrintable) {
  Rng rng(3);
  const GeneratedDataset ds = Generate(0.0);
  for (uint32_t row = 0; row < 10; ++row) {
    std::string value = ds.a.Value(row, 0);
    for (int round = 0; round < 20; ++round) {
      value = Perturb(value, GetParam(), rng);
      for (const char c : value) {
        EXPECT_GE(c, 0x20) << "non-printable character after perturbation";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, AttrKindTest,
    ::testing::Values(AttrKind::kTitle, AttrKind::kName, AttrKind::kBrand,
                      AttrKind::kCategory, AttrKind::kModelNo,
                      AttrKind::kPhone, AttrKind::kStreet, AttrKind::kCity,
                      AttrKind::kZip, AttrKind::kPrice, AttrKind::kYear),
    [](const ::testing::TestParamInfo<AttrKind>& info) {
      switch (info.param) {
        case AttrKind::kTitle: return std::string("title");
        case AttrKind::kName: return std::string("name");
        case AttrKind::kBrand: return std::string("brand");
        case AttrKind::kCategory: return std::string("category");
        case AttrKind::kModelNo: return std::string("modelno");
        case AttrKind::kPhone: return std::string("phone");
        case AttrKind::kStreet: return std::string("street");
        case AttrKind::kCity: return std::string("city");
        case AttrKind::kZip: return std::string("zip");
        case AttrKind::kPrice: return std::string("price");
        case AttrKind::kYear: return std::string("year");
      }
      return std::string("unknown");
    });

}  // namespace
}  // namespace emdbg
