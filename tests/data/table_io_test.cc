#include "src/data/table_io.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace emdbg {
namespace {

TEST(TableIoTest, ParseWithHeader) {
  auto table = TableFromCsv("name,city\nalice,madison\nbob,verona\n", "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2u);
  EXPECT_EQ(table->schema().names(),
            (std::vector<std::string>{"name", "city"}));
  EXPECT_EQ(table->Value(1, 0), "bob");
}

TEST(TableIoTest, QuotedFields) {
  auto table = TableFromCsv("name,note\n\"Smith, John\",\"says \"\"hi\"\"\"\n",
                            "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->Value(0, 0), "Smith, John");
  EXPECT_EQ(table->Value(0, 1), "says \"hi\"");
}

TEST(TableIoTest, EmptyInputIsParseError) {
  EXPECT_EQ(TableFromCsv("", "t").status().code(), StatusCode::kParseError);
}

TEST(TableIoTest, ArityMismatchIsParseError) {
  auto table = TableFromCsv("a,b\n1\n", "t");
  EXPECT_EQ(table.status().code(), StatusCode::kParseError);
}

TEST(TableIoTest, HeaderOnlyGivesEmptyTable) {
  auto table = TableFromCsv("a,b\n", "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 0u);
}

TEST(TableIoTest, RoundTripThroughText) {
  Table t("orig", Schema({"x", "y"}));
  ASSERT_TRUE(t.AppendRow({"1", "with,comma"}).ok());
  ASSERT_TRUE(t.AppendRow({"", "line\nbreak"}).ok());
  auto parsed = TableFromCsv(TableToCsv(t), "copy");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), 2u);
  EXPECT_EQ(parsed->Value(0, 1), "with,comma");
  EXPECT_EQ(parsed->Value(1, 0), "");
  EXPECT_EQ(parsed->Value(1, 1), "line\nbreak");
}

TEST(TableIoTest, FileRoundTrip) {
  Table t("disk", Schema({"k", "v"}));
  ASSERT_TRUE(t.AppendRow({"a", "1"}).ok());
  const std::string path = ::testing::TempDir() + "/emdbg_table_test.csv";
  ASSERT_TRUE(SaveTableCsv(t, path).ok());
  auto loaded = LoadTableCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_rows(), 1u);
  EXPECT_EQ(loaded->Value(0, 1), "1");
  std::remove(path.c_str());
}

TEST(TableIoTest, LoadMissingFileIsIoError) {
  EXPECT_EQ(LoadTableCsv("/no/such/file.csv").status().code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace emdbg
