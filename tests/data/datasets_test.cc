#include "src/data/datasets.h"

#include <gtest/gtest.h>

namespace emdbg {
namespace {

TEST(DatasetsTest, AllSixProfilesExist) {
  const auto profiles = AllPaperDatasetProfiles();
  ASSERT_EQ(profiles.size(), 6u);
  EXPECT_EQ(profiles[0].name, "products");
  EXPECT_EQ(profiles[5].name, "video_games");
}

TEST(DatasetsTest, ProductsMatchesTable2Shape) {
  const DatasetProfile p = PaperDatasetProfile(DatasetId::kProducts);
  EXPECT_EQ(p.table_a_rows, 2554u);
  EXPECT_EQ(p.table_b_rows, 22074u);
  EXPECT_EQ(p.candidate_pairs, 291649u);
}

TEST(DatasetsTest, AllShapesMatchTable2) {
  struct Row {
    DatasetId id;
    size_t a, b, pairs;
  };
  const Row rows[] = {
      {DatasetId::kRestaurants, 3279, 25376, 24965},
      {DatasetId::kBooks, 3099, 3560, 28540},
      {DatasetId::kBreakfast, 3669, 4165, 73297},
      {DatasetId::kMovies, 5526, 4373, 17725},
      {DatasetId::kVideoGames, 3742, 6739, 22697},
  };
  for (const Row& r : rows) {
    const DatasetProfile p = PaperDatasetProfile(r.id);
    EXPECT_EQ(p.table_a_rows, r.a) << p.name;
    EXPECT_EQ(p.table_b_rows, r.b) << p.name;
    EXPECT_EQ(p.candidate_pairs, r.pairs) << p.name;
  }
}

TEST(DatasetsTest, ScaleProfile) {
  DatasetProfile p = PaperDatasetProfile(DatasetId::kProducts);
  const DatasetProfile scaled = ScaleProfile(p, 0.1);
  EXPECT_EQ(scaled.table_a_rows, 255u);
  EXPECT_EQ(scaled.table_b_rows, 2207u);
  EXPECT_EQ(scaled.candidate_pairs, 29164u);
  // Attributes and seed unchanged.
  EXPECT_EQ(scaled.attributes.size(), p.attributes.size());
  EXPECT_EQ(scaled.seed, p.seed);
}

TEST(DatasetsTest, ScaleNeverGoesToZero) {
  DatasetProfile p = PaperDatasetProfile(DatasetId::kBooks);
  const DatasetProfile scaled = ScaleProfile(p, 1e-9);
  EXPECT_GE(scaled.table_a_rows, 1u);
  EXPECT_GE(scaled.candidate_pairs, 1u);
}

TEST(DatasetsTest, NameRoundTrip) {
  for (int i = 0; i < kNumDatasets; ++i) {
    const DatasetId id = static_cast<DatasetId>(i);
    auto parsed = DatasetIdFromName(DatasetName(id));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, id);
  }
  EXPECT_FALSE(DatasetIdFromName("nope").ok());
}

TEST(DatasetsTest, GenerateScaledRestaurants) {
  const DatasetProfile p =
      ScaleProfile(PaperDatasetProfile(DatasetId::kRestaurants), 0.02);
  const GeneratedDataset ds = GenerateDataset(p);
  EXPECT_EQ(ds.a.num_rows(), p.table_a_rows);
  EXPECT_EQ(ds.b.num_rows(), p.table_b_rows);
  EXPECT_GT(ds.true_matches.size(), 0u);
  const std::string desc = DescribeDataset(p, ds);
  EXPECT_NE(desc.find("restaurants"), std::string::npos);
}

}  // namespace
}  // namespace emdbg
