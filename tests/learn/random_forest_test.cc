#include "src/learn/random_forest.h"

#include <gtest/gtest.h>

namespace emdbg {
namespace {

struct Dataset {
  FeatureMatrix features;
  std::vector<char> labels;
};

/// Noisy OR-of-ANDs: label = (f0>0.6 && f1>0.6) || f2 > 0.9.
Dataset MakeDataset(size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset out;
  out.features.resize(3);
  for (size_t i = 0; i < n; ++i) {
    const float a = static_cast<float>(rng.NextDouble());
    const float b = static_cast<float>(rng.NextDouble());
    const float c = static_cast<float>(rng.NextDouble());
    out.features[0].push_back(a);
    out.features[1].push_back(b);
    out.features[2].push_back(c);
    out.labels.push_back((a > 0.6f && b > 0.6f) || c > 0.9f ? 1 : 0);
  }
  return out;
}

TEST(RandomForestTest, LearnsStructuredConcept) {
  const Dataset train = MakeDataset(800, 1);
  ForestConfig config;
  config.num_trees = 15;
  config.seed = 2;
  const RandomForest forest =
      RandomForest::Train(train.features, train.labels, config);
  EXPECT_EQ(forest.num_trees(), 15u);

  const Dataset test = MakeDataset(400, 3);
  size_t correct = 0;
  for (size_t i = 0; i < 400; ++i) {
    const std::vector<float> row{test.features[0][i], test.features[1][i],
                                 test.features[2][i]};
    if (forest.Classify(row) == (test.labels[i] == 1)) ++correct;
  }
  EXPECT_GT(correct, 360u);  // > 90% held-out accuracy
}

TEST(RandomForestTest, PredictIsAverageOfTrees) {
  const Dataset train = MakeDataset(200, 4);
  ForestConfig config;
  config.num_trees = 5;
  config.seed = 5;
  const RandomForest forest =
      RandomForest::Train(train.features, train.labels, config);
  const std::vector<float> row{0.9f, 0.9f, 0.1f};
  double sum = 0.0;
  for (const DecisionTree& tree : forest.trees()) sum += tree.Predict(row);
  EXPECT_NEAR(forest.Predict(row), sum / 5.0, 1e-12);
}

TEST(RandomForestTest, DeterministicForSeed) {
  const Dataset train = MakeDataset(300, 6);
  ForestConfig config;
  config.num_trees = 8;
  config.seed = 7;
  const RandomForest f1 =
      RandomForest::Train(train.features, train.labels, config);
  const RandomForest f2 =
      RandomForest::Train(train.features, train.labels, config);
  for (double x = 0.0; x <= 1.0; x += 0.1) {
    const std::vector<float> row{static_cast<float>(x), 0.5f, 0.5f};
    EXPECT_DOUBLE_EQ(f1.Predict(row), f2.Predict(row));
  }
}

TEST(RandomForestTest, EmptyTrainingGivesEmptyForest) {
  const RandomForest forest = RandomForest::Train({}, {}, ForestConfig{});
  EXPECT_EQ(forest.num_trees(), 0u);
  EXPECT_DOUBLE_EQ(forest.Predict({}), 0.0);
}

TEST(RandomForestTest, OobAccuracyTracksHeldOutAccuracy) {
  const Dataset train = MakeDataset(600, 10);
  ForestConfig config;
  config.num_trees = 20;
  config.seed = 11;
  const RandomForest::Diagnostics diag =
      RandomForest::TrainWithDiagnostics(train.features, train.labels,
                                         config);
  ASSERT_EQ(diag.forest.num_trees(), 20u);
  // OOB accuracy should roughly match held-out accuracy for this concept
  // (> 85%, and below-or-near training accuracy).
  EXPECT_GT(diag.oob_accuracy, 0.85);
  EXPECT_LE(diag.oob_accuracy, 1.0);
  const Dataset test = MakeDataset(400, 12);
  size_t correct = 0;
  for (size_t i = 0; i < 400; ++i) {
    const std::vector<float> row{test.features[0][i], test.features[1][i],
                                 test.features[2][i]};
    if (diag.forest.Classify(row) == (test.labels[i] == 1)) ++correct;
  }
  const double holdout = static_cast<double>(correct) / 400.0;
  EXPECT_NEAR(diag.oob_accuracy, holdout, 0.08);
}

TEST(RandomForestTest, FeatureImportanceIdentifiesInformativeColumns) {
  // Add a pure-noise feature column; it must receive the least
  // importance, and importances must sum to ~1.
  Dataset train = MakeDataset(600, 13);
  Rng rng(14);
  train.features.push_back({});
  for (size_t i = 0; i < 600; ++i) {
    train.features[3].push_back(static_cast<float>(rng.NextDouble()));
  }
  ForestConfig config;
  config.num_trees = 15;
  config.seed = 15;
  const RandomForest::Diagnostics diag =
      RandomForest::TrainWithDiagnostics(train.features, train.labels,
                                         config);
  ASSERT_EQ(diag.feature_importance.size(), 4u);
  double sum = 0.0;
  for (const double v : diag.feature_importance) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // The noise column loses to each of the real signal columns.
  for (size_t f = 0; f < 3; ++f) {
    EXPECT_GT(diag.feature_importance[f], diag.feature_importance[3])
        << "feature " << f;
  }
}

TEST(RandomForestTest, ImportanceOfStumplessForestIsZeroVector) {
  // Constant features → no splits → importances all zero.
  FeatureMatrix features{{0.5f, 0.5f, 0.5f, 0.5f}};
  std::vector<char> labels{0, 1, 0, 1};
  ForestConfig config;
  config.num_trees = 3;
  config.seed = 16;
  const RandomForest forest =
      RandomForest::Train(features, labels, config);
  const auto importance = forest.FeatureImportance(1);
  ASSERT_EQ(importance.size(), 1u);
  EXPECT_DOUBLE_EQ(importance[0], 0.0);
}

TEST(RandomForestTest, BootstrapFractionReducesTreeSize) {
  const Dataset train = MakeDataset(500, 8);
  ForestConfig small;
  small.num_trees = 3;
  small.bootstrap_fraction = 0.1;
  small.seed = 9;
  const RandomForest forest =
      RandomForest::Train(train.features, train.labels, small);
  for (const DecisionTree& tree : forest.trees()) {
    EXPECT_LE(tree.nodes().front().num_samples, 50u);
  }
}

}  // namespace
}  // namespace emdbg
