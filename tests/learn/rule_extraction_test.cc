#include "src/learn/rule_extraction.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/core/memo_matcher.h"
#include "src/core/sampler.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

TEST(RuleExtractionTest, ExtractsPositivePathsAsCanonicalRules) {
  // Train on a concept where f0 matters: label = f0 > 0.5.
  Rng rng(1);
  FeatureMatrix features(2);
  std::vector<char> labels;
  for (size_t i = 0; i < 500; ++i) {
    const float a = static_cast<float>(rng.NextDouble());
    const float b = static_cast<float>(rng.NextDouble());
    features[0].push_back(a);
    features[1].push_back(b);
    labels.push_back(a > 0.5f ? 1 : 0);
  }
  ForestConfig config;
  config.num_trees = 5;
  config.seed = 2;
  const RandomForest forest =
      RandomForest::Train(features, labels, config);
  const std::vector<FeatureId> columns{10, 20};
  const std::vector<Rule> rules =
      ExtractRules(forest, columns, RuleExtractionConfig{});
  ASSERT_FALSE(rules.empty());
  for (const Rule& r : rules) {
    EXPECT_FALSE(r.empty());
    EXPECT_TRUE(r.IsCanonical());
    for (const Predicate& p : r.predicates()) {
      EXPECT_TRUE(p.feature == 10u || p.feature == 20u);
    }
  }
  // At least one rule must lower-bound feature 10 (the informative one).
  bool has_lower_on_f10 = false;
  for (const Rule& r : rules) {
    for (const Predicate& p : r.predicates()) {
      if (p.feature == 10u && IsLowerBound(p.op) && p.threshold > 0.3 &&
          p.threshold < 0.7) {
        has_lower_on_f10 = true;
      }
    }
  }
  EXPECT_TRUE(has_lower_on_f10);
}

TEST(RuleExtractionTest, PurityFilterRemovesMixedLeaves) {
  Rng rng(3);
  FeatureMatrix features(1);
  std::vector<char> labels;
  for (size_t i = 0; i < 300; ++i) {
    const float v = static_cast<float>(rng.NextDouble());
    features[0].push_back(v);
    // Noisy labels: 20% flipped.
    const bool base = v > 0.5f;
    labels.push_back(rng.Bernoulli(0.2) ? !base : base);
  }
  ForestConfig config;
  config.num_trees = 4;
  config.tree.max_depth = 2;  // shallow -> impure leaves
  config.seed = 4;
  const RandomForest forest =
      RandomForest::Train(features, labels, config);
  RuleExtractionConfig strict;
  strict.min_purity = 1.0;
  RuleExtractionConfig loose;
  loose.min_purity = 0.5;
  const auto strict_rules = ExtractRules(forest, {0}, strict);
  const auto loose_rules = ExtractRules(forest, {0}, loose);
  EXPECT_LE(strict_rules.size(), loose_rules.size());
}

TEST(RuleExtractionTest, DedupCollapsesIdenticalRules) {
  Rng rng(5);
  FeatureMatrix features(1);
  std::vector<char> labels;
  for (size_t i = 0; i < 200; ++i) {
    // Perfectly separable at 0.5 -> every tree learns the same split.
    const float v = i < 100 ? 0.25f : 0.75f;
    features[0].push_back(v);
    labels.push_back(i < 100 ? 0 : 1);
  }
  ForestConfig config;
  config.num_trees = 10;
  config.seed = 6;
  const RandomForest forest =
      RandomForest::Train(features, labels, config);
  RuleExtractionConfig no_dedup;
  no_dedup.dedup = false;
  RuleExtractionConfig with_dedup;
  const auto all = ExtractRules(forest, {0}, no_dedup);
  const auto unique = ExtractRules(forest, {0}, with_dedup);
  EXPECT_LT(unique.size(), all.size());
  EXPECT_GE(unique.size(), 1u);
}

TEST(RuleExtractionTest, EndToEndLearnedRulesMatchTwins) {
  // The full pipeline on the generated dataset: compute a feature matrix
  // on a labeled sample, train a forest, extract rules, and verify the
  // resulting matching function finds a reasonable share of true matches.
  const GeneratedDataset ds = testing::SmallProducts();
  FeatureCatalog catalog(ds.a.schema(), ds.b.schema());
  std::vector<FeatureId> feats;
  for (SimFunction fn :
       {SimFunction::kJaccard, SimFunction::kTrigram, SimFunction::kJaro}) {
    feats.push_back(*catalog.InternByName(fn, "title", "title"));
  }
  feats.push_back(
      *catalog.InternByName(SimFunction::kExactMatch, "modelno", "modelno"));
  PairContext ctx(ds.a, ds.b, catalog);

  // Labeled sample = all candidates (the dataset is small).
  const FeatureMatrix matrix = BuildFeatureMatrix(ctx, ds.candidates, feats);
  ASSERT_EQ(matrix.size(), feats.size());
  ASSERT_EQ(matrix[0].size(), ds.candidates.size());
  std::vector<char> labels(ds.candidates.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = ds.labels.Get(i) ? 1 : 0;
  }
  ForestConfig config;
  config.num_trees = 12;
  config.seed = 7;
  const RandomForest forest = RandomForest::Train(matrix, labels, config);
  const std::vector<Rule> rules =
      ExtractRules(forest, feats, RuleExtractionConfig{});
  ASSERT_FALSE(rules.empty());

  MatchingFunction fn;
  for (const Rule& r : rules) fn.AddRule(r);
  MemoMatcher matcher;
  const MatchResult result = matcher.Run(fn, ds.candidates, ctx);
  const QualityMetrics m = Evaluate(result.matches, ds.labels);
  EXPECT_GT(m.recall, 0.5);
  EXPECT_GT(m.precision, 0.5);
}

}  // namespace
}  // namespace emdbg
