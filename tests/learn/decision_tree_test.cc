#include "src/learn/decision_tree.h"

#include <gtest/gtest.h>

namespace emdbg {
namespace {

/// Linearly separable 1-D data: label = value > 0.5.
struct Separable {
  FeatureMatrix features;
  std::vector<char> labels;
  std::vector<size_t> rows;
};

Separable MakeSeparable(size_t n, Rng& rng) {
  Separable out;
  out.features.resize(1);
  for (size_t i = 0; i < n; ++i) {
    const float v = static_cast<float>(rng.NextDouble());
    out.features[0].push_back(v);
    out.labels.push_back(v > 0.5f ? 1 : 0);
    out.rows.push_back(i);
  }
  return out;
}

TEST(DecisionTreeTest, LearnsSeparableData) {
  Rng rng(1);
  const Separable data = MakeSeparable(200, rng);
  TreeConfig config;
  const DecisionTree tree =
      DecisionTree::Train(data.features, data.labels, data.rows, config,
                          rng);
  ASSERT_FALSE(tree.empty());
  size_t correct = 0;
  for (size_t i = 0; i < 200; ++i) {
    const double score = tree.Predict({data.features[0][i]});
    if ((score >= 0.5) == (data.labels[i] == 1)) ++correct;
  }
  EXPECT_GT(correct, 195u);
}

TEST(DecisionTreeTest, PureDataIsSingleLeaf) {
  Rng rng(2);
  FeatureMatrix features{{0.1f, 0.2f, 0.3f}};
  std::vector<char> labels{1, 1, 1};
  const DecisionTree tree =
      DecisionTree::Train(features, labels, {0, 1, 2}, TreeConfig{}, rng);
  EXPECT_EQ(tree.nodes().size(), 1u);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_DOUBLE_EQ(tree.Predict({0.15f}), 1.0);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  Rng rng(3);
  const Separable data = MakeSeparable(300, rng);
  TreeConfig config;
  config.max_depth = 1;
  const DecisionTree tree =
      DecisionTree::Train(data.features, data.labels, data.rows, config,
                          rng);
  // Depth 1 -> at most 3 nodes (root + 2 leaves).
  EXPECT_LE(tree.nodes().size(), 3u);
}

TEST(DecisionTreeTest, RespectsMinSamplesLeaf) {
  Rng rng(4);
  const Separable data = MakeSeparable(100, rng);
  TreeConfig config;
  config.min_samples_leaf = 40;
  const DecisionTree tree =
      DecisionTree::Train(data.features, data.labels, data.rows, config,
                          rng);
  for (const auto& node : tree.nodes()) {
    if (node.feature < 0) {
      EXPECT_GE(node.num_samples, 40u);
    }
  }
}

TEST(DecisionTreeTest, TwoFeatureAndProblem) {
  // label = (f0 > 0.5) AND (f1 > 0.5): needs two levels.
  Rng rng(5);
  FeatureMatrix features(2);
  std::vector<char> labels;
  std::vector<size_t> rows;
  for (size_t i = 0; i < 400; ++i) {
    const float x = static_cast<float>(rng.NextDouble());
    const float y = static_cast<float>(rng.NextDouble());
    features[0].push_back(x);
    features[1].push_back(y);
    labels.push_back(x > 0.5f && y > 0.5f ? 1 : 0);
    rows.push_back(i);
  }
  const DecisionTree tree =
      DecisionTree::Train(features, labels, rows, TreeConfig{}, rng);
  size_t correct = 0;
  for (size_t i = 0; i < 400; ++i) {
    const double score = tree.Predict({features[0][i], features[1][i]});
    if ((score >= 0.5) == (labels[i] == 1)) ++correct;
  }
  EXPECT_GT(correct, 380u);
}

TEST(DecisionTreeTest, EmptyInputsGiveEmptyTree) {
  Rng rng(6);
  const DecisionTree t1 =
      DecisionTree::Train({}, {}, {}, TreeConfig{}, rng);
  EXPECT_TRUE(t1.empty());
  EXPECT_DOUBLE_EQ(t1.Predict({}), 0.0);
  FeatureMatrix features{{0.5f}};
  const DecisionTree t2 =
      DecisionTree::Train(features, {1}, {}, TreeConfig{}, rng);
  EXPECT_TRUE(t2.empty());
}

TEST(DecisionTreeTest, ConstantFeatureCannotSplit) {
  Rng rng(7);
  FeatureMatrix features{{0.5f, 0.5f, 0.5f, 0.5f}};
  std::vector<char> labels{0, 1, 0, 1};
  const DecisionTree tree =
      DecisionTree::Train(features, labels, {0, 1, 2, 3}, TreeConfig{},
                          rng);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_DOUBLE_EQ(tree.Predict({0.5f}), 0.5);
}

}  // namespace
}  // namespace emdbg
