/// Integration test of the guided-debugging workflow: the explain /
/// near-miss / advisor / simplifier aids must compose into a loop that
/// measurably improves a rule set — the end-to-end story behind the
/// paper's Fig. 1 with our extensions closing the "inspect" step.

#include <memory>

#include <gtest/gtest.h>

#include "src/core/debug_session.h"
#include "src/core/explain.h"
#include "src/core/rule_simplifier.h"
#include "src/core/threshold_advisor.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

class GuidedDebuggingTest : public ::testing::Test {
 protected:
  GuidedDebuggingTest() : ds_(testing::SmallProducts()) {}

  GeneratedDataset ds_;
};

TEST_F(GuidedDebuggingTest, AdvisorDrivenThresholdFixImprovesF1) {
  DebugSession session(ds_.a, ds_.b, ds_.candidates);
  // A rule with a deliberately bad (too strict) threshold.
  auto rid = session.AddRuleText("r: jaccard(title, title) >= 0.95");
  ASSERT_TRUE(rid.ok());
  const QualityMetrics before = session.Score(ds_.labels);

  // Ask the advisor where the threshold should be, apply its suggestion
  // incrementally, and re-score.
  const Rule* rule = session.function().RuleById(*rid);
  const PredicateId pid = rule->predicate(0).id;
  auto advice =
      AdviseThreshold(session.function(), *rid, pid, session.candidates(),
                      ds_.labels, session.context());
  ASSERT_TRUE(advice.ok());
  EXPECT_GT(advice->best().f1, before.f1);
  ASSERT_TRUE(
      session.SetThreshold(*rid, pid, advice->best().threshold).ok());
  const QualityMetrics after = session.Score(ds_.labels);
  EXPECT_GT(after.f1, before.f1);
  EXPECT_NEAR(after.f1, advice->best().f1, 1e-9);
}

TEST_F(GuidedDebuggingTest, NearMissPointsAtTheBlockingPredicate) {
  DebugSession session(ds_.a, ds_.b, ds_.candidates);
  auto rid = session.AddRuleText(
      "r: exact_match(category, category) >= 1 AND "
      "jaccard(title, title) >= 0.99");
  ASSERT_TRUE(rid.ok());
  session.Run();

  // Find a false negative (true match that the rule missed).
  size_t fn_index = ds_.candidates.size();
  const Bitmap& matches = session.Run();
  for (size_t i = 0; i < ds_.candidates.size(); ++i) {
    if (ds_.labels.Get(i) && !matches.Get(i)) {
      fn_index = i;
      break;
    }
  }
  ASSERT_LT(fn_index, ds_.candidates.size()) << "no false negative found";

  // The near-miss analysis should blame the title threshold for at least
  // some missed twins (same category, title slightly below 0.99).
  const auto misses =
      FindNearMisses(session.function(), ds_.candidates.pair(fn_index),
                     session.context());
  ASSERT_FALSE(misses.empty());
  EXPECT_EQ(misses[0].rule_id, *rid);
  // The explanation must agree with the matcher's verdict.
  const MatchExplanation ex =
      ExplainPair(session.function(), ds_.candidates.pair(fn_index),
                  session.context());
  EXPECT_FALSE(ex.matched);
}

TEST_F(GuidedDebuggingTest, SimplifierFindingIsActionable) {
  DebugSession session(ds_.a, ds_.b, ds_.candidates);
  auto rid = session.AddRuleText(
      "r: jaccard(title, title) >= 0.6 AND jaccard(title, title) >= 0.3");
  ASSERT_TRUE(rid.ok());
  const Bitmap before = session.Run();

  const auto findings =
      AnalyzeRules(session.function(), session.catalog());
  ASSERT_EQ(findings.size(), 1u);
  ASSERT_EQ(findings[0].kind, FindingKind::kRedundantPredicate);
  // Applying the suggested removal must not change the matches.
  ASSERT_TRUE(
      session.RemovePredicate(findings[0].rule_id, findings[0].predicate_id)
          .ok());
  EXPECT_EQ(session.Run(), before);
  EXPECT_TRUE(AnalyzeRules(session.function(), session.catalog()).empty());
}

TEST_F(GuidedDebuggingTest, FullLoopConvergesToHighQuality) {
  // Iterate advisor-guided fixes over two rules until F1 stops improving;
  // the loop should land clearly above the naive starting point.
  DebugSession session(ds_.a, ds_.b, ds_.candidates);
  auto r1 = session.AddRuleText("r1: jaccard(title, title) >= 0.9");
  auto r2 = session.AddRuleText(
      "r2: exact_match(modelno, modelno) >= 1 AND "
      "trigram(title, title) >= 0.9");
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  double best_f1 = session.Score(ds_.labels).f1;
  const double initial_f1 = best_f1;

  for (int iteration = 0; iteration < 4; ++iteration) {
    bool improved = false;
    for (const RuleId rid : {*r1, *r2}) {
      const Rule* rule = session.function().RuleById(rid);
      ASSERT_NE(rule, nullptr);
      for (size_t k = 0; k < rule->size(); ++k) {
        const PredicateId pid = rule->predicate(k).id;
        auto advice = AdviseThreshold(session.function(), rid, pid,
                                      session.candidates(), ds_.labels,
                                      session.context());
        ASSERT_TRUE(advice.ok());
        if (advice->best().f1 > best_f1 + 1e-9) {
          ASSERT_TRUE(
              session.SetThreshold(rid, pid, advice->best().threshold)
                  .ok());
          best_f1 = session.Score(ds_.labels).f1;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  EXPECT_GT(best_f1, initial_f1);
  EXPECT_GT(best_f1, 0.9);
}

}  // namespace
}  // namespace emdbg
