#include "src/core/cost_model.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/core/memo_matcher.h"
#include "src/core/rule_generator.h"
#include "src/core/sampler.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest() : ds_(testing::SmallProducts()) {
    catalog_ = FeatureCatalog(ds_.a.schema(), ds_.b.schema());
    catalog_.InternAllSameAttribute();
    ctx_ = std::make_unique<PairContext>(ds_.a, ds_.b, catalog_);
    Rng rng(5);
    sample_ = SamplePairs(ds_.candidates, 0.25, rng);
  }

  FeatureId Feat(SimFunction fn, const char* attr) {
    return *catalog_.InternByName(fn, attr, attr);
  }

  GeneratedDataset ds_;
  FeatureCatalog catalog_;
  std::unique_ptr<PairContext> ctx_;
  CandidateSet sample_;
};

TEST_F(CostModelTest, MeasuresFeatureCosts) {
  const FeatureId cheap = Feat(SimFunction::kExactMatch, "modelno");
  const FeatureId expensive = Feat(SimFunction::kSoftTfIdf, "title");
  const CostModel model =
      CostModel::Estimate({cheap, expensive}, *ctx_, sample_);
  EXPECT_TRUE(model.HasFeature(cheap));
  EXPECT_TRUE(model.HasFeature(expensive));
  EXPECT_GT(model.FeatureCost(expensive), model.FeatureCost(cheap));
  EXPECT_GT(model.lookup_cost_us(), 0.0);
  // Lookups are far cheaper than any real feature computation.
  EXPECT_LT(model.lookup_cost_us(), model.FeatureCost(expensive));
}

TEST_F(CostModelTest, SelectivityMatchesSampleExactly) {
  const FeatureId f = Feat(SimFunction::kJaccard, "title");
  const CostModel model = CostModel::Estimate({f}, *ctx_, sample_);
  const Predicate p{f, CompareOp::kGe, 0.5};
  // Recompute by hand over the sample.
  size_t pass = 0;
  for (size_t s = 0; s < sample_.size(); ++s) {
    if (ctx_->ComputeFeature(f, sample_.pair(s)) >= 0.5) ++pass;
  }
  EXPECT_NEAR(model.PredicateSelectivity(p),
              static_cast<double>(pass) / sample_.size(), 1.0 / 256.0);
}

TEST_F(CostModelTest, SelectivityMonotoneInThreshold) {
  const FeatureId f = Feat(SimFunction::kTrigram, "title");
  const CostModel model = CostModel::Estimate({f}, *ctx_, sample_);
  double prev = 1.0;
  for (double t : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const double sel = model.PredicateSelectivity({f, CompareOp::kGe, t});
    EXPECT_LE(sel, prev + 1e-12);
    prev = sel;
  }
}

TEST_F(CostModelTest, JointSelectivityAtMostMarginal) {
  const FeatureId f1 = Feat(SimFunction::kJaccard, "title");
  const FeatureId f2 = Feat(SimFunction::kExactMatch, "brand");
  const CostModel model = CostModel::Estimate({f1, f2}, *ctx_, sample_);
  const Predicate p1{f1, CompareOp::kGe, 0.3};
  const Predicate p2{f2, CompareOp::kGe, 1.0};
  const double joint = model.JointSelectivity({p1, p2});
  EXPECT_LE(joint, model.PredicateSelectivity(p1) + 1e-12);
  EXPECT_LE(joint, model.PredicateSelectivity(p2) + 1e-12);
  EXPECT_DOUBLE_EQ(model.JointSelectivity({}), 1.0);
}

TEST_F(CostModelTest, PrefixAndReach) {
  const FeatureId f1 = Feat(SimFunction::kJaccard, "title");
  const FeatureId f2 = Feat(SimFunction::kExactMatch, "brand");
  const CostModel model = CostModel::Estimate({f1, f2}, *ctx_, sample_);
  Rule r;
  r.AddPredicate({f1, CompareOp::kGe, 0.3});
  r.AddPredicate({f2, CompareOp::kGe, 1.0});
  EXPECT_DOUBLE_EQ(model.PrefixSelectivity(r, 0), 1.0);
  EXPECT_DOUBLE_EQ(model.PrefixSelectivity(r, 1),
                   model.PredicateSelectivity(r.predicate(0)));
  // Reach of the second feature = selectivity of everything before it.
  EXPECT_DOUBLE_EQ(model.ReachProbability(r, f2),
                   model.PrefixSelectivity(r, 1));
  EXPECT_DOUBLE_EQ(model.ReachProbability(r, f1), 1.0);
}

TEST_F(CostModelTest, RuleCostDecreasesWithSelectiveFirstPredicate) {
  const FeatureId cheap_selective = Feat(SimFunction::kExactMatch, "modelno");
  const FeatureId costly = Feat(SimFunction::kSoftTfIdf, "title");
  const CostModel model =
      CostModel::Estimate({cheap_selective, costly}, *ctx_, sample_);
  Rule good;
  good.AddPredicate({cheap_selective, CompareOp::kGe, 1.0});
  good.AddPredicate({costly, CompareOp::kGe, 0.5});
  Rule bad;
  bad.AddPredicate({costly, CompareOp::kGe, 0.5});
  bad.AddPredicate({cheap_selective, CompareOp::kGe, 1.0});
  EXPECT_LT(model.RuleCostNoMemo(good), model.RuleCostNoMemo(bad));
}

TEST_F(CostModelTest, CacheReducesRuleCost) {
  const FeatureId f = Feat(SimFunction::kTfIdf, "title");
  const CostModel model = CostModel::Estimate({f}, *ctx_, sample_);
  Rule r;
  r.AddPredicate({f, CompareOp::kGe, 0.5});
  CacheProbabilities cold;
  CacheProbabilities warm{{f, 1.0}};
  EXPECT_LT(model.RuleCostWithCache(r, warm),
            model.RuleCostWithCache(r, cold));
  // Fully warm cache costs exactly one lookup.
  EXPECT_NEAR(model.RuleCostWithCache(r, warm), model.lookup_cost_us(),
              1e-9);
}

TEST_F(CostModelTest, UpdateCacheFollowsAlphaRecursion) {
  const FeatureId f1 = Feat(SimFunction::kJaccard, "title");
  const FeatureId f2 = Feat(SimFunction::kExactMatch, "brand");
  const CostModel model = CostModel::Estimate({f1, f2}, *ctx_, sample_);
  Rule r;
  r.AddPredicate({f1, CompareOp::kGe, 0.3});
  r.AddPredicate({f2, CompareOp::kGe, 1.0});
  CacheProbabilities cache;
  model.UpdateCacheAfterRule(r, cache);
  // First feature always reached -> alpha = 1.
  EXPECT_DOUBLE_EQ(cache[f1], 1.0);
  // Second feature reached with the first predicate's selectivity.
  EXPECT_DOUBLE_EQ(cache[f2], model.ReachProbability(r, f2));
  // Second application: alpha' = alpha + (1-alpha)*reach.
  const double alpha = cache[f2];
  model.UpdateCacheAfterRule(r, cache);
  EXPECT_NEAR(cache[f2], alpha + (1 - alpha) * model.ReachProbability(r, f2),
              1e-12);
}

TEST_F(CostModelTest, MemoModelCheaperThanNoMemoWhenFeaturesShared) {
  // Two rules sharing an expensive feature: the memo-aware model must
  // predict a lower cost.
  const FeatureId f = Feat(SimFunction::kSoftTfIdf, "title");
  const FeatureId g = Feat(SimFunction::kExactMatch, "brand");
  const CostModel model = CostModel::Estimate({f, g}, *ctx_, sample_);
  MatchingFunction fn;
  Rule r1;
  r1.AddPredicate({f, CompareOp::kGe, 0.9});
  r1.AddPredicate({g, CompareOp::kGe, 1.0});
  fn.AddRule(r1);
  Rule r2;
  r2.AddPredicate({f, CompareOp::kGe, 0.7});
  fn.AddRule(r2);
  EXPECT_LT(model.FunctionCostWithMemo(fn), model.FunctionCostNoMemo(fn));
  EXPECT_GT(model.FunctionCostWithMemo(fn), 0.0);
}

TEST_F(CostModelTest, SimulatedCostAgreesWithAnalyticOnIndependentRules) {
  // Rules over disjoint features: the alpha recursion is exact, so the
  // simulated and analytic with-memo costs should agree closely.
  const FeatureId f = Feat(SimFunction::kJaccard, "title");
  const FeatureId g = Feat(SimFunction::kExactMatch, "modelno");
  const CostModel model = CostModel::Estimate({f, g}, *ctx_, sample_);
  MatchingFunction fn;
  Rule r1;
  r1.AddPredicate({f, CompareOp::kGe, 0.6});
  fn.AddRule(r1);
  Rule r2;
  r2.AddPredicate({g, CompareOp::kGe, 1.0});
  fn.AddRule(r2);
  const double analytic = model.FunctionCostWithMemo(fn);
  const double simulated = model.SimulatedCostWithMemo(fn);
  EXPECT_NEAR(analytic, simulated, 0.25 * std::max(analytic, simulated));
}

TEST_F(CostModelTest, EstimateRuntimeScalesLinearly) {
  const FeatureId f = Feat(SimFunction::kJaccard, "title");
  const CostModel model = CostModel::Estimate({f}, *ctx_, sample_);
  MatchingFunction fn;
  Rule r;
  r.AddPredicate({f, CompareOp::kGe, 0.5});
  fn.AddRule(r);
  const double t1 = model.EstimateRuntimeMs(fn, 1000, true);
  const double t2 = model.EstimateRuntimeMs(fn, 2000, true);
  EXPECT_NEAR(t2, 2 * t1, 1e-9);
}

TEST_F(CostModelTest, EnsureFeatureExtendsModel) {
  const FeatureId f = Feat(SimFunction::kJaccard, "title");
  CostModel model = CostModel::Estimate({f}, *ctx_, sample_);
  const FeatureId g = Feat(SimFunction::kJaro, "modelno");
  EXPECT_FALSE(model.HasFeature(g));
  model.EnsureFeature(g, *ctx_);
  EXPECT_TRUE(model.HasFeature(g));
  EXPECT_GT(model.FeatureCost(g), 0.0);
}

TEST_F(CostModelTest, EstimateForFunctionCoversUsedFeatures) {
  Rng rng(17);
  RuleGeneratorConfig config;
  config.num_rules = 5;
  config.seed = 17;
  RuleGenerator gen(*ctx_, sample_, config);
  const MatchingFunction fn = gen.Generate();
  const CostModel model =
      CostModel::EstimateForFunction(fn, *ctx_, sample_);
  for (const FeatureId f : fn.UsedFeatures()) {
    EXPECT_TRUE(model.HasFeature(f));
  }
}

}  // namespace
}  // namespace emdbg
