#include <algorithm>
#include <memory>
#include <numeric>

#include <gtest/gtest.h>

#include "src/core/greedy_cost_optimizer.h"
#include "src/core/greedy_reduction_optimizer.h"
#include "src/core/memo_matcher.h"
#include "src/core/ordering.h"
#include "src/core/rule_generator.h"
#include "src/core/sampler.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

class GreedyOptimizersTest : public ::testing::Test {
 protected:
  GreedyOptimizersTest() : ds_(testing::SmallProducts()) {
    catalog_ = FeatureCatalog(ds_.a.schema(), ds_.b.schema());
    catalog_.InternAllSameAttribute();
    ctx_ = std::make_unique<PairContext>(ds_.a, ds_.b, catalog_);
    Rng rng(3);
    sample_ = SamplePairs(ds_.candidates, 0.25, rng);
  }

  FeatureId Feat(SimFunction fn, const char* attr) {
    return *catalog_.InternByName(fn, attr, attr);
  }

  GeneratedDataset ds_;
  FeatureCatalog catalog_;
  std::unique_ptr<PairContext> ctx_;
  CandidateSet sample_;
};

TEST_F(GreedyOptimizersTest, OrdersArePermutations) {
  RuleGeneratorConfig config;
  config.num_rules = 12;
  config.seed = 4;
  RuleGenerator gen(*ctx_, sample_, config);
  MatchingFunction fn = gen.Generate();
  const CostModel model =
      CostModel::EstimateForFunction(fn, *ctx_, sample_);
  for (const auto& order :
       {GreedyCostOrder(fn, model), GreedyReductionOrder(fn, model)}) {
    ASSERT_EQ(order.size(), fn.num_rules());
    std::vector<size_t> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    std::vector<size_t> expected(fn.num_rules());
    std::iota(expected.begin(), expected.end(), size_t{0});
    EXPECT_EQ(sorted, expected);
  }
}

TEST_F(GreedyOptimizersTest, Algorithm5PicksCheapestRuleFirst) {
  const FeatureId cheap = Feat(SimFunction::kExactMatch, "modelno");
  const FeatureId costly = Feat(SimFunction::kSoftTfIdf, "title");
  const CostModel model =
      CostModel::Estimate({cheap, costly}, *ctx_, sample_);
  MatchingFunction fn;
  Rule expensive;
  expensive.AddPredicate({costly, CompareOp::kGe, 0.9});
  fn.AddRule(expensive);
  Rule cheap_rule;
  cheap_rule.AddPredicate({cheap, CompareOp::kGe, 1.0});
  const RuleId cheap_id = fn.AddRule(cheap_rule);
  const auto order = GreedyCostOrder(fn, model);
  EXPECT_EQ(fn.rule(order[0]).id(), cheap_id);
}

TEST_F(GreedyOptimizersTest, Algorithm6PrefersSharedFeatureRules) {
  // r_shared uses an expensive feature that two later rules reuse;
  // r_lonely uses an equally expensive feature nobody else needs.
  // Algorithm 6 should schedule r_shared before r_lonely.
  const FeatureId shared = Feat(SimFunction::kSoftTfIdf, "title");
  const FeatureId lonely = Feat(SimFunction::kTfIdf, "modelno");
  const CostModel model =
      CostModel::Estimate({shared, lonely}, *ctx_, sample_);
  MatchingFunction fn;
  Rule r_lonely;
  r_lonely.AddPredicate({lonely, CompareOp::kGe, 0.9});
  const RuleId lonely_id = fn.AddRule(r_lonely);
  Rule r_shared;
  r_shared.AddPredicate({shared, CompareOp::kGe, 0.9});
  const RuleId shared_id = fn.AddRule(r_shared);
  Rule user1;
  user1.AddPredicate({shared, CompareOp::kGe, 0.7});
  fn.AddRule(user1);
  Rule user2;
  user2.AddPredicate({shared, CompareOp::kGe, 0.5});
  fn.AddRule(user2);

  const auto order = GreedyReductionOrder(fn, model);
  size_t pos_shared = 0;
  size_t pos_lonely = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    if (fn.rule(order[i]).id() == shared_id) pos_shared = i;
    if (fn.rule(order[i]).id() == lonely_id) pos_lonely = i;
  }
  EXPECT_LT(pos_shared, pos_lonely);
}

TEST_F(GreedyOptimizersTest, ApplyVariantsPreserveSemantics) {
  RuleGeneratorConfig config;
  config.num_rules = 10;
  config.seed = 6;
  RuleGenerator gen(*ctx_, sample_, config);
  const MatchingFunction original = gen.Generate();
  const CostModel model =
      CostModel::EstimateForFunction(original, *ctx_, sample_);
  MemoMatcher matcher;
  const Bitmap expected =
      matcher.Run(original, ds_.candidates, *ctx_).matches;

  MatchingFunction alg5 = original;
  ApplyGreedyCostOrder(alg5, model);
  EXPECT_EQ(matcher.Run(alg5, ds_.candidates, *ctx_).matches, expected);

  MatchingFunction alg6 = original;
  ApplyGreedyReductionOrder(alg6, model);
  EXPECT_EQ(matcher.Run(alg6, ds_.candidates, *ctx_).matches, expected);
}

TEST_F(GreedyOptimizersTest, OptimizedOrderDoesNotIncreaseComputations) {
  RuleGeneratorConfig config;
  config.num_rules = 20;
  config.seed = 8;
  config.feature_skew = 1.2;  // heavy feature sharing
  RuleGenerator gen(*ctx_, sample_, config);
  const MatchingFunction original = gen.Generate();
  const CostModel model =
      CostModel::EstimateForFunction(original, *ctx_, sample_);

  MemoMatcher matcher;
  // Average computations over a few random orders.
  Rng rng(9);
  size_t random_total = 0;
  const int kRandomTrials = 3;
  for (int i = 0; i < kRandomTrials; ++i) {
    MatchingFunction fn = original;
    RandomizeOrder(fn, rng);
    random_total +=
        matcher.Run(fn, ds_.candidates, *ctx_).stats.feature_computations;
  }
  const double random_avg =
      static_cast<double>(random_total) / kRandomTrials;

  MatchingFunction alg6 = original;
  ApplyGreedyReductionOrder(alg6, model);
  const size_t optimized =
      matcher.Run(alg6, ds_.candidates, *ctx_).stats.feature_computations;
  // The optimizer should not do materially worse than random; typically
  // it is strictly better (this is Fig. 3C's claim).
  EXPECT_LE(static_cast<double>(optimized), random_avg * 1.10);
}

TEST_F(GreedyOptimizersTest, EmptyFunction) {
  const MatchingFunction fn;
  const CostModel model = CostModel::EstimateForFunction(fn, *ctx_, sample_);
  EXPECT_TRUE(GreedyCostOrder(fn, model).empty());
  EXPECT_TRUE(GreedyReductionOrder(fn, model).empty());
}

}  // namespace
}  // namespace emdbg
