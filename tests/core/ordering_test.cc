#include "src/core/ordering.h"

#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "src/core/memo_matcher.h"
#include "src/core/rule_generator.h"
#include "src/core/sampler.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

class OrderingTest : public ::testing::Test {
 protected:
  OrderingTest() : ds_(testing::SmallProducts()) {
    catalog_ = FeatureCatalog(ds_.a.schema(), ds_.b.schema());
    catalog_.InternAllSameAttribute();
    ctx_ = std::make_unique<PairContext>(ds_.a, ds_.b, catalog_);
    Rng rng(2);
    sample_ = SamplePairs(ds_.candidates, 0.25, rng);
  }

  FeatureId Feat(SimFunction fn, const char* attr) {
    return *catalog_.InternByName(fn, attr, attr);
  }

  MatchingFunction GeneratedRules(size_t n, uint64_t seed) {
    RuleGeneratorConfig config;
    config.num_rules = n;
    config.seed = seed;
    RuleGenerator gen(*ctx_, sample_, config);
    return gen.Generate();
  }

  GeneratedDataset ds_;
  FeatureCatalog catalog_;
  std::unique_ptr<PairContext> ctx_;
  CandidateSet sample_;
};

// Permutations must not change matching semantics, only cost.
TEST_F(OrderingTest, AllStrategiesPreserveMatches) {
  const MatchingFunction original = GeneratedRules(10, 5);
  const CostModel model =
      CostModel::EstimateForFunction(original, *ctx_, sample_);
  MemoMatcher matcher;
  const Bitmap expected =
      matcher.Run(original, ds_.candidates, *ctx_).matches;
  Rng rng(6);
  for (const OrderingStrategy s :
       {OrderingStrategy::kRandom, OrderingStrategy::kIndependent,
        OrderingStrategy::kGreedyCost, OrderingStrategy::kGreedyReduction}) {
    MatchingFunction fn = original;
    ApplyOrdering(fn, s, model, &rng);
    EXPECT_EQ(matcher.Run(fn, ds_.candidates, *ctx_).matches, expected)
        << OrderingStrategyName(s);
    EXPECT_EQ(fn.num_rules(), original.num_rules());
    EXPECT_EQ(fn.num_predicates(), original.num_predicates());
  }
}

TEST_F(OrderingTest, Lemma3GroupsPredicatesBySharedFeature) {
  const FeatureId f = Feat(SimFunction::kJaccard, "title");
  const FeatureId g = Feat(SimFunction::kExactMatch, "brand");
  const CostModel model = CostModel::Estimate({f, g}, *ctx_, sample_);
  Rule r;
  r.AddPredicate({f, CompareOp::kGe, 0.2, 1});
  r.AddPredicate({g, CompareOp::kGe, 1.0, 2});
  r.AddPredicate({f, CompareOp::kLt, 0.9, 3});
  OrderRulePredicates(r, model);
  // The two predicates on f must be adjacent after grouping.
  size_t pos_f1 = r.FindPredicate(1);
  size_t pos_f2 = r.FindPredicate(3);
  EXPECT_EQ(std::max(pos_f1, pos_f2) - std::min(pos_f1, pos_f2), 1u);
}

TEST_F(OrderingTest, Lemma2OrdersWithinGroupBySelectivity) {
  const FeatureId f = Feat(SimFunction::kTrigram, "title");
  const CostModel model = CostModel::Estimate({f}, *ctx_, sample_);
  Rule r;
  // A permissive lower bound and a selective lower... use one >= and one <
  // where the < is much more selective.
  Predicate loose{f, CompareOp::kGe, 0.01, 1};
  Predicate tight{f, CompareOp::kLt, 0.02, 2};
  r.AddPredicate(loose);
  r.AddPredicate(tight);
  OrderRulePredicates(r, model);
  const double sel_first = model.PredicateSelectivity(r.predicate(0));
  const double sel_second = model.PredicateSelectivity(r.predicate(1));
  EXPECT_LE(sel_first, sel_second);
}

TEST_F(OrderingTest, Lemma1PutsSelectiveCheapFirst) {
  const FeatureId cheap = Feat(SimFunction::kExactMatch, "modelno");
  const FeatureId costly = Feat(SimFunction::kSoftTfIdf, "title");
  const CostModel model =
      CostModel::Estimate({cheap, costly}, *ctx_, sample_);
  Rule r;
  r.AddPredicate({costly, CompareOp::kGe, 0.8, 1});
  r.AddPredicate({cheap, CompareOp::kGe, 1.0, 2});
  OrderRulePredicatesIndependent(r, model);
  // The cheap, highly selective exact match should be evaluated first.
  EXPECT_EQ(r.predicate(0).feature, cheap);
}

TEST_F(OrderingTest, Theorem1PutsCheapUnselectiveRuleFirst) {
  const FeatureId cheap = Feat(SimFunction::kExactMatch, "category");
  const FeatureId costly = Feat(SimFunction::kSoftTfIdf, "title");
  const CostModel model =
      CostModel::Estimate({cheap, costly}, *ctx_, sample_);
  MatchingFunction fn;
  Rule expensive_rule;  // expensive, selective
  expensive_rule.AddPredicate({costly, CompareOp::kGe, 0.95});
  const RuleId exp_id = fn.AddRule(expensive_rule);
  Rule cheap_rule;  // cheap, matches many pairs (same category is common)
  cheap_rule.AddPredicate({cheap, CompareOp::kGe, 1.0});
  const RuleId cheap_id = fn.AddRule(cheap_rule);
  (void)exp_id;
  OrderRulesIndependent(fn, model);
  EXPECT_EQ(fn.rule(0).id(), cheap_id);
}

TEST_F(OrderingTest, RandomizeIsPermutation) {
  MatchingFunction fn = GeneratedRules(8, 9);
  std::vector<RuleId> ids_before;
  for (const Rule& r : fn.rules()) ids_before.push_back(r.id());
  Rng rng(10);
  RandomizeOrder(fn, rng);
  std::vector<RuleId> ids_after;
  for (const Rule& r : fn.rules()) ids_after.push_back(r.id());
  std::sort(ids_before.begin(), ids_before.end());
  std::sort(ids_after.begin(), ids_after.end());
  EXPECT_EQ(ids_before, ids_after);
}

TEST_F(OrderingTest, StrategyNamesRoundTrip) {
  for (const OrderingStrategy s :
       {OrderingStrategy::kAsWritten, OrderingStrategy::kRandom,
        OrderingStrategy::kIndependent, OrderingStrategy::kGreedyCost,
        OrderingStrategy::kGreedyReduction}) {
    auto parsed = OrderingStrategyFromName(OrderingStrategyName(s));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_FALSE(OrderingStrategyFromName("bogus").ok());
}

TEST_F(OrderingTest, GreedyOrderingsReduceModeledCost) {
  const MatchingFunction original = GeneratedRules(15, 13);
  const CostModel model =
      CostModel::EstimateForFunction(original, *ctx_, sample_);
  // Baseline: average modeled cost over a few random orders.
  Rng rng(14);
  double random_cost = 0.0;
  for (int i = 0; i < 5; ++i) {
    MatchingFunction fn = original;
    RandomizeOrder(fn, rng);
    random_cost += model.FunctionCostWithMemo(fn);
  }
  random_cost /= 5.0;
  MatchingFunction greedy5 = original;
  ApplyOrdering(greedy5, OrderingStrategy::kGreedyCost, model, nullptr);
  MatchingFunction greedy6 = original;
  ApplyOrdering(greedy6, OrderingStrategy::kGreedyReduction, model, nullptr);
  EXPECT_LT(model.FunctionCostWithMemo(greedy5), random_cost * 1.05);
  EXPECT_LT(model.FunctionCostWithMemo(greedy6), random_cost * 1.05);
}

}  // namespace
}  // namespace emdbg
