#include "src/core/incremental.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/core/memo_matcher.h"
#include "src/core/rule_generator.h"
#include "src/core/sampler.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

/// Fixture with the small generated dataset, a catalog/context, and a rule
/// generator for random edits. The oracle is a from-scratch MemoMatcher
/// run of the incremental matcher's current function.
class IncrementalTest : public ::testing::Test {
 protected:
  IncrementalTest() : ds_(testing::SmallProducts()) {
    catalog_ = FeatureCatalog(ds_.a.schema(), ds_.b.schema());
    catalog_.InternAllSameAttribute();
    ctx_ = std::make_unique<PairContext>(ds_.a, ds_.b, catalog_);
    Rng rng(1);
    sample_ = SamplePairs(ds_.candidates, 0.25, rng);
    RuleGeneratorConfig config;
    config.num_rules = 6;
    config.min_predicates = 2;
    config.max_predicates = 4;
    config.seed = 77;
    gen_ = std::make_unique<RuleGenerator>(*ctx_, sample_, config);
  }

  Bitmap OracleMatches(const MatchingFunction& fn) {
    MemoMatcher matcher;
    return matcher.Run(fn, ds_.candidates, *ctx_).matches;
  }

  void ExpectConsistent(const IncrementalMatcher& inc) {
    EXPECT_EQ(inc.matches(), OracleMatches(inc.function()));
  }

  GeneratedDataset ds_;
  FeatureCatalog catalog_;
  std::unique_ptr<PairContext> ctx_;
  CandidateSet sample_;
  std::unique_ptr<RuleGenerator> gen_;
};

TEST_F(IncrementalTest, EditsBeforeFullRunAreRejected) {
  IncrementalMatcher inc(*ctx_, ds_.candidates);
  Rule r;
  r.AddPredicate({0, CompareOp::kGe, 0.5});
  EXPECT_EQ(inc.AddRule(r).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(inc.RemoveRule(0).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(IncrementalTest, FullRunMatchesOracle) {
  const MatchingFunction fn = gen_->Generate();
  IncrementalMatcher inc(*ctx_, ds_.candidates);
  inc.FullRun(fn);
  ExpectConsistent(inc);
}

TEST_F(IncrementalTest, AddRuleMatchesOracle) {
  IncrementalMatcher inc(*ctx_, ds_.candidates);
  inc.FullRun(gen_->Generate());
  Rng rng(2);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(inc.AddRule(gen_->GenerateRule(rng)).ok());
    ExpectConsistent(inc);
  }
}

TEST_F(IncrementalTest, AddRuleOnlyEvaluatesUnmatchedPairs) {
  IncrementalMatcher inc(*ctx_, ds_.candidates);
  inc.FullRun(gen_->Generate());
  const size_t unmatched = ds_.candidates.size() - inc.matches().Count();
  Rng rng(3);
  auto stats = inc.AddRule(gen_->GenerateRule(rng));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rule_evaluations, unmatched);
}

TEST_F(IncrementalTest, RemoveRuleMatchesOracle) {
  IncrementalMatcher inc(*ctx_, ds_.candidates);
  inc.FullRun(gen_->Generate());
  while (inc.function().num_rules() > 0) {
    const RuleId rid = inc.function().rule(0).id();
    ASSERT_TRUE(inc.RemoveRule(rid).ok());
    ExpectConsistent(inc);
  }
  EXPECT_EQ(inc.matches().Count(), 0u);
}

TEST_F(IncrementalTest, RemoveMissingRuleIsNotFound) {
  IncrementalMatcher inc(*ctx_, ds_.candidates);
  inc.FullRun(gen_->Generate());
  EXPECT_EQ(inc.RemoveRule(9999).status().code(), StatusCode::kNotFound);
}

TEST_F(IncrementalTest, AddPredicateTightensAndMatchesOracle) {
  IncrementalMatcher inc(*ctx_, ds_.candidates);
  inc.FullRun(gen_->Generate());
  Rng rng(4);
  for (int i = 0; i < 5; ++i) {
    const size_t pos = rng.Uniform(inc.function().num_rules());
    const RuleId rid = inc.function().rule(pos).id();
    const Rule extra = gen_->GenerateRule(rng);
    const size_t before = inc.matches().Count();
    ASSERT_TRUE(inc.AddPredicate(rid, extra.predicate(0)).ok());
    ExpectConsistent(inc);
    EXPECT_LE(inc.matches().Count(), before);  // tightening only shrinks
  }
}

TEST_F(IncrementalTest, RemovePredicateRelaxesAndMatchesOracle) {
  IncrementalMatcher inc(*ctx_, ds_.candidates);
  inc.FullRun(gen_->Generate());
  Rng rng(5);
  for (int i = 0; i < 5; ++i) {
    const size_t pos = rng.Uniform(inc.function().num_rules());
    const Rule& rule = inc.function().rule(pos);
    if (rule.size() < 2) continue;  // keep rules non-empty here
    const PredicateId pid =
        rule.predicate(rng.Uniform(rule.size())).id;
    const size_t before = inc.matches().Count();
    ASSERT_TRUE(inc.RemovePredicate(rule.id(), pid).ok());
    ExpectConsistent(inc);
    EXPECT_GE(inc.matches().Count(), before);  // relaxing only grows
  }
}

TEST_F(IncrementalTest, RemoveLastPredicateMakesRuleFalse) {
  // A rule whose only predicate is removed becomes empty = false.
  MatchingFunction fn;
  const FeatureId f =
      *catalog_.InternByName(SimFunction::kExactMatch, "category",
                             "category");
  Rule r;
  r.AddPredicate({f, CompareOp::kGe, 1.0});
  fn.AddRule(r);
  IncrementalMatcher inc(*ctx_, ds_.candidates);
  inc.FullRun(fn);
  EXPECT_GT(inc.matches().Count(), 0u);
  const RuleId rid = inc.function().rule(0).id();
  const PredicateId pid = inc.function().rule(0).predicate(0).id;
  ASSERT_TRUE(inc.RemovePredicate(rid, pid).ok());
  EXPECT_EQ(inc.matches().Count(), 0u);
  ExpectConsistent(inc);
}

TEST_F(IncrementalTest, AddPredicateToEmptyRule) {
  MatchingFunction fn = gen_->Generate();
  const RuleId empty_id = fn.AddRule(Rule("empty"));
  IncrementalMatcher inc(*ctx_, ds_.candidates);
  inc.FullRun(fn);
  const FeatureId f =
      *catalog_.InternByName(SimFunction::kExactMatch, "category",
                             "category");
  ASSERT_TRUE(
      inc.AddPredicate(empty_id, {f, CompareOp::kGe, 1.0}).ok());
  ExpectConsistent(inc);
  // The rule now matches same-category pairs, so matches grew.
  EXPECT_GT(inc.matches().Count(), 0u);
}

TEST_F(IncrementalTest, TightenThresholdMatchesOracle) {
  IncrementalMatcher inc(*ctx_, ds_.candidates);
  inc.FullRun(gen_->Generate());
  Rng rng(6);
  for (int i = 0; i < 8; ++i) {
    const size_t pos = rng.Uniform(inc.function().num_rules());
    const Rule& rule = inc.function().rule(pos);
    const Predicate& p = rule.predicate(rng.Uniform(rule.size()));
    const double delta = 0.1 + 0.1 * rng.NextDouble();
    const double t = IsLowerBound(p.op) ? p.threshold + delta
                                        : p.threshold - delta;
    const size_t before = inc.matches().Count();
    ASSERT_TRUE(inc.SetThreshold(rule.id(), p.id, t).ok());
    ExpectConsistent(inc);
    EXPECT_LE(inc.matches().Count(), before);
  }
}

TEST_F(IncrementalTest, RelaxThresholdMatchesOracle) {
  IncrementalMatcher inc(*ctx_, ds_.candidates);
  inc.FullRun(gen_->Generate());
  Rng rng(7);
  for (int i = 0; i < 8; ++i) {
    const size_t pos = rng.Uniform(inc.function().num_rules());
    const Rule& rule = inc.function().rule(pos);
    const Predicate& p = rule.predicate(rng.Uniform(rule.size()));
    const double delta = 0.1 + 0.1 * rng.NextDouble();
    const double t = IsLowerBound(p.op) ? p.threshold - delta
                                        : p.threshold + delta;
    const size_t before = inc.matches().Count();
    ASSERT_TRUE(inc.SetThreshold(rule.id(), p.id, t).ok());
    ExpectConsistent(inc);
    EXPECT_GE(inc.matches().Count(), before);
  }
}

TEST_F(IncrementalTest, EqualThresholdIsNoOp) {
  IncrementalMatcher inc(*ctx_, ds_.candidates);
  inc.FullRun(gen_->Generate());
  const Rule& rule = inc.function().rule(0);
  const Predicate& p = rule.predicate(0);
  auto stats = inc.SetThreshold(rule.id(), p.id, p.threshold);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->predicate_evaluations, 0u);
  EXPECT_EQ(stats->rule_evaluations, 0u);
}

TEST_F(IncrementalTest, SetThresholdErrors) {
  IncrementalMatcher inc(*ctx_, ds_.candidates);
  inc.FullRun(gen_->Generate());
  const RuleId rid = inc.function().rule(0).id();
  EXPECT_EQ(inc.SetThreshold(9999, 0, 0.5).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(inc.SetThreshold(rid, 99999, 0.5).status().code(),
            StatusCode::kNotFound);
}

// The central property test: a long random mixed edit sequence, verified
// against a from-scratch run after every edit.
TEST_F(IncrementalTest, RandomEditSequenceStaysConsistent) {
  IncrementalMatcher inc(*ctx_, ds_.candidates);
  inc.FullRun(gen_->Generate());
  Rng rng(8);
  for (int step = 0; step < 60; ++step) {
    const uint64_t op = rng.Uniform(6);
    const size_t num_rules = inc.function().num_rules();
    if (op == 0 || num_rules == 0) {
      ASSERT_TRUE(inc.AddRule(gen_->GenerateRule(rng)).ok());
    } else if (op == 1 && num_rules > 1) {
      const RuleId rid =
          inc.function().rule(rng.Uniform(num_rules)).id();
      ASSERT_TRUE(inc.RemoveRule(rid).ok());
    } else if (op == 2) {
      const RuleId rid =
          inc.function().rule(rng.Uniform(num_rules)).id();
      const Rule donor = gen_->GenerateRule(rng);
      ASSERT_TRUE(inc.AddPredicate(rid, donor.predicate(0)).ok());
    } else if (op == 3) {
      const Rule& rule = inc.function().rule(rng.Uniform(num_rules));
      if (rule.empty()) continue;
      const PredicateId pid =
          rule.predicate(rng.Uniform(rule.size())).id;
      ASSERT_TRUE(inc.RemovePredicate(rule.id(), pid).ok());
    } else {
      const Rule& rule = inc.function().rule(rng.Uniform(num_rules));
      if (rule.empty()) continue;
      const Predicate& p = rule.predicate(rng.Uniform(rule.size()));
      // Random direction: tighten or relax by a random amount.
      const double t = rng.NextDouble();
      ASSERT_TRUE(inc.SetThreshold(rule.id(), p.id, t).ok());
    }
    ASSERT_EQ(inc.matches(), OracleMatches(inc.function()))
        << "diverged at step " << step << " (op " << op << ")";
  }
}

// Same property with the affected-pair re-matching fanned out over a
// work-stealing pool (min_parallel_pairs = 0 forces the parallel path
// even on this small dataset). Every edit's result must be identical to
// the serial oracle regardless of scheduling.
TEST_F(IncrementalTest, RandomEditsConsistentWithWorkerPool) {
  ThreadPool pool(4);
  IncrementalMatcher inc(*ctx_, ds_.candidates,
                         IncrementalMatcher::Options{
                             .pool = &pool, .min_parallel_pairs = 0});
  inc.FullRun(gen_->Generate());
  Rng rng(8);  // same seed as RandomEditSequenceStaysConsistent
  for (int step = 0; step < 60; ++step) {
    const uint64_t op = rng.Uniform(6);
    const size_t num_rules = inc.function().num_rules();
    if (op == 0 || num_rules == 0) {
      ASSERT_TRUE(inc.AddRule(gen_->GenerateRule(rng)).ok());
    } else if (op == 1 && num_rules > 1) {
      const RuleId rid =
          inc.function().rule(rng.Uniform(num_rules)).id();
      ASSERT_TRUE(inc.RemoveRule(rid).ok());
    } else if (op == 2) {
      const RuleId rid =
          inc.function().rule(rng.Uniform(num_rules)).id();
      const Rule donor = gen_->GenerateRule(rng);
      ASSERT_TRUE(inc.AddPredicate(rid, donor.predicate(0)).ok());
    } else if (op == 3) {
      const Rule& rule = inc.function().rule(rng.Uniform(num_rules));
      if (rule.empty()) continue;
      const PredicateId pid =
          rule.predicate(rng.Uniform(rule.size())).id;
      ASSERT_TRUE(inc.RemovePredicate(rule.id(), pid).ok());
    } else {
      const Rule& rule = inc.function().rule(rng.Uniform(num_rules));
      if (rule.empty()) continue;
      const Predicate& p = rule.predicate(rng.Uniform(rule.size()));
      const double t = rng.NextDouble();
      ASSERT_TRUE(inc.SetThreshold(rule.id(), p.id, t).ok());
    }
    ASSERT_EQ(inc.matches(), OracleMatches(inc.function()))
        << "diverged at step " << step << " (op " << op << ")";
  }
}

// Parallel and serial incremental engines must report identical work
// counters for the same edit (no lost or duplicated MatchStats).
TEST_F(IncrementalTest, PoolPreservesEditStats) {
  ThreadPool pool(4);
  IncrementalMatcher serial(*ctx_, ds_.candidates);
  IncrementalMatcher parallel(*ctx_, ds_.candidates,
                              IncrementalMatcher::Options{
                                  .pool = &pool, .min_parallel_pairs = 0});
  const MatchingFunction fn = gen_->Generate();
  serial.FullRun(fn);
  parallel.FullRun(fn);

  Rng rng(17);
  const Rule extra = gen_->GenerateRule(rng);
  const auto s = serial.AddRule(extra);
  const auto p = parallel.AddRule(extra);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(s->rule_evaluations, p->rule_evaluations);
  EXPECT_EQ(s->predicate_evaluations, p->predicate_evaluations);
  EXPECT_EQ(s->feature_computations, p->feature_computations);
  EXPECT_EQ(s->memo_hits, p->memo_hits);
  EXPECT_EQ(serial.matches(), parallel.matches());

  const RuleId rid = serial.last_added_rule_id();
  const auto s2 = serial.RemoveRule(rid);
  const auto p2 = parallel.RemoveRule(parallel.last_added_rule_id());
  ASSERT_TRUE(s2.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(s2->rule_evaluations, p2->rule_evaluations);
  EXPECT_EQ(s2->predicate_evaluations, p2->predicate_evaluations);
  EXPECT_EQ(serial.matches(), parallel.matches());
}

// Same property with check-cache-first disabled.
TEST_F(IncrementalTest, RandomEditsConsistentWithoutCheckCacheFirst) {
  IncrementalMatcher inc(*ctx_, ds_.candidates,
                         IncrementalMatcher::Options{
                             .check_cache_first = false});
  inc.FullRun(gen_->Generate());
  Rng rng(9);
  for (int step = 0; step < 30; ++step) {
    const size_t num_rules = inc.function().num_rules();
    if (rng.Bernoulli(0.5) || num_rules == 0) {
      ASSERT_TRUE(inc.AddRule(gen_->GenerateRule(rng)).ok());
    } else {
      const Rule& rule = inc.function().rule(rng.Uniform(num_rules));
      if (rule.empty()) continue;
      const Predicate& p = rule.predicate(rng.Uniform(rule.size()));
      ASSERT_TRUE(
          inc.SetThreshold(rule.id(), p.id, rng.NextDouble()).ok());
    }
    ASSERT_EQ(inc.matches(), OracleMatches(inc.function())) << step;
  }
}

TEST_F(IncrementalTest, IncrementalIsCheaperThanRerun) {
  IncrementalMatcher inc(*ctx_, ds_.candidates);
  const MatchStats full = inc.FullRun(gen_->Generate());
  Rng rng(10);
  // Tightening one predicate must do far less work than the full run.
  const Rule& rule = inc.function().rule(0);
  const Predicate& p = rule.predicate(0);
  const double t =
      IsLowerBound(p.op) ? p.threshold + 0.05 : p.threshold - 0.05;
  auto stats = inc.SetThreshold(rule.id(), p.id, t);
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(stats->predicate_evaluations,
            full.predicate_evaluations / 5 + 10);
}

}  // namespace
}  // namespace emdbg
