#include "src/core/threshold_advisor.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/core/memo_matcher.h"
#include "src/core/rule_parser.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

class ThresholdAdvisorTest : public ::testing::Test {
 protected:
  ThresholdAdvisorTest() : ds_(testing::SmallProducts()) {
    catalog_ = FeatureCatalog(ds_.a.schema(), ds_.b.schema());
    ctx_ = std::make_unique<PairContext>(ds_.a, ds_.b, catalog_);
  }

  GeneratedDataset ds_;
  FeatureCatalog catalog_;
  std::unique_ptr<PairContext> ctx_;
};

TEST_F(ThresholdAdvisorTest, SweepsRequestedRange) {
  auto fn = ParseMatchingFunction("jaccard(title, title) >= 0.5", catalog_);
  ASSERT_TRUE(fn.ok());
  const RuleId rid = fn->rule(0).id();
  const PredicateId pid = fn->rule(0).predicate(0).id;
  auto advice = AdviseThreshold(*fn, rid, pid, ds_.candidates, ds_.labels,
                                *ctx_, /*num_steps=*/11, 0.0, 1.0);
  ASSERT_TRUE(advice.ok());
  ASSERT_EQ(advice->options.size(), 11u);
  EXPECT_DOUBLE_EQ(advice->options.front().threshold, 0.0);
  EXPECT_DOUBLE_EQ(advice->options.back().threshold, 1.0);
  EXPECT_LT(advice->best_index, advice->options.size());
}

TEST_F(ThresholdAdvisorTest, ThresholdZeroMatchesEverythingThresholdOneAlmostNothing) {
  auto fn = ParseMatchingFunction("trigram(title, title) >= 0.5", catalog_);
  ASSERT_TRUE(fn.ok());
  const RuleId rid = fn->rule(0).id();
  const PredicateId pid = fn->rule(0).predicate(0).id;
  auto advice = AdviseThreshold(*fn, rid, pid, ds_.candidates, ds_.labels,
                                *ctx_, 3, 0.0, 1.0);
  ASSERT_TRUE(advice.ok());
  const ThresholdOption& at_zero = advice->options.front();
  // threshold 0: every pair passes the only predicate -> all pairs match
  // -> recall 1, precision = base rate.
  EXPECT_DOUBLE_EQ(at_zero.recall, 1.0);
  EXPECT_EQ(at_zero.false_negatives, 0u);
  const ThresholdOption& at_one = advice->options.back();
  EXPECT_LE(at_one.true_positives + at_one.false_positives,
            at_zero.true_positives + at_zero.false_positives);
}

TEST_F(ThresholdAdvisorTest, BestBeatsCurrentThresholdF1) {
  // Start from a deliberately bad threshold; the advisor must find one at
  // least as good.
  auto fn = ParseMatchingFunction("jaccard(title, title) >= 0.99",
                                  catalog_);
  ASSERT_TRUE(fn.ok());
  const RuleId rid = fn->rule(0).id();
  const PredicateId pid = fn->rule(0).predicate(0).id;
  auto advice = AdviseThreshold(*fn, rid, pid, ds_.candidates, ds_.labels,
                                *ctx_, 21, 0.0, 1.0);
  ASSERT_TRUE(advice.ok());
  // F1 at 0.99-ish (the second-to-last option is >= 0.95) is near zero;
  // the best must be materially better.
  EXPECT_GT(advice->best().f1, 0.3);
  EXPECT_LT(advice->best().threshold, 0.95);
}

TEST_F(ThresholdAdvisorTest, AgreesWithMatcherAtEachOption) {
  auto fn = ParseMatchingFunction(
      "jaccard(title, title) >= 0.5 AND exact_match(category, category) >= "
      "1\nexact_match(modelno, modelno) >= 1",
      catalog_);
  ASSERT_TRUE(fn.ok());
  const RuleId rid = fn->rule(0).id();
  const PredicateId pid = fn->rule(0).predicate(0).id;
  auto advice = AdviseThreshold(*fn, rid, pid, ds_.candidates, ds_.labels,
                                *ctx_, 5, 0.2, 0.8);
  ASSERT_TRUE(advice.ok());
  MemoMatcher matcher;
  for (const ThresholdOption& opt : advice->options) {
    MatchingFunction modified = *fn;
    ASSERT_TRUE(modified.SetThreshold(rid, pid, opt.threshold).ok());
    const MatchResult result =
        matcher.Run(modified, ds_.candidates, *ctx_);
    const QualityMetrics m = Evaluate(result.matches, ds_.labels);
    EXPECT_EQ(m.true_positives, opt.true_positives)
        << "t=" << opt.threshold;
    EXPECT_EQ(m.false_positives, opt.false_positives);
    EXPECT_NEAR(m.f1, opt.f1, 1e-12);
  }
}

TEST_F(ThresholdAdvisorTest, Errors) {
  auto fn = ParseMatchingFunction("jaccard(title, title) >= 0.5", catalog_);
  ASSERT_TRUE(fn.ok());
  const RuleId rid = fn->rule(0).id();
  const PredicateId pid = fn->rule(0).predicate(0).id;
  EXPECT_EQ(AdviseThreshold(*fn, 999, pid, ds_.candidates, ds_.labels,
                            *ctx_)
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(AdviseThreshold(*fn, rid, 999, ds_.candidates, ds_.labels,
                            *ctx_)
                .status()
                .code(),
            StatusCode::kNotFound);
  const PairLabels wrong_size(3);
  EXPECT_EQ(AdviseThreshold(*fn, rid, pid, ds_.candidates, wrong_size,
                            *ctx_)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace emdbg
