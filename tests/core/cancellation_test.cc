#include "src/util/cancellation.h"

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/adaptive_matcher.h"
#include "src/core/cost_model.h"
#include "src/core/debug_session.h"
#include "src/core/early_exit_matcher.h"
#include "src/core/memo_matcher.h"
#include "src/core/parallel_matcher.h"
#include "src/core/precompute_matcher.h"
#include "src/core/rudimentary_matcher.h"
#include "src/core/rule_generator.h"
#include "src/core/sampler.h"
#include "src/util/stopwatch.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

/// A dataset big enough that a millisecond-scale deadline reliably
/// expires mid-run (tens of thousands of pairs, string-heavy features).
GeneratedDataset BigProducts(uint64_t seed = 7, size_t pairs = 20000) {
  DatasetProfile p;
  p.name = "cancel_products";
  p.table_a_rows = 250;
  p.table_b_rows = 500;
  p.candidate_pairs = pairs;
  p.twin_fraction = 0.4;
  p.attributes = {
      {"title", AttrKind::kTitle, 0.5, 0.02},
      {"modelno", AttrKind::kModelNo, 0.3, 0.05},
      {"brand", AttrKind::kBrand, 0.25, 0.02},
      {"price", AttrKind::kPrice, 0.5, 0.1},
  };
  p.num_categories = 6;
  p.seed = seed;
  return GenerateDataset(p);
}

class CancellationTest : public ::testing::Test {
 protected:
  CancellationTest() : ds_(testing::SmallProducts()) {
    catalog_ = FeatureCatalog(ds_.a.schema(), ds_.b.schema());
    catalog_.InternAllSameAttribute();
    ctx_ = std::make_unique<PairContext>(ds_.a, ds_.b, catalog_);
    Rng rng(1);
    sample_ = SamplePairs(ds_.candidates, 0.2, rng);
  }

  MatchingFunction Rules(size_t n, uint64_t seed) {
    RuleGeneratorConfig config;
    config.num_rules = n;
    config.seed = seed;
    RuleGenerator gen(*ctx_, sample_, config);
    return gen.Generate();
  }

  /// Every matcher implementation, freshly constructed.
  std::vector<std::unique_ptr<Matcher>> AllMatchers(
      const CostModel& model) {
    std::vector<std::unique_ptr<Matcher>> out;
    out.push_back(std::make_unique<RudimentaryMatcher>());
    out.push_back(std::make_unique<EarlyExitMatcher>());
    out.push_back(std::make_unique<MemoMatcher>());
    out.push_back(std::make_unique<MemoMatcher>(
        MemoMatcher::Options{.check_cache_first = true}));
    out.push_back(std::make_unique<PrecomputeMatcher>(
        PrecomputeMatcher::Scope::kProduction));
    out.push_back(std::make_unique<AdaptiveMemoMatcher>(model));
    out.push_back(std::make_unique<ParallelMemoMatcher>(
        ParallelMemoMatcher::Options{.num_threads = 4}));
    return out;
  }

  GeneratedDataset ds_;
  FeatureCatalog catalog_;
  std::unique_ptr<PairContext> ctx_;
  CandidateSet sample_;
};

TEST_F(CancellationTest, DefaultControlRunsToCompletion) {
  const MatchingFunction fn = Rules(6, 3);
  const CostModel model = CostModel::EstimateForFunction(fn, *ctx_, sample_);
  for (auto& matcher : AllMatchers(model)) {
    const MatchResult r =
        matcher->Run(fn, ds_.candidates, *ctx_, RunControl());
    EXPECT_FALSE(r.partial) << matcher->name();
    EXPECT_TRUE(r.status.ok()) << matcher->name();
    EXPECT_EQ(r.pairs_completed, ds_.candidates.size()) << matcher->name();
  }
}

TEST_F(CancellationTest, PreCancelledTokenStopsEveryMatcherImmediately) {
  const MatchingFunction fn = Rules(6, 3);
  const CostModel model = CostModel::EstimateForFunction(fn, *ctx_, sample_);
  CancellationToken token;
  token.RequestCancel();
  const RunControl control(token);
  for (auto& matcher : AllMatchers(model)) {
    const MatchResult r = matcher->Run(fn, ds_.candidates, *ctx_, control);
    EXPECT_TRUE(r.partial) << matcher->name();
    EXPECT_EQ(r.status.code(), StatusCode::kCancelled) << matcher->name();
    EXPECT_EQ(r.pairs_completed, 0u) << matcher->name();
    EXPECT_EQ(r.evaluated.Count(), 0u) << matcher->name();
    EXPECT_EQ(r.matches.Count(), 0u) << matcher->name();
  }
}

TEST_F(CancellationTest, ExpiredDeadlineReportsDeadlineExceeded) {
  const MatchingFunction fn = Rules(6, 3);
  const CostModel model = CostModel::EstimateForFunction(fn, *ctx_, sample_);
  const RunControl control(Deadline::AfterMillis(0));
  for (auto& matcher : AllMatchers(model)) {
    const MatchResult r = matcher->Run(fn, ds_.candidates, *ctx_, control);
    EXPECT_TRUE(r.partial) << matcher->name();
    EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded)
        << matcher->name();
  }
}

TEST_F(CancellationTest, CancelledBeatsExpiredDeadline) {
  const MatchingFunction fn = Rules(4, 5);
  CancellationToken token;
  token.RequestCancel();
  const RunControl control(token, Deadline::AfterMillis(0));
  MemoMatcher matcher;
  const MatchResult r = matcher.Run(fn, ds_.candidates, *ctx_, control);
  ASSERT_TRUE(r.partial);
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
}

/// The partial-prefix contract on serial matchers: a deadline that
/// expires mid-run yields a prefix of evaluated pairs whose bits agree
/// with an uncontrolled reference run.
TEST_F(CancellationTest, DeadlineMidRunYieldsCorrectPrefix) {
  GeneratedDataset big = BigProducts();
  FeatureCatalog catalog(big.a.schema(), big.b.schema());
  catalog.InternAllSameAttribute();
  Rng rng(2);
  const CandidateSet sample = SamplePairs(big.candidates, 0.02, rng);

  PairContext ref_ctx(big.a, big.b, catalog);
  RuleGeneratorConfig config;
  config.num_rules = 8;
  config.seed = 21;
  const MatchingFunction fn =
      RuleGenerator(ref_ctx, sample, config).Generate();
  MemoMatcher reference;
  const Bitmap expected =
      reference.Run(fn, big.candidates, ref_ctx).matches;

  // Fresh context: no warm memo, so the controlled run pays full price.
  PairContext ctx(big.a, big.b, catalog);
  MemoMatcher matcher;
  const RunControl control(Deadline::AfterMillis(2));
  const MatchResult r = matcher.Run(fn, big.candidates, ctx, control);

  ASSERT_TRUE(r.partial) << "the 2ms deadline did not expire over "
                         << big.candidates.size() << " cold pairs";
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(r.pairs_completed, big.candidates.size());
  EXPECT_EQ(r.evaluated.Count(), r.pairs_completed);
  for (size_t i = 0; i < big.candidates.size(); ++i) {
    if (i < r.pairs_completed) {
      ASSERT_TRUE(r.evaluated.Get(i)) << "hole in prefix at " << i;
      ASSERT_EQ(r.matches.Get(i), expected.Get(i))
          << "wrong bit for completed pair " << i;
    } else {
      ASSERT_FALSE(r.evaluated.Get(i)) << "bit past prefix at " << i;
      ASSERT_FALSE(r.matches.Get(i)) << "match bit past prefix at " << i;
    }
  }

  // Everything computed before the stop is kept: a retry with the warm
  // memo completes and agrees with the reference.
  const MatchResult retry = matcher.Run(fn, big.candidates, ctx);
  EXPECT_FALSE(retry.partial);
  EXPECT_EQ(retry.matches, expected);
}

TEST_F(CancellationTest, CancelFromAnotherThreadStopsSerialRun) {
  GeneratedDataset big = BigProducts(11);
  FeatureCatalog catalog(big.a.schema(), big.b.schema());
  catalog.InternAllSameAttribute();
  PairContext ctx(big.a, big.b, catalog);
  Rng rng(3);
  const CandidateSet sample = SamplePairs(big.candidates, 0.02, rng);
  RuleGeneratorConfig config;
  config.num_rules = 8;
  config.seed = 23;
  const MatchingFunction fn =
      RuleGenerator(ctx, sample, config).Generate();

  CancellationToken token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token.RequestCancel();
  });
  MemoMatcher matcher;
  const MatchResult r =
      matcher.Run(fn, big.candidates, ctx, RunControl(token));
  canceller.join();

  // The run either finished before the cancel landed (fast machine) or
  // stopped with a valid prefix; both must be internally consistent.
  if (r.partial) {
    EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
    EXPECT_EQ(r.evaluated.Count(), r.pairs_completed);
    EXPECT_LT(r.pairs_completed, big.candidates.size());
  } else {
    EXPECT_EQ(r.pairs_completed, big.candidates.size());
  }
}

/// ParallelMemoMatcher: a cancel mid-run must drain all workers (Run
/// returns only after joins — TSan validates the absence of races) and
/// every pair flagged evaluated must carry the correct bit.
TEST_F(CancellationTest, ParallelCancelMidRunDrainsWorkersCorrectly) {
  GeneratedDataset big = BigProducts(13);
  FeatureCatalog catalog(big.a.schema(), big.b.schema());
  catalog.InternAllSameAttribute();
  Rng rng(4);
  const CandidateSet sample = SamplePairs(big.candidates, 0.02, rng);

  PairContext ref_ctx(big.a, big.b, catalog);
  RuleGeneratorConfig config;
  config.num_rules = 8;
  config.seed = 25;
  const MatchingFunction fn =
      RuleGenerator(ref_ctx, sample, config).Generate();
  MemoMatcher reference;
  const Bitmap expected =
      reference.Run(fn, big.candidates, ref_ctx).matches;

  PairContext ctx(big.a, big.b, catalog);
  CancellationToken token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    token.RequestCancel();
  });
  ParallelMemoMatcher parallel(
      ParallelMemoMatcher::Options{.num_threads = 4});
  const MatchResult r =
      parallel.Run(fn, big.candidates, ctx, RunControl(token));
  canceller.join();

  if (r.partial) {
    EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
    EXPECT_EQ(r.evaluated.Count(), r.pairs_completed);
    size_t checked = 0;
    for (size_t i = 0; i < big.candidates.size(); ++i) {
      if (!r.evaluated.Get(i)) {
        ASSERT_FALSE(r.matches.Get(i)) << "match bit without evaluation";
        continue;
      }
      ASSERT_EQ(r.matches.Get(i), expected.Get(i))
          << "wrong bit for evaluated pair " << i;
      ++checked;
    }
    EXPECT_EQ(checked, r.pairs_completed);
  } else {
    EXPECT_EQ(r.matches, expected);
  }
}

TEST_F(CancellationTest, ParallelPreCancelledAllThreadCounts) {
  const MatchingFunction fn = Rules(6, 3);
  CancellationToken token;
  token.RequestCancel();
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    ParallelMemoMatcher parallel(
        ParallelMemoMatcher::Options{.num_threads = threads});
    const MatchResult r =
        parallel.Run(fn, ds_.candidates, *ctx_, RunControl(token));
    EXPECT_TRUE(r.partial) << threads << " threads";
    EXPECT_EQ(r.pairs_completed, 0u) << threads << " threads";
  }
}

TEST_F(CancellationTest, TokenResetAllowsReuse) {
  const MatchingFunction fn = Rules(4, 5);
  CancellationToken token;
  token.RequestCancel();
  MemoMatcher matcher;
  EXPECT_TRUE(
      matcher.Run(fn, ds_.candidates, *ctx_, RunControl(token)).partial);
  token.Reset();
  const MatchResult r =
      matcher.Run(fn, ds_.candidates, *ctx_, RunControl(token));
  EXPECT_FALSE(r.partial);
  EXPECT_EQ(r.pairs_completed, ds_.candidates.size());
}

/// Acceptance: a DebugSession first run under a 50ms deadline comes back
/// promptly with a partial result, the session stays usable, and a
/// subsequent unconstrained run completes with the same answer as an
/// untouched session.
TEST_F(CancellationTest, DebugSessionDeadlineReturnsPromptPartial) {
  // Quadratic string similarities over titles on tens of thousands of
  // pairs: the cold first run takes hundreds of ms, so a 50ms deadline
  // reliably trips mid-run.
  const char* kRule1 =
      "r1: jaro(title, title) >= 0.02 AND "
      "jaro_winkler(title, title) >= 0.02 AND "
      "levenshtein(title, title) >= 0.02";
  const char* kRule2 = "r2: exact_match(modelno, modelno) >= 1";
  GeneratedDataset big = BigProducts(17, 60000);
  GeneratedDataset big2 = BigProducts(17, 60000);  // identical twin

  DebugSession session(std::move(big.a), std::move(big.b),
                       std::move(big.candidates));
  ASSERT_TRUE(session.AddRuleText(kRule1).ok());
  ASSERT_TRUE(session.AddRuleText(kRule2).ok());

  Stopwatch timer;
  const MatchResult partial =
      session.Run(RunControl(Deadline::AfterMillis(50)));
  const double elapsed = timer.ElapsedMillis();

  ASSERT_TRUE(partial.partial)
      << "50ms deadline did not trip on the big dataset";
  EXPECT_EQ(partial.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(session.has_run()) << "partial first run must not start "
                                     "the incremental regime";
  // Generous 10x bound to absorb CI noise; typical overrun is < 1 pair's
  // evaluation past the deadline.
  EXPECT_LT(elapsed, 500.0);

  // The session survives: a later unconstrained run completes and agrees
  // with a fresh session that never saw a deadline.
  const MatchResult full = session.Run(RunControl());
  EXPECT_FALSE(full.partial);
  EXPECT_TRUE(session.has_run());

  DebugSession fresh(std::move(big2.a), std::move(big2.b),
                     std::move(big2.candidates));
  ASSERT_TRUE(fresh.AddRuleText(kRule1).ok());
  ASSERT_TRUE(fresh.AddRuleText(kRule2).ok());
  EXPECT_EQ(full.matches, fresh.Run());
}

}  // namespace
}  // namespace emdbg
