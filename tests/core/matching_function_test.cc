#include "src/core/matching_function.h"

#include <gtest/gtest.h>

namespace emdbg {
namespace {

Rule MakeRule(FeatureId f, double t) {
  Rule r;
  r.AddPredicate({f, CompareOp::kGe, t});
  return r;
}

TEST(MatchingFunctionTest, AddRuleAssignsStableIds) {
  MatchingFunction fn;
  const RuleId r0 = fn.AddRule(MakeRule(0, 0.5));
  const RuleId r1 = fn.AddRule(MakeRule(1, 0.6));
  EXPECT_NE(r0, r1);
  EXPECT_EQ(fn.num_rules(), 2u);
  // Predicate ids are distinct across rules.
  EXPECT_NE(fn.rule(0).predicate(0).id, fn.rule(1).predicate(0).id);
}

TEST(MatchingFunctionTest, AutoNamesRules) {
  MatchingFunction fn;
  const RuleId rid = fn.AddRule(MakeRule(0, 0.5));
  EXPECT_FALSE(fn.RuleById(rid)->name().empty());
}

TEST(MatchingFunctionTest, RemoveRule) {
  MatchingFunction fn;
  const RuleId r0 = fn.AddRule(MakeRule(0, 0.5));
  const RuleId r1 = fn.AddRule(MakeRule(1, 0.6));
  EXPECT_TRUE(fn.RemoveRule(r0).ok());
  EXPECT_EQ(fn.num_rules(), 1u);
  EXPECT_EQ(fn.rule(0).id(), r1);
  EXPECT_EQ(fn.RemoveRule(r0).code(), StatusCode::kNotFound);
}

TEST(MatchingFunctionTest, AddRemovePredicate) {
  MatchingFunction fn;
  const RuleId rid = fn.AddRule(MakeRule(0, 0.5));
  auto pid = fn.AddPredicate(rid, {1, CompareOp::kLt, 0.4});
  ASSERT_TRUE(pid.ok());
  EXPECT_EQ(fn.RuleById(rid)->size(), 2u);
  EXPECT_TRUE(fn.RemovePredicate(rid, *pid).ok());
  EXPECT_EQ(fn.RuleById(rid)->size(), 1u);
  EXPECT_EQ(fn.RemovePredicate(rid, *pid).code(), StatusCode::kNotFound);
  EXPECT_EQ(fn.AddPredicate(999, {1, CompareOp::kLt, 0.4}).status().code(),
            StatusCode::kNotFound);
}

TEST(MatchingFunctionTest, SetThreshold) {
  MatchingFunction fn;
  const RuleId rid = fn.AddRule(MakeRule(0, 0.5));
  const PredicateId pid = fn.rule(0).predicate(0).id;
  EXPECT_TRUE(fn.SetThreshold(rid, pid, 0.8).ok());
  EXPECT_DOUBLE_EQ(fn.RuleById(rid)->predicate(0).threshold, 0.8);
  EXPECT_EQ(fn.SetThreshold(rid, 999, 0.8).code(), StatusCode::kNotFound);
  EXPECT_EQ(fn.SetThreshold(999, pid, 0.8).code(), StatusCode::kNotFound);
}

TEST(MatchingFunctionTest, PermuteRulesKeepsIds) {
  MatchingFunction fn;
  const RuleId r0 = fn.AddRule(MakeRule(0, 0.5));
  const RuleId r1 = fn.AddRule(MakeRule(1, 0.6));
  const RuleId r2 = fn.AddRule(MakeRule(2, 0.7));
  fn.PermuteRules({2, 0, 1});
  EXPECT_EQ(fn.rule(0).id(), r2);
  EXPECT_EQ(fn.rule(1).id(), r0);
  EXPECT_EQ(fn.rule(2).id(), r1);
  EXPECT_EQ(fn.FindRule(r0), 1u);
}

TEST(MatchingFunctionTest, IdsNotReusedAfterRemoval) {
  MatchingFunction fn;
  const RuleId r0 = fn.AddRule(MakeRule(0, 0.5));
  EXPECT_TRUE(fn.RemoveRule(r0).ok());
  const RuleId r1 = fn.AddRule(MakeRule(1, 0.6));
  EXPECT_NE(r0, r1);
}

TEST(MatchingFunctionTest, UsedFeatures) {
  MatchingFunction fn;
  Rule r1;
  r1.AddPredicate({3, CompareOp::kGe, 0.5});
  r1.AddPredicate({1, CompareOp::kLt, 0.5});
  fn.AddRule(r1);
  Rule r2;
  r2.AddPredicate({1, CompareOp::kGe, 0.8});
  r2.AddPredicate({5, CompareOp::kGe, 0.2});
  fn.AddRule(r2);
  EXPECT_EQ(fn.UsedFeatures(), (std::vector<FeatureId>{3, 1, 5}));
  EXPECT_EQ(fn.num_predicates(), 4u);
}

TEST(MatchingFunctionTest, RuleByIdMutable) {
  MatchingFunction fn;
  const RuleId rid = fn.AddRule(MakeRule(0, 0.5));
  Rule* r = fn.MutableRuleById(rid);
  ASSERT_NE(r, nullptr);
  r->set_name("renamed");
  EXPECT_EQ(fn.RuleById(rid)->name(), "renamed");
  EXPECT_EQ(fn.RuleById(12345), nullptr);
}

}  // namespace
}  // namespace emdbg
