#include "src/core/match_result.h"

#include <gtest/gtest.h>

namespace emdbg {
namespace {

TEST(MatchStatsTest, Accumulate) {
  MatchStats a{10, 5, 20, 4, 1.5};
  const MatchStats b{1, 2, 3, 4, 0.5};
  a += b;
  EXPECT_EQ(a.feature_computations, 11u);
  EXPECT_EQ(a.memo_hits, 7u);
  EXPECT_EQ(a.predicate_evaluations, 23u);
  EXPECT_EQ(a.rule_evaluations, 8u);
  EXPECT_DOUBLE_EQ(a.elapsed_ms, 2.0);
}

TEST(MatchStatsTest, ToStringMentionsCounters) {
  const MatchStats s{1, 2, 3, 4, 5.0};
  const std::string str = s.ToString();
  EXPECT_NE(str.find("computations=1"), std::string::npos);
  EXPECT_NE(str.find("memo_hits=2"), std::string::npos);
}

TEST(EvaluateTest, PerfectPrediction) {
  Bitmap predicted(4);
  Bitmap labels(4);
  predicted.Set(1);
  labels.Set(1);
  const QualityMetrics m = Evaluate(predicted, labels);
  EXPECT_EQ(m.true_positives, 1u);
  EXPECT_EQ(m.false_positives, 0u);
  EXPECT_EQ(m.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(EvaluateTest, MixedPrediction) {
  Bitmap predicted(6);
  Bitmap labels(6);
  // tp at 0; fp at 1, 2; fn at 3; tn at 4, 5.
  predicted.Set(0);
  predicted.Set(1);
  predicted.Set(2);
  labels.Set(0);
  labels.Set(3);
  const QualityMetrics m = Evaluate(predicted, labels);
  EXPECT_EQ(m.true_positives, 1u);
  EXPECT_EQ(m.false_positives, 2u);
  EXPECT_EQ(m.false_negatives, 1u);
  EXPECT_NEAR(m.precision, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.recall, 0.5, 1e-12);
  EXPECT_NEAR(m.f1, 2 * (1.0 / 3.0) * 0.5 / (1.0 / 3.0 + 0.5), 1e-12);
}

TEST(EvaluateTest, NoPredictionsNoLabels) {
  const QualityMetrics m = Evaluate(Bitmap(3), Bitmap(3));
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(MatchResultTest, MatchCount) {
  MatchResult r;
  r.matches = Bitmap(10);
  r.matches.Set(3);
  r.matches.Set(7);
  EXPECT_EQ(r.MatchCount(), 2u);
}

}  // namespace
}  // namespace emdbg
