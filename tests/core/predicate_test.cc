#include "src/core/predicate.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace emdbg {
namespace {

TEST(CompareOpTest, Symbols) {
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kGe), ">=");
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kGt), ">");
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kLt), "<");
  EXPECT_STREQ(CompareOpSymbol(CompareOp::kLe), "<=");
}

TEST(CompareOpTest, BoundKinds) {
  EXPECT_TRUE(IsLowerBound(CompareOp::kGe));
  EXPECT_TRUE(IsLowerBound(CompareOp::kGt));
  EXPECT_FALSE(IsLowerBound(CompareOp::kLt));
  EXPECT_FALSE(IsLowerBound(CompareOp::kLe));
}

TEST(PredicateTest, TestGe) {
  const Predicate p{0, CompareOp::kGe, 0.7};
  EXPECT_TRUE(p.Test(0.7));
  EXPECT_TRUE(p.Test(0.9));
  EXPECT_FALSE(p.Test(0.69));
}

TEST(PredicateTest, TestGt) {
  const Predicate p{0, CompareOp::kGt, 0.7};
  EXPECT_FALSE(p.Test(0.7));
  EXPECT_TRUE(p.Test(0.71));
}

TEST(PredicateTest, TestLt) {
  const Predicate p{0, CompareOp::kLt, 0.3};
  EXPECT_TRUE(p.Test(0.29));
  EXPECT_FALSE(p.Test(0.3));
}

TEST(PredicateTest, TestLe) {
  const Predicate p{0, CompareOp::kLe, 0.3};
  EXPECT_TRUE(p.Test(0.3));
  EXPECT_FALSE(p.Test(0.31));
}

TEST(PredicateTest, SameTestIgnoresId) {
  Predicate a{0, CompareOp::kGe, 0.5};
  Predicate b{0, CompareOp::kGe, 0.5};
  b.id = 99;
  EXPECT_TRUE(a.SameTest(b));
  b.threshold = 0.6;
  EXPECT_FALSE(a.SameTest(b));
}

TEST(PredicateTest, ToString) {
  FeatureCatalog catalog(testing::PeopleTableA().schema(),
                         testing::PeopleTableB().schema());
  const FeatureId f =
      *catalog.InternByName(SimFunction::kJaccard, "name", "name");
  const Predicate p{f, CompareOp::kGe, 0.7};
  EXPECT_EQ(PredicateToString(p, catalog), "jaccard(name, name) >= 0.7");
}

}  // namespace
}  // namespace emdbg
