#include <cstdio>

#include <gtest/gtest.h>

#include "src/core/rule_parser.h"
#include "src/util/csv.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

class RulesIoTest : public ::testing::Test {
 protected:
  RulesIoTest()
      : catalog_(testing::PeopleTableA().schema(),
                 testing::PeopleTableB().schema()),
        // Per-test path: ctest runs suite members as parallel processes.
        path_(::testing::TempDir() + "/emdbg_rules_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name() +
              ".rules") {}

  ~RulesIoTest() override { std::remove(path_.c_str()); }

  FeatureCatalog catalog_;
  std::string path_;
};

TEST_F(RulesIoTest, SaveLoadRoundTrip) {
  auto fn = ParseMatchingFunction(
      "r1: jaccard(name, name) >= 0.7 AND jaro(zip, zip) < 0.4\n"
      "r2: exact_match(phone, phone) >= 1\n",
      catalog_);
  ASSERT_TRUE(fn.ok());
  ASSERT_TRUE(SaveRulesFile(*fn, catalog_, path_).ok());

  FeatureCatalog catalog2(testing::PeopleTableA().schema(),
                          testing::PeopleTableB().schema());
  auto loaded = LoadRulesFile(path_, catalog2);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->num_rules(), fn->num_rules());
  for (size_t i = 0; i < fn->num_rules(); ++i) {
    EXPECT_EQ(loaded->rule(i).name(), fn->rule(i).name());
    ASSERT_EQ(loaded->rule(i).size(), fn->rule(i).size());
    for (size_t k = 0; k < fn->rule(i).size(); ++k) {
      const Predicate& p = fn->rule(i).predicate(k);
      const Predicate& q = loaded->rule(i).predicate(k);
      EXPECT_EQ(p.op, q.op);
      EXPECT_DOUBLE_EQ(p.threshold, q.threshold);
      // Feature names must match (ids may differ across catalogs).
      EXPECT_EQ(catalog_.Name(p.feature), catalog2.Name(q.feature));
    }
  }
}

TEST_F(RulesIoTest, LoadMissingFileIsIoError) {
  FeatureCatalog catalog(testing::PeopleTableA().schema(),
                         testing::PeopleTableB().schema());
  EXPECT_EQ(LoadRulesFile("/no/such/file.rules", catalog).status().code(),
            StatusCode::kIoError);
}

TEST_F(RulesIoTest, SavedFileHasHeaderComment) {
  auto fn = ParseMatchingFunction("jaccard(name, name) >= 0.5", catalog_);
  ASSERT_TRUE(fn.ok());
  ASSERT_TRUE(SaveRulesFile(*fn, catalog_, path_).ok());
  auto text = ReadFileToString(path_);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text->rfind("# emdbg rule set", 0), 0u);
}

}  // namespace
}  // namespace emdbg
