/// Property tests for the rule DSL: randomly generated rule sets must
/// survive a print → parse round trip exactly, and the parser must reject
/// (not crash on) mangled inputs.

#include <gtest/gtest.h>

#include "src/core/rule_parser.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

class ParserFuzzTest : public ::testing::Test {
 protected:
  ParserFuzzTest()
      : catalog_(testing::PeopleTableA().schema(),
                 testing::PeopleTableB().schema()) {}

  /// Random rule over the people schema using every function/op.
  Rule RandomRule(Rng& rng) {
    static const char* kAttrs[] = {"name", "phone", "zip", "street"};
    Rule rule;
    const size_t n = 1 + rng.Uniform(5);
    for (size_t i = 0; i < n; ++i) {
      const SimFunction fn =
          AllSimFunctions()[rng.Uniform(AllSimFunctions().size())];
      const char* attr_a = kAttrs[rng.Uniform(4)];
      const char* attr_b = kAttrs[rng.Uniform(4)];
      Predicate p;
      p.feature = *catalog_.InternByName(fn, attr_a, attr_b);
      const CompareOp ops[] = {CompareOp::kGe, CompareOp::kGt,
                               CompareOp::kLt, CompareOp::kLe};
      p.op = ops[rng.Uniform(4)];
      // Round to 4 decimals so the printed form is exact.
      p.threshold = static_cast<double>(rng.Uniform(10000)) / 10000.0;
      rule.AddPredicate(p);
    }
    return rule;
  }

  FeatureCatalog catalog_;
};

TEST_F(ParserFuzzTest, PrintParseRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    MatchingFunction fn;
    const size_t num_rules = 1 + rng.Uniform(6);
    for (size_t i = 0; i < num_rules; ++i) fn.AddRule(RandomRule(rng));

    const std::string text = fn.ToString(catalog_);
    auto reparsed = ParseMatchingFunction(text, catalog_);
    ASSERT_TRUE(reparsed.ok()) << text << "\n" << reparsed.status();
    ASSERT_EQ(reparsed->num_rules(), fn.num_rules()) << text;
    for (size_t r = 0; r < fn.num_rules(); ++r) {
      ASSERT_EQ(reparsed->rule(r).size(), fn.rule(r).size()) << text;
      for (size_t k = 0; k < fn.rule(r).size(); ++k) {
        const Predicate& p = fn.rule(r).predicate(k);
        const Predicate& q = reparsed->rule(r).predicate(k);
        EXPECT_EQ(p.feature, q.feature) << text;
        EXPECT_EQ(p.op, q.op) << text;
        EXPECT_DOUBLE_EQ(p.threshold, q.threshold) << text;
      }
    }
  }
}

TEST_F(ParserFuzzTest, MangledInputsRejectedWithoutCrash) {
  Rng rng(123);
  const std::string base =
      "r1: jaccard(name, name) >= 0.7 AND jaro(zip, zip) < 0.4";
  for (int trial = 0; trial < 300; ++trial) {
    std::string mangled = base;
    // Apply 1-3 random mutations: delete, duplicate, or randomize chars.
    const size_t mutations = 1 + rng.Uniform(3);
    for (size_t m = 0; m < mutations && !mangled.empty(); ++m) {
      const size_t pos = rng.Uniform(mangled.size());
      switch (rng.Uniform(3)) {
        case 0:
          mangled.erase(pos, 1);
          break;
        case 1:
          mangled.insert(pos, 1, mangled[pos]);
          break;
        default:
          mangled[pos] = static_cast<char>(32 + rng.Uniform(95));
          break;
      }
    }
    // Must either parse cleanly or return an error status — never crash.
    auto result = ParseRule(mangled, catalog_);
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST_F(ParserFuzzTest, GarbageInputsRejected) {
  Rng rng(321);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    const size_t len = rng.Uniform(60);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(32 + rng.Uniform(95)));
    }
    (void)ParseRule(garbage, catalog_);          // must not crash
    (void)ParseMatchingFunction(garbage, catalog_);
  }
}

}  // namespace
}  // namespace emdbg
