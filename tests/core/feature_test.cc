#include "src/core/feature.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace emdbg {
namespace {

FeatureCatalog PeopleCatalog() {
  return FeatureCatalog(testing::PeopleTableA().schema(),
                        testing::PeopleTableB().schema());
}

TEST(FeatureCatalogTest, InternDedupes) {
  FeatureCatalog catalog = PeopleCatalog();
  const Feature f{SimFunction::kJaccard, 0, 0};
  const FeatureId id1 = catalog.Intern(f);
  const FeatureId id2 = catalog.Intern(f);
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(FeatureCatalogTest, DistinctFeaturesGetDistinctIds) {
  FeatureCatalog catalog = PeopleCatalog();
  const FeatureId a = catalog.Intern({SimFunction::kJaccard, 0, 0});
  const FeatureId b = catalog.Intern({SimFunction::kJaro, 0, 0});
  const FeatureId c = catalog.Intern({SimFunction::kJaccard, 0, 1});
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(catalog.size(), 3u);
}

TEST(FeatureCatalogTest, InternByName) {
  FeatureCatalog catalog = PeopleCatalog();
  auto id = catalog.InternByName(SimFunction::kJaro, "name", "name");
  ASSERT_TRUE(id.ok());
  const Feature& f = catalog.feature(*id);
  EXPECT_EQ(f.fn, SimFunction::kJaro);
  EXPECT_EQ(f.attr_a, 0u);
  EXPECT_EQ(f.attr_b, 0u);
}

TEST(FeatureCatalogTest, InternByNameUnknownAttribute) {
  FeatureCatalog catalog = PeopleCatalog();
  EXPECT_EQ(catalog.InternByName(SimFunction::kJaro, "bogus", "name")
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(catalog.InternByName(SimFunction::kJaro, "name", "bogus")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(FeatureCatalogTest, FindMissing) {
  FeatureCatalog catalog = PeopleCatalog();
  EXPECT_EQ(catalog.Find({SimFunction::kDice, 1, 1}), kInvalidFeature);
}

TEST(FeatureCatalogTest, Name) {
  FeatureCatalog catalog = PeopleCatalog();
  const FeatureId id = catalog.Intern({SimFunction::kJaccard, 0, 1});
  EXPECT_EQ(catalog.Name(id), "jaccard(name, phone)");
}

TEST(FeatureCatalogTest, InternAllSameAttribute) {
  FeatureCatalog catalog = PeopleCatalog();
  const auto added = catalog.InternAllSameAttribute();
  // 4 shared attributes x 13 functions.
  EXPECT_EQ(added.size(), 4u * kNumSimFunctions);
  EXPECT_EQ(catalog.size(), 4u * kNumSimFunctions);
  // Idempotent.
  catalog.InternAllSameAttribute();
  EXPECT_EQ(catalog.size(), 4u * kNumSimFunctions);
}

}  // namespace
}  // namespace emdbg
