#include "src/core/sampler.h"

#include <set>

#include <gtest/gtest.h>

namespace emdbg {
namespace {

CandidateSet NumberedPairs(size_t n) {
  CandidateSet out;
  for (uint32_t i = 0; i < n; ++i) out.Add(PairId{i, i});
  return out;
}

TEST(SamplerTest, FractionRespected) {
  const CandidateSet all = NumberedPairs(10000);
  Rng rng(1);
  const CandidateSet sample = SamplePairs(all, 0.01, rng);
  EXPECT_EQ(sample.size(), 100u);
}

TEST(SamplerTest, MinSizeFloor) {
  const CandidateSet all = NumberedPairs(1000);
  Rng rng(2);
  // 1% of 1000 = 10 < default min 50.
  const CandidateSet sample = SamplePairs(all, 0.01, rng);
  EXPECT_EQ(sample.size(), 50u);
}

TEST(SamplerTest, SmallInputReturnsAll) {
  const CandidateSet all = NumberedPairs(20);
  Rng rng(3);
  const CandidateSet sample = SamplePairs(all, 0.5, rng);
  EXPECT_EQ(sample.size(), 20u);
}

TEST(SamplerTest, SampledPairsAreDistinctMembers) {
  const CandidateSet all = NumberedPairs(500);
  Rng rng(4);
  const CandidateSet sample = SamplePairs(all, 0.2, rng);
  std::set<uint32_t> seen;
  for (const PairId& p : sample.pairs()) {
    EXPECT_EQ(p.a, p.b);
    EXPECT_LT(p.a, 500u);
    EXPECT_TRUE(seen.insert(p.a).second);
  }
}

TEST(SamplerTest, DeterministicGivenSeed) {
  const CandidateSet all = NumberedPairs(1000);
  Rng r1(5);
  Rng r2(5);
  EXPECT_EQ(SamplePairs(all, 0.1, r1).pairs(),
            SamplePairs(all, 0.1, r2).pairs());
}

TEST(SamplerTest, FractionClamped) {
  const CandidateSet all = NumberedPairs(100);
  Rng rng(6);
  EXPECT_EQ(SamplePairs(all, 2.0, rng).size(), 100u);
  EXPECT_EQ(SamplePairs(all, -1.0, rng, 10).size(), 10u);
}

}  // namespace
}  // namespace emdbg
