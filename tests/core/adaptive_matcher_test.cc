#include "src/core/adaptive_matcher.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/core/memo_matcher.h"
#include "src/core/ordering.h"
#include "src/core/rule_generator.h"
#include "src/core/sampler.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

class AdaptiveMatcherTest : public ::testing::Test {
 protected:
  AdaptiveMatcherTest() : ds_(testing::SmallProducts()) {
    catalog_ = FeatureCatalog(ds_.a.schema(), ds_.b.schema());
    catalog_.InternAllSameAttribute();
    ctx_ = std::make_unique<PairContext>(ds_.a, ds_.b, catalog_);
    Rng rng(1);
    sample_ = SamplePairs(ds_.candidates, 0.2, rng);
  }

  MatchingFunction Rules(size_t n, uint64_t seed) {
    RuleGeneratorConfig config;
    config.num_rules = n;
    config.seed = seed;
    RuleGenerator gen(*ctx_, sample_, config);
    return gen.Generate();
  }

  GeneratedDataset ds_;
  FeatureCatalog catalog_;
  std::unique_ptr<PairContext> ctx_;
  CandidateSet sample_;
};

TEST_F(AdaptiveMatcherTest, AgreesWithStaticMatcher) {
  for (uint64_t seed : {3u, 4u, 5u}) {
    const MatchingFunction fn = Rules(10, seed);
    const CostModel model =
        CostModel::EstimateForFunction(fn, *ctx_, sample_);
    MemoMatcher static_matcher;
    AdaptiveMemoMatcher adaptive(model);
    EXPECT_EQ(adaptive.Run(fn, ds_.candidates, *ctx_).matches,
              static_matcher.Run(fn, ds_.candidates, *ctx_).matches)
        << "seed " << seed;
  }
}

TEST_F(AdaptiveMatcherTest, AgreesUnderPredicateReordering) {
  MatchingFunction fn = Rules(8, 6);
  const CostModel model =
      CostModel::EstimateForFunction(fn, *ctx_, sample_);
  MemoMatcher static_matcher;
  const Bitmap expected =
      static_matcher.Run(fn, ds_.candidates, *ctx_).matches;
  OrderAllRulePredicates(fn, model);
  AdaptiveMemoMatcher adaptive(model);
  EXPECT_EQ(adaptive.Run(fn, ds_.candidates, *ctx_).matches, expected);
}

TEST_F(AdaptiveMatcherTest, ComputesEachPairFeatureAtMostOnce) {
  const MatchingFunction fn = Rules(12, 7);
  const CostModel model =
      CostModel::EstimateForFunction(fn, *ctx_, sample_);
  AdaptiveMemoMatcher adaptive(model);
  const MatchStats stats =
      adaptive.Run(fn, ds_.candidates, *ctx_).stats;
  EXPECT_LE(stats.feature_computations,
            fn.UsedFeatures().size() * ds_.candidates.size());
}

TEST_F(AdaptiveMatcherTest, EmptyFunctionMatchesNothing) {
  const MatchingFunction fn;
  const CostModel model =
      CostModel::EstimateForFunction(fn, *ctx_, sample_);
  AdaptiveMemoMatcher adaptive(model);
  EXPECT_EQ(adaptive.Run(fn, ds_.candidates, *ctx_).MatchCount(), 0u);
}

TEST_F(AdaptiveMatcherTest, Name) {
  const CostModel model = CostModel::EstimateForFunction(
      MatchingFunction(), *ctx_, sample_);
  EXPECT_STREQ(AdaptiveMemoMatcher(model).name(), "DM+EE(adaptive)");
}

}  // namespace
}  // namespace emdbg
