#include "src/core/parallel_matcher.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/core/memo_matcher.h"
#include "src/core/rule_generator.h"
#include "src/core/sampler.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

class ParallelMatcherTest : public ::testing::Test {
 protected:
  ParallelMatcherTest() : ds_(testing::SmallProducts()) {
    catalog_ = FeatureCatalog(ds_.a.schema(), ds_.b.schema());
    catalog_.InternAllSameAttribute();
    ctx_ = std::make_unique<PairContext>(ds_.a, ds_.b, catalog_);
    Rng rng(1);
    sample_ = SamplePairs(ds_.candidates, 0.2, rng);
  }

  MatchingFunction Rules(size_t n, uint64_t seed) {
    RuleGeneratorConfig config;
    config.num_rules = n;
    config.seed = seed;
    RuleGenerator gen(*ctx_, sample_, config);
    return gen.Generate();
  }

  GeneratedDataset ds_;
  FeatureCatalog catalog_;
  std::unique_ptr<PairContext> ctx_;
  CandidateSet sample_;
};

TEST_F(ParallelMatcherTest, AgreesWithSerialAcrossThreadCounts) {
  const MatchingFunction fn = Rules(10, 7);
  MemoMatcher serial;
  const Bitmap expected = serial.Run(fn, ds_.candidates, *ctx_).matches;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    ParallelMemoMatcher parallel(
        ParallelMemoMatcher::Options{.num_threads = threads});
    EXPECT_EQ(parallel.Run(fn, ds_.candidates, *ctx_).matches, expected)
        << threads << " threads";
  }
}

TEST_F(ParallelMatcherTest, CheckCacheFirstVariantAgrees) {
  const MatchingFunction fn = Rules(8, 9);
  MemoMatcher serial;
  const Bitmap expected = serial.Run(fn, ds_.candidates, *ctx_).matches;
  ParallelMemoMatcher parallel(ParallelMemoMatcher::Options{
      .num_threads = 4, .check_cache_first = true});
  EXPECT_EQ(parallel.Run(fn, ds_.candidates, *ctx_).matches, expected);
}

TEST_F(ParallelMatcherTest, StatsAggregateAcrossThreads) {
  const MatchingFunction fn = Rules(6, 11);
  ParallelMemoMatcher parallel(
      ParallelMemoMatcher::Options{.num_threads = 4});
  const MatchResult result = parallel.Run(fn, ds_.candidates, *ctx_);
  // Same per-pair work as serial DM+EE: each pair evaluates every rule
  // until one fires, so rule_evaluations is bounded by pairs * rules and
  // at least pairs (non-empty rule set, unmatched pairs check all).
  EXPECT_GE(result.stats.rule_evaluations, ds_.candidates.size());
  EXPECT_LE(result.stats.rule_evaluations,
            ds_.candidates.size() * fn.num_rules());
  EXPECT_GT(result.stats.feature_computations, 0u);
}

TEST_F(ParallelMatcherTest, DeterministicMatchesAcrossRuns) {
  const MatchingFunction fn = Rules(8, 13);
  ParallelMemoMatcher parallel(
      ParallelMemoMatcher::Options{.num_threads = 4});
  const Bitmap first = parallel.Run(fn, ds_.candidates, *ctx_).matches;
  const Bitmap second = parallel.Run(fn, ds_.candidates, *ctx_).matches;
  EXPECT_EQ(first, second);
}

TEST_F(ParallelMatcherTest, EmptyFunctionAndEmptyPairs) {
  ParallelMemoMatcher parallel(
      ParallelMemoMatcher::Options{.num_threads = 4});
  EXPECT_EQ(
      parallel.Run(MatchingFunction(), ds_.candidates, *ctx_).MatchCount(),
      0u);
  const CandidateSet empty;
  const MatchingFunction fn = Rules(3, 15);
  EXPECT_EQ(parallel.Run(fn, empty, *ctx_).matches.size(), 0u);
}

TEST_F(ParallelMatcherTest, PrewarmMakesContextReadOnly) {
  // After Prewarm, parallel feature computation must not grow the token
  // caches (they are fully populated).
  const MatchingFunction fn = Rules(10, 17);
  ctx_->Prewarm(fn.UsedFeatures());
  const size_t bytes_before = ctx_->TokenCacheBytes();
  ParallelMemoMatcher parallel(
      ParallelMemoMatcher::Options{.num_threads = 4});
  parallel.Run(fn, ds_.candidates, *ctx_);
  EXPECT_EQ(ctx_->TokenCacheBytes(), bytes_before);
}

}  // namespace
}  // namespace emdbg
