#include "src/core/parallel_matcher.h"

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/memo_matcher.h"
#include "src/core/rule_generator.h"
#include "src/core/sampler.h"
#include "src/util/cancellation.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

class ParallelMatcherTest : public ::testing::Test {
 protected:
  ParallelMatcherTest() : ds_(testing::SmallProducts()) {
    catalog_ = FeatureCatalog(ds_.a.schema(), ds_.b.schema());
    catalog_.InternAllSameAttribute();
    ctx_ = std::make_unique<PairContext>(ds_.a, ds_.b, catalog_);
    Rng rng(1);
    sample_ = SamplePairs(ds_.candidates, 0.2, rng);
  }

  MatchingFunction Rules(size_t n, uint64_t seed) {
    RuleGeneratorConfig config;
    config.num_rules = n;
    config.seed = seed;
    RuleGenerator gen(*ctx_, sample_, config);
    return gen.Generate();
  }

  GeneratedDataset ds_;
  FeatureCatalog catalog_;
  std::unique_ptr<PairContext> ctx_;
  CandidateSet sample_;
};

TEST_F(ParallelMatcherTest, AgreesWithSerialAcrossThreadCounts) {
  const MatchingFunction fn = Rules(10, 7);
  MemoMatcher serial;
  const Bitmap expected = serial.Run(fn, ds_.candidates, *ctx_).matches;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    ParallelMemoMatcher parallel(
        ParallelMemoMatcher::Options{.num_threads = threads});
    EXPECT_EQ(parallel.Run(fn, ds_.candidates, *ctx_).matches, expected)
        << threads << " threads";
  }
}

TEST_F(ParallelMatcherTest, InterningBitIdenticalSerialAndParallel) {
  // Same matching function evaluated three ways: serial with the string
  // kernels (interning off), serial with the interned-id fast path, and
  // parallel with the fast path — all three match bitmaps must be equal.
  const MatchingFunction fn = Rules(10, 19);
  PairContext ctx_off(
      ds_.a, ds_.b, catalog_,
      PairContext::Options{.cache_tokens = true, .intern_tokens = false});
  MemoMatcher serial;
  const Bitmap strings = serial.Run(fn, ds_.candidates, ctx_off).matches;
  const Bitmap ids = serial.Run(fn, ds_.candidates, *ctx_).matches;
  EXPECT_EQ(ids, strings);
  ParallelMemoMatcher parallel(
      ParallelMemoMatcher::Options{.num_threads = 4});
  PairContext ctx_fresh(ds_.a, ds_.b, catalog_);
  EXPECT_EQ(parallel.Run(fn, ds_.candidates, ctx_fresh).matches, strings);
}

TEST_F(ParallelMatcherTest, CheckCacheFirstVariantAgrees) {
  const MatchingFunction fn = Rules(8, 9);
  MemoMatcher serial;
  const Bitmap expected = serial.Run(fn, ds_.candidates, *ctx_).matches;
  ParallelMemoMatcher parallel(ParallelMemoMatcher::Options{
      .num_threads = 4, .check_cache_first = true});
  EXPECT_EQ(parallel.Run(fn, ds_.candidates, *ctx_).matches, expected);
}

TEST_F(ParallelMatcherTest, StatsAggregateAcrossThreads) {
  const MatchingFunction fn = Rules(6, 11);
  ParallelMemoMatcher parallel(
      ParallelMemoMatcher::Options{.num_threads = 4});
  const MatchResult result = parallel.Run(fn, ds_.candidates, *ctx_);
  // Same per-pair work as serial DM+EE: each pair evaluates every rule
  // until one fires, so rule_evaluations is bounded by pairs * rules and
  // at least pairs (non-empty rule set, unmatched pairs check all).
  EXPECT_GE(result.stats.rule_evaluations, ds_.candidates.size());
  EXPECT_LE(result.stats.rule_evaluations,
            ds_.candidates.size() * fn.num_rules());
  EXPECT_GT(result.stats.feature_computations, 0u);
}

TEST_F(ParallelMatcherTest, DeterministicMatchesAcrossRuns) {
  const MatchingFunction fn = Rules(8, 13);
  ParallelMemoMatcher parallel(
      ParallelMemoMatcher::Options{.num_threads = 4});
  const Bitmap first = parallel.Run(fn, ds_.candidates, *ctx_).matches;
  const Bitmap second = parallel.Run(fn, ds_.candidates, *ctx_).matches;
  EXPECT_EQ(first, second);
}

TEST_F(ParallelMatcherTest, EmptyFunctionAndEmptyPairs) {
  ParallelMemoMatcher parallel(
      ParallelMemoMatcher::Options{.num_threads = 4});
  EXPECT_EQ(
      parallel.Run(MatchingFunction(), ds_.candidates, *ctx_).MatchCount(),
      0u);
  const CandidateSet empty;
  const MatchingFunction fn = Rules(3, 15);
  EXPECT_EQ(parallel.Run(fn, empty, *ctx_).matches.size(), 0u);
}

TEST_F(ParallelMatcherTest, RunWithStateBitIdenticalToSerial) {
  // The engine's core guarantee: for every seed and thread count, the
  // parallel matcher's matches, work counters, and decision bitmaps are
  // bit-identical to the serial MemoMatcher's.
  for (const uint64_t seed : {5u, 23u, 41u}) {
    const MatchingFunction fn = Rules(8, seed);
    MemoMatcher serial(MemoMatcher::Options{.check_cache_first = true});
    MatchState want_state;
    const MatchResult want =
        serial.RunWithState(fn, ds_.candidates, *ctx_, want_state);
    const size_t n = ds_.candidates.size();
    const auto rule_true = [&](const MatchState& s, RuleId rid) {
      const Bitmap* bm = s.FindRuleTrue(rid);
      return bm != nullptr ? *bm : Bitmap(n);
    };
    const auto pred_false = [&](const MatchState& s, PredicateId pid) {
      const Bitmap* bm = s.FindPredFalse(pid);
      return bm != nullptr ? *bm : Bitmap(n);
    };
    for (const size_t threads : {2u, 3u, 8u}) {
      ThreadPool pool(threads);
      ParallelMemoMatcher parallel(ParallelMemoMatcher::Options{
          .check_cache_first = true, .pool = &pool});
      MatchState got_state;
      const MatchResult got =
          parallel.RunWithState(fn, ds_.candidates, *ctx_, got_state);
      ASSERT_EQ(got.matches, want.matches) << "seed " << seed << " threads "
                                           << threads;
      EXPECT_EQ(got_state.matches(), want_state.matches());
      EXPECT_EQ(got.stats.rule_evaluations, want.stats.rule_evaluations);
      EXPECT_EQ(got.stats.predicate_evaluations,
                want.stats.predicate_evaluations);
      EXPECT_EQ(got.stats.feature_computations,
                want.stats.feature_computations);
      EXPECT_EQ(got.stats.memo_hits, want.stats.memo_hits);
      EXPECT_EQ(got_state.memo().FilledCount(),
                want_state.memo().FilledCount());
      for (const Rule& r : fn.rules()) {
        EXPECT_EQ(rule_true(got_state, r.id()), rule_true(want_state, r.id()))
            << "rule " << r.id();
        for (const Predicate& p : r.predicates()) {
          EXPECT_EQ(pred_false(got_state, p.id), pred_false(want_state, p.id))
              << "predicate " << p.id;
        }
      }
    }
  }
}

TEST_F(ParallelMatcherTest, PerWorkerStatsSumToTotalWithNoLoss) {
  const MatchingFunction fn = Rules(8, 19);
  MemoMatcher serial;
  const MatchStats want = serial.Run(fn, ds_.candidates, *ctx_).stats;

  std::vector<MatchStats> per_worker;
  ThreadPool pool(4);
  ParallelMemoMatcher parallel(ParallelMemoMatcher::Options{
      .pool = &pool, .per_worker_stats = &per_worker});
  const MatchResult result = parallel.Run(fn, ds_.candidates, *ctx_);

  ASSERT_EQ(per_worker.size(), pool.num_workers());
  MatchStats sum;
  for (const MatchStats& s : per_worker) sum += s;
  // Dynamic scheduling must not lose or double-count any worker's
  // counters: the per-worker sum is the aggregate, which is exactly the
  // serial matcher's work.
  EXPECT_EQ(sum.rule_evaluations, result.stats.rule_evaluations);
  EXPECT_EQ(sum.predicate_evaluations, result.stats.predicate_evaluations);
  EXPECT_EQ(sum.feature_computations, result.stats.feature_computations);
  EXPECT_EQ(sum.memo_hits, result.stats.memo_hits);
  EXPECT_EQ(result.stats.rule_evaluations, want.rule_evaluations);
  EXPECT_EQ(result.stats.predicate_evaluations, want.predicate_evaluations);
  EXPECT_EQ(result.stats.feature_computations, want.feature_computations);
  EXPECT_EQ(result.stats.memo_hits, want.memo_hits);
}

TEST_F(ParallelMatcherTest, StaticScheduleAgreesWithDynamic) {
  const MatchingFunction fn = Rules(8, 29);
  ThreadPool pool(4);
  ParallelMemoMatcher dynamic(ParallelMemoMatcher::Options{.pool = &pool});
  ParallelMemoMatcher static_sched(ParallelMemoMatcher::Options{
      .pool = &pool, .dynamic_schedule = false});
  EXPECT_EQ(dynamic.Run(fn, ds_.candidates, *ctx_).matches,
            static_sched.Run(fn, ds_.candidates, *ctx_).matches);
}

TEST_F(ParallelMatcherTest, RejectsHashMemoWhenMultithreaded) {
  const MatchingFunction fn = Rules(4, 31);
  HashMemo memo;
  ParallelMemoMatcher parallel(
      ParallelMemoMatcher::Options{.num_threads = 4});
  const MatchResult r = parallel.RunWithMemo(fn, ds_.candidates, *ctx_, memo);
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.pairs_completed, 0u);
  EXPECT_EQ(r.evaluated.Count(), 0u);
  EXPECT_EQ(memo.FilledCount(), 0u);

  // The same memo is fine single-threaded (no concurrent Store).
  ParallelMemoMatcher one(ParallelMemoMatcher::Options{.num_threads = 1});
  const MatchResult ok = one.RunWithMemo(fn, ds_.candidates, *ctx_, memo);
  EXPECT_FALSE(ok.partial);
  MemoMatcher serial;
  EXPECT_EQ(ok.matches, serial.Run(fn, ds_.candidates, *ctx_).matches);
}

TEST_F(ParallelMatcherTest, ShardedMemoAgreesWithSerialAndReusesValues) {
  const MatchingFunction fn = Rules(8, 37);
  MemoMatcher serial;
  const Bitmap expected = serial.Run(fn, ds_.candidates, *ctx_).matches;

  ShardedMemo memo;
  ThreadPool pool(4);
  ParallelMemoMatcher parallel(ParallelMemoMatcher::Options{.pool = &pool});
  const MatchResult first =
      parallel.RunWithMemo(fn, ds_.candidates, *ctx_, memo);
  ASSERT_FALSE(first.partial) << first.status.ToString();
  EXPECT_EQ(first.matches, expected);
  EXPECT_GT(memo.FilledCount(), 0u);

  // Second run over the warm sharded memo: every needed value is already
  // stored, so no feature is recomputed and the matches are unchanged.
  const MatchResult second =
      parallel.RunWithMemo(fn, ds_.candidates, *ctx_, memo);
  EXPECT_EQ(second.matches, expected);
  EXPECT_EQ(second.stats.feature_computations, 0u);
  EXPECT_GT(second.stats.memo_hits, 0u);
}

TEST_F(ParallelMatcherTest, CancelledRunReportsExactEvaluatedBitmap) {
  // Mid-run cancellation under dynamic chunking: the partial result's
  // `evaluated` bitmap must name exactly the pairs whose evaluation
  // completed (a union of claimed chunks, not a prefix), and every
  // evaluated pair's match bit must agree with an uncancelled run.
  const MatchingFunction fn = Rules(10, 43);
  ThreadPool pool(4);
  ParallelMemoMatcher parallel(ParallelMemoMatcher::Options{.pool = &pool});
  const Bitmap expected = parallel.Run(fn, ds_.candidates, *ctx_).matches;

  // Race a canceller thread against the run a few times; whenever the
  // stop lands mid-run, the exactness contract must hold. (The
  // deterministic chunk-level exactness proof is in thread_pool_test;
  // this exercises the matcher-level translation to `evaluated`.)
  const size_t n = ds_.candidates.size();
  for (int attempt = 0; attempt < 8; ++attempt) {
    CancellationToken token;
    std::thread canceller([&] { token.RequestCancel(); });
    const MatchResult r =
        parallel.Run(fn, ds_.candidates, *ctx_, RunControl(token));
    canceller.join();
    if (!r.partial) continue;  // the run won the race; contract vacuous
    EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
    EXPECT_EQ(r.evaluated.Count(), r.pairs_completed);
    EXPECT_LT(r.pairs_completed, n);
    for (size_t i = 0; i < n; ++i) {
      if (r.evaluated.Get(i)) {
        EXPECT_EQ(r.matches.Get(i), expected.Get(i)) << "pair " << i;
      } else {
        // Never-written bits stay unset — callers must not read them.
        EXPECT_FALSE(r.matches.Get(i)) << "pair " << i;
      }
    }
  }
  // Pre-cancelled runs always stop with nothing evaluated.
  CancellationToken pre;
  pre.RequestCancel();
  const MatchResult r =
      parallel.Run(fn, ds_.candidates, *ctx_, RunControl(pre));
  ASSERT_TRUE(r.partial);
  EXPECT_EQ(r.pairs_completed, 0u);
  EXPECT_EQ(r.evaluated.Count(), 0u);
}

TEST_F(ParallelMatcherTest, PrewarmMakesContextReadOnly) {
  // After Prewarm, parallel feature computation must not grow the token
  // caches (they are fully populated).
  const MatchingFunction fn = Rules(10, 17);
  ctx_->Prewarm(fn.UsedFeatures());
  const size_t bytes_before = ctx_->TokenCacheBytes();
  ParallelMemoMatcher parallel(
      ParallelMemoMatcher::Options{.num_threads = 4});
  parallel.Run(fn, ds_.candidates, *ctx_);
  EXPECT_EQ(ctx_->TokenCacheBytes(), bytes_before);
}

}  // namespace
}  // namespace emdbg
