#include "src/core/rule_parser.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace emdbg {
namespace {

class RuleParserTest : public ::testing::Test {
 protected:
  RuleParserTest()
      : catalog_(testing::PeopleTableA().schema(),
                 testing::PeopleTableB().schema()) {}

  FeatureCatalog catalog_;
};

TEST_F(RuleParserTest, SinglePredicate) {
  auto rule = ParseRule("jaccard(name, name) >= 0.7", catalog_);
  ASSERT_TRUE(rule.ok());
  ASSERT_EQ(rule->size(), 1u);
  const Predicate& p = rule->predicate(0);
  EXPECT_EQ(p.op, CompareOp::kGe);
  EXPECT_DOUBLE_EQ(p.threshold, 0.7);
  EXPECT_EQ(catalog_.Name(p.feature), "jaccard(name, name)");
}

TEST_F(RuleParserTest, NamedRuleWithConjunction) {
  auto rule = ParseRule(
      "r7: jaro_winkler(name, name) >= 0.97 AND exact_match(zip, zip) >= 1",
      catalog_);
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->name(), "r7");
  EXPECT_EQ(rule->size(), 2u);
}

TEST_F(RuleParserTest, AllOperators) {
  auto rule = ParseRule(
      "jaro(name, name) >= 0.9 AND jaro(zip, zip) > 0.5 AND "
      "jaro(phone, phone) < 0.3 AND jaro(street, street) <= 0.2",
      catalog_);
  ASSERT_TRUE(rule.ok());
  ASSERT_EQ(rule->size(), 4u);
  EXPECT_EQ(rule->predicate(0).op, CompareOp::kGe);
  EXPECT_EQ(rule->predicate(1).op, CompareOp::kGt);
  EXPECT_EQ(rule->predicate(2).op, CompareOp::kLt);
  EXPECT_EQ(rule->predicate(3).op, CompareOp::kLe);
}

TEST_F(RuleParserTest, CaseInsensitiveKeywordsAndFunctions) {
  auto rule = ParseRule(
      "JACCARD(name, name) >= 0.5 and Jaro(zip, zip) >= 0.5", catalog_);
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->size(), 2u);
}

TEST_F(RuleParserTest, CrossAttributeFeature) {
  auto rule = ParseRule("tf_idf(name, street) >= 0.25", catalog_);
  ASSERT_TRUE(rule.ok());
  const Feature& f = catalog_.feature(rule->predicate(0).feature);
  EXPECT_EQ(f.fn, SimFunction::kTfIdf);
  EXPECT_NE(f.attr_a, f.attr_b);
}

TEST_F(RuleParserTest, SharedFeatureInterning) {
  auto r1 = ParseRule("jaccard(name, name) >= 0.7", catalog_);
  auto r2 = ParseRule("jaccard(name, name) < 0.9", catalog_);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->predicate(0).feature, r2->predicate(0).feature);
  EXPECT_EQ(catalog_.size(), 1u);
}

TEST_F(RuleParserTest, ScientificNotationThreshold) {
  auto rule = ParseRule("jaro(name, name) >= 5e-1", catalog_);
  ASSERT_TRUE(rule.ok());
  EXPECT_DOUBLE_EQ(rule->predicate(0).threshold, 0.5);
}

TEST_F(RuleParserTest, ParseErrors) {
  EXPECT_FALSE(ParseRule("", catalog_).ok());
  EXPECT_FALSE(ParseRule("jaccard(name) >= 0.7", catalog_).ok());
  EXPECT_FALSE(ParseRule("bogus_fn(name, name) >= 0.7", catalog_).ok());
  EXPECT_FALSE(ParseRule("jaccard(name, nope) >= 0.7", catalog_).ok());
  EXPECT_FALSE(ParseRule("jaccard(name, name) >= ", catalog_).ok());
  EXPECT_FALSE(ParseRule("jaccard(name, name) == 0.7", catalog_).ok());
  EXPECT_FALSE(
      ParseRule("jaccard(name, name) >= 0.7 jaro(zip, zip) >= 1", catalog_)
          .ok());
  EXPECT_FALSE(ParseRule("AND jaccard(name, name) >= 0.7", catalog_).ok());
}

TEST_F(RuleParserTest, CommentsSkipped) {
  auto rule = ParseRule(
      "jaccard(name, name) >= 0.7 # strong name match", catalog_);
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->size(), 1u);
}

TEST_F(RuleParserTest, FunctionOnNewlines) {
  auto fn = ParseMatchingFunction(
      "r1: jaccard(name, name) >= 0.7\n"
      "# a comment line\n"
      "\n"
      "r2: exact_match(phone, phone) >= 1 AND jaro(name, name) >= 0.5\n",
      catalog_);
  ASSERT_TRUE(fn.ok());
  ASSERT_EQ(fn->num_rules(), 2u);
  EXPECT_EQ(fn->rule(0).name(), "r1");
  EXPECT_EQ(fn->rule(1).size(), 2u);
}

TEST_F(RuleParserTest, FunctionWithOrSeparators) {
  auto fn = ParseMatchingFunction(
      "jaccard(name, name) >= 0.7 OR exact_match(zip, zip) >= 1",
      catalog_);
  ASSERT_TRUE(fn.ok());
  EXPECT_EQ(fn->num_rules(), 2u);
}

TEST_F(RuleParserTest, FunctionWithSemicolons) {
  auto fn = ParseMatchingFunction(
      "jaccard(name, name) >= 0.7; exact_match(zip, zip) >= 1", catalog_);
  ASSERT_TRUE(fn.ok());
  EXPECT_EQ(fn->num_rules(), 2u);
}

TEST_F(RuleParserTest, EmptyFunctionIsError) {
  EXPECT_FALSE(ParseMatchingFunction("\n\n# only comments\n", catalog_).ok());
}

TEST_F(RuleParserTest, RoundTripThroughToString) {
  auto fn = ParseMatchingFunction(
      "r1: jaccard(name, name) >= 0.7 AND jaro(zip, zip) < 0.4\n"
      "r2: exact_match(phone, phone) >= 1\n",
      catalog_);
  ASSERT_TRUE(fn.ok());
  const std::string text = fn->ToString(catalog_);
  auto reparsed = ParseMatchingFunction(text, catalog_);
  ASSERT_TRUE(reparsed.ok()) << text;
  ASSERT_EQ(reparsed->num_rules(), fn->num_rules());
  for (size_t i = 0; i < fn->num_rules(); ++i) {
    ASSERT_EQ(reparsed->rule(i).size(), fn->rule(i).size());
    for (size_t k = 0; k < fn->rule(i).size(); ++k) {
      EXPECT_TRUE(
          reparsed->rule(i).predicate(k).SameTest(fn->rule(i).predicate(k)));
    }
  }
}

// ---- Hardening: defensive limits & non-finite thresholds. ----

TEST_F(RuleParserTest, NonFiniteThresholdRejected) {
  // 1e400 overflows double to +inf; the lexer rejects it as a bad
  // number, naming the offending literal.
  auto rule = ParseRule("jaccard(name, name) >= 1e400", catalog_);
  ASSERT_FALSE(rule.ok());
  EXPECT_EQ(rule.status().code(), StatusCode::kParseError);
  EXPECT_NE(rule.status().message().find("1e400"), std::string::npos)
      << rule.status();
  EXPECT_FALSE(
      ParseRule("jaccard(name, name) >= -1e999", catalog_).ok());
}

TEST_F(RuleParserTest, OversizedRuleTextRejected) {
  std::string dsl = "jaccard(name, name) >= 0.5";
  dsl += std::string((64u << 10), ' ');  // pad past the 64 KiB cap
  auto rule = ParseRule(dsl, catalog_);
  ASSERT_FALSE(rule.ok());
  EXPECT_EQ(rule.status().code(), StatusCode::kParseError);
}

TEST_F(RuleParserTest, TooManyPredicatesRejected) {
  std::string dsl = "jaccard(name, name) >= 0.5";
  for (size_t i = 0; i < 256; ++i) {
    dsl += " AND jaccard(name, name) >= 0.5";
  }
  auto rule = ParseRule(dsl, catalog_);
  ASSERT_FALSE(rule.ok());
  EXPECT_EQ(rule.status().code(), StatusCode::kParseError);
  EXPECT_NE(rule.status().message().find("predicates"), std::string::npos)
      << rule.status();
}

TEST_F(RuleParserTest, TooManyRulesRejected) {
  std::string text;
  for (size_t i = 0; i < 4097; ++i) {
    text += "jaccard(name, name) >= 0.5\n";
  }
  auto fn = ParseMatchingFunction(text, catalog_);
  ASSERT_FALSE(fn.ok());
  EXPECT_EQ(fn.status().code(), StatusCode::kParseError);
}

TEST_F(RuleParserTest, OversizedIdentifierRejected) {
  const std::string long_name(300, 'x');
  auto rule =
      ParseRule(long_name + ": jaccard(name, name) >= 0.5", catalog_);
  ASSERT_FALSE(rule.ok());
  EXPECT_EQ(rule.status().code(), StatusCode::kParseError);
}

TEST_F(RuleParserTest, LimitsAdmitRealisticInput) {
  // A 255-predicate rule and a deeply nested realistic function parse.
  std::string dsl = "big: jaccard(name, name) >= 0.5";
  for (size_t i = 0; i < 254; ++i) {
    dsl += " AND jaro(zip, zip) >= 0.1";
  }
  EXPECT_TRUE(ParseRule(dsl, catalog_).ok());
}

// ---- Precise serialization (the checkpoint format). ----

TEST_F(RuleParserTest, DslSerializersRoundTripExactThresholds) {
  // Thresholds chosen to be unrepresentable in short decimal: %.17g must
  // reproduce them bit-for-bit where ToString's %.4g would not.
  auto fn = ParseMatchingFunction(
      "r1: jaccard(name, name) >= 0.12345678901234567 AND "
      "jaro(zip, zip) < 0.70000000000000007\n"
      "r2: exact_match(phone, phone) >= 1\n",
      catalog_);
  ASSERT_TRUE(fn.ok());
  const std::string dsl = FunctionToDsl(*fn, catalog_);
  auto reparsed = ParseMatchingFunction(dsl, catalog_);
  ASSERT_TRUE(reparsed.ok()) << dsl;
  ASSERT_EQ(reparsed->num_rules(), fn->num_rules());
  for (size_t i = 0; i < fn->num_rules(); ++i) {
    ASSERT_EQ(reparsed->rule(i).size(), fn->rule(i).size());
    EXPECT_EQ(reparsed->rule(i).name(), fn->rule(i).name());
    for (size_t k = 0; k < fn->rule(i).size(); ++k) {
      const Predicate& orig = fn->rule(i).predicate(k);
      const Predicate& back = reparsed->rule(i).predicate(k);
      EXPECT_EQ(back.op, orig.op);
      EXPECT_EQ(back.feature, orig.feature);
      EXPECT_EQ(back.threshold, orig.threshold)
          << "threshold drifted through DSL round-trip";
    }
  }
  // Double round-trip is a fixed point.
  EXPECT_EQ(FunctionToDsl(*reparsed, catalog_), dsl);
}

}  // namespace
}  // namespace emdbg
