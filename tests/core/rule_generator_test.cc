#include "src/core/rule_generator.h"

#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "src/core/sampler.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

class RuleGeneratorTest : public ::testing::Test {
 protected:
  RuleGeneratorTest() : ds_(testing::SmallProducts()) {
    catalog_ = FeatureCatalog(ds_.a.schema(), ds_.b.schema());
    catalog_.InternAllSameAttribute();
    ctx_ = std::make_unique<PairContext>(ds_.a, ds_.b, catalog_);
    Rng rng(1);
    sample_ = SamplePairs(ds_.candidates, 0.2, rng);
  }

  GeneratedDataset ds_;
  FeatureCatalog catalog_;
  std::unique_ptr<PairContext> ctx_;
  CandidateSet sample_;
};

TEST_F(RuleGeneratorTest, GeneratesRequestedCount) {
  RuleGeneratorConfig config;
  config.num_rules = 25;
  config.seed = 3;
  RuleGenerator gen(*ctx_, sample_, config);
  const MatchingFunction fn = gen.Generate();
  EXPECT_EQ(fn.num_rules(), 25u);
}

TEST_F(RuleGeneratorTest, PredicateCountsWithinConfig) {
  RuleGeneratorConfig config;
  config.num_rules = 30;
  config.min_predicates = 3;
  config.max_predicates = 6;
  config.seed = 4;
  RuleGenerator gen(*ctx_, sample_, config);
  const MatchingFunction fn = gen.Generate();
  for (const Rule& r : fn.rules()) {
    EXPECT_GE(r.size(), 3u);
    EXPECT_LE(r.size(), 6u);
  }
}

TEST_F(RuleGeneratorTest, RulesAreCanonical) {
  RuleGeneratorConfig config;
  config.num_rules = 30;
  config.seed = 5;
  RuleGenerator gen(*ctx_, sample_, config);
  const MatchingFunction fn = gen.Generate();
  for (const Rule& r : fn.rules()) {
    EXPECT_TRUE(r.IsCanonical());
    // Distinct features per rule (each feature appears once).
    std::set<FeatureId> feats;
    for (const Predicate& p : r.predicates()) {
      EXPECT_TRUE(feats.insert(p.feature).second);
    }
  }
}

TEST_F(RuleGeneratorTest, ThresholdsInUnitRange) {
  RuleGeneratorConfig config;
  config.num_rules = 20;
  config.seed = 6;
  RuleGenerator gen(*ctx_, sample_, config);
  const MatchingFunction fn = gen.Generate();
  for (const Rule& r : fn.rules()) {
    for (const Predicate& p : r.predicates()) {
      EXPECT_GE(p.threshold, 0.0);
      EXPECT_LE(p.threshold, 1.0);
    }
  }
}

TEST_F(RuleGeneratorTest, DeterministicForSeed) {
  RuleGeneratorConfig config;
  config.num_rules = 10;
  config.seed = 7;
  RuleGenerator g1(*ctx_, sample_, config);
  RuleGenerator g2(*ctx_, sample_, config);
  const MatchingFunction f1 = g1.Generate();
  const MatchingFunction f2 = g2.Generate();
  ASSERT_EQ(f1.num_rules(), f2.num_rules());
  for (size_t i = 0; i < f1.num_rules(); ++i) {
    ASSERT_EQ(f1.rule(i).size(), f2.rule(i).size());
    for (size_t k = 0; k < f1.rule(i).size(); ++k) {
      EXPECT_TRUE(f1.rule(i).predicate(k).SameTest(f2.rule(i).predicate(k)));
    }
  }
}

TEST_F(RuleGeneratorTest, FeaturePoolRestriction) {
  RuleGeneratorConfig config;
  config.num_rules = 30;
  config.feature_pool = 5;
  config.seed = 8;
  RuleGenerator gen(*ctx_, sample_, config);
  const MatchingFunction fn = gen.Generate();
  EXPECT_LE(fn.UsedFeatures().size(), 5u);
}

TEST_F(RuleGeneratorTest, FeaturesSharedAcrossRules) {
  RuleGeneratorConfig config;
  config.num_rules = 40;
  config.feature_skew = 1.0;
  config.seed = 9;
  RuleGenerator gen(*ctx_, sample_, config);
  const MatchingFunction fn = gen.Generate();
  // Count appearances per feature across rules; with Zipf skew some
  // feature must appear in many rules (that is what memoing exploits).
  std::map<FeatureId, size_t> counts;
  for (const Rule& r : fn.rules()) {
    for (const FeatureId f : r.Features()) ++counts[f];
  }
  size_t max_count = 0;
  for (const auto& [_, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GE(max_count, 10u);
}

TEST_F(RuleGeneratorTest, GenerateRulesPool) {
  RuleGeneratorConfig config;
  config.seed = 10;
  RuleGenerator gen(*ctx_, sample_, config);
  Rng rng(11);
  const auto rules = gen.GenerateRules(12, rng);
  EXPECT_EQ(rules.size(), 12u);
  for (const Rule& r : rules) EXPECT_FALSE(r.empty());
}

}  // namespace
}  // namespace emdbg
