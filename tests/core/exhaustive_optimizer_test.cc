#include "src/core/exhaustive_optimizer.h"

#include <memory>
#include <numeric>

#include <gtest/gtest.h>

#include "src/core/greedy_cost_optimizer.h"
#include "src/core/greedy_reduction_optimizer.h"
#include "src/core/ordering.h"
#include "src/core/rule_generator.h"
#include "src/core/sampler.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

class ExhaustiveOptimizerTest : public ::testing::Test {
 protected:
  ExhaustiveOptimizerTest() : ds_(testing::SmallProducts()) {
    catalog_ = FeatureCatalog(ds_.a.schema(), ds_.b.schema());
    catalog_.InternAllSameAttribute();
    ctx_ = std::make_unique<PairContext>(ds_.a, ds_.b, catalog_);
    Rng rng(21);
    sample_ = SamplePairs(ds_.candidates, 0.2, rng);
  }

  MatchingFunction SmallRuleSet(size_t n, uint64_t seed) {
    RuleGeneratorConfig config;
    config.num_rules = n;
    config.min_predicates = 2;
    config.max_predicates = 4;
    config.feature_skew = 1.0;
    config.seed = seed;
    RuleGenerator gen(*ctx_, sample_, config);
    return gen.Generate();
  }

  GeneratedDataset ds_;
  FeatureCatalog catalog_;
  std::unique_ptr<PairContext> ctx_;
  CandidateSet sample_;
};

TEST_F(ExhaustiveOptimizerTest, RejectsLargeRuleSets) {
  const MatchingFunction fn = SmallRuleSet(12, 1);
  const CostModel model =
      CostModel::EstimateForFunction(fn, *ctx_, sample_);
  EXPECT_EQ(ExhaustiveOptimalOrder(fn, model, 8).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ExhaustiveOptimizerTest, ReturnsPermutation) {
  const MatchingFunction fn = SmallRuleSet(5, 2);
  const CostModel model =
      CostModel::EstimateForFunction(fn, *ctx_, sample_);
  auto order = ExhaustiveOptimalOrder(fn, model);
  ASSERT_TRUE(order.ok());
  std::vector<size_t> sorted = *order;
  std::sort(sorted.begin(), sorted.end());
  std::vector<size_t> expected(5);
  std::iota(expected.begin(), expected.end(), size_t{0});
  EXPECT_EQ(sorted, expected);
}

TEST_F(ExhaustiveOptimizerTest, OptimalIsNoWorseThanAnyOtherOrder) {
  MatchingFunction fn = SmallRuleSet(5, 3);
  const CostModel model =
      CostModel::EstimateForFunction(fn, *ctx_, sample_);
  OrderAllRulePredicates(fn, model);
  auto optimal = ExhaustiveOptimalOrder(fn, model);
  ASSERT_TRUE(optimal.ok());
  const double optimal_cost = OrderCostWithMemo(fn, model, *optimal);
  // Compare against identity and a few random permutations.
  Rng rng(4);
  std::vector<size_t> perm(fn.num_rules());
  std::iota(perm.begin(), perm.end(), size_t{0});
  EXPECT_LE(optimal_cost, OrderCostWithMemo(fn, model, perm) + 1e-9);
  for (int t = 0; t < 10; ++t) {
    rng.Shuffle(perm);
    EXPECT_LE(optimal_cost, OrderCostWithMemo(fn, model, perm) + 1e-9);
  }
}

TEST_F(ExhaustiveOptimizerTest, GreedyAlgorithmsAreNearOptimal) {
  // The claim behind Fig. 3C: the greedy heuristics get close to the
  // model-optimal order. The bound must be generous: Algorithm 6 ranks
  // purely by memo-warming reduction (per the paper) and can schedule an
  // expensive rule first on adversarial small instances, and the modeled
  // feature costs come from wall-clock timing, so exact ratios vary per
  // run. We assert (a) the optimum lower-bounds both, and (b) averaged
  // over instances, both greedy orders stay within 2.5x of optimal.
  double sum_opt = 0.0;
  double sum_alg5 = 0.0;
  double sum_alg6 = 0.0;
  for (uint64_t seed : {5u, 6u, 7u, 8u}) {
    MatchingFunction fn = SmallRuleSet(6, seed);
    const CostModel model =
        CostModel::EstimateForFunction(fn, *ctx_, sample_);
    OrderAllRulePredicates(fn, model);
    auto optimal = ExhaustiveOptimalOrder(fn, model);
    ASSERT_TRUE(optimal.ok());
    const double opt = OrderCostWithMemo(fn, model, *optimal);
    const double alg5 =
        OrderCostWithMemo(fn, model, GreedyCostOrder(fn, model));
    const double alg6 =
        OrderCostWithMemo(fn, model, GreedyReductionOrder(fn, model));
    EXPECT_GE(alg5, opt - 1e-9) << "seed " << seed;
    EXPECT_GE(alg6, opt - 1e-9) << "seed " << seed;
    sum_opt += opt;
    sum_alg5 += alg5;
    sum_alg6 += alg6;
  }
  EXPECT_LE(sum_alg5, 2.5 * sum_opt);
  EXPECT_LE(sum_alg6, 2.5 * sum_opt);
}

TEST_F(ExhaustiveOptimizerTest, OrderCostMatchesCostModelEvaluator) {
  // OrderCostWithMemo in identity order must agree with the cost model's
  // FunctionCostWithMemo (same formula, different implementation).
  MatchingFunction fn = SmallRuleSet(4, 8);
  const CostModel model =
      CostModel::EstimateForFunction(fn, *ctx_, sample_);
  std::vector<size_t> identity(fn.num_rules());
  std::iota(identity.begin(), identity.end(), size_t{0});
  EXPECT_NEAR(OrderCostWithMemo(fn, model, identity),
              model.FunctionCostWithMemo(fn),
              1e-6 * std::max(1.0, model.FunctionCostWithMemo(fn)));
}

TEST_F(ExhaustiveOptimizerTest, EmptyFunction) {
  const MatchingFunction fn;
  const CostModel model =
      CostModel::EstimateForFunction(fn, *ctx_, sample_);
  auto order = ExhaustiveOptimalOrder(fn, model);
  ASSERT_TRUE(order.ok());
  EXPECT_TRUE(order->empty());
}

}  // namespace
}  // namespace emdbg
