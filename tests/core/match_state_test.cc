#include "src/core/match_state.h"

#include <gtest/gtest.h>

namespace emdbg {
namespace {

TEST(MatchStateTest, InitializeAllocates) {
  MatchState state;
  EXPECT_FALSE(state.initialized());
  state.Initialize(100, 8);
  EXPECT_TRUE(state.initialized());
  EXPECT_EQ(state.num_pairs(), 100u);
  EXPECT_EQ(state.matches().size(), 100u);
  EXPECT_EQ(state.memo().num_pairs(), 100u);
  EXPECT_EQ(state.memo().num_features(), 8u);
}

TEST(MatchStateTest, RuleBitmapsCreatedOnDemand) {
  MatchState state;
  state.Initialize(50, 4);
  EXPECT_EQ(state.FindRuleTrue(3), nullptr);
  Bitmap& bm = state.RuleTrue(3);
  EXPECT_EQ(bm.size(), 50u);
  bm.Set(7);
  ASSERT_NE(state.FindRuleTrue(3), nullptr);
  EXPECT_TRUE(state.FindRuleTrue(3)->Get(7));
  EXPECT_EQ(state.num_rule_bitmaps(), 1u);
}

TEST(MatchStateTest, PredicateBitmapsCreatedOnDemand) {
  MatchState state;
  state.Initialize(50, 4);
  EXPECT_EQ(state.FindPredFalse(9), nullptr);
  state.PredFalse(9).Set(1);
  EXPECT_TRUE(state.FindPredFalse(9)->Get(1));
  EXPECT_EQ(state.num_predicate_bitmaps(), 1u);
}

TEST(MatchStateTest, EraseDropsBitmaps) {
  MatchState state;
  state.Initialize(10, 2);
  state.RuleTrue(1).Set(0);
  state.PredFalse(2).Set(0);
  state.EraseRule(1);
  state.ErasePredicate(2);
  EXPECT_EQ(state.FindRuleTrue(1), nullptr);
  EXPECT_EQ(state.FindPredFalse(2), nullptr);
}

TEST(MatchStateTest, ReinitializeClearsBitmaps) {
  MatchState state;
  state.Initialize(10, 2);
  state.RuleTrue(1).Set(0);
  state.memo().Store(0, 0, 0.5);
  state.Initialize(10, 2);
  EXPECT_EQ(state.FindRuleTrue(1), nullptr);
  EXPECT_EQ(state.memo().FilledCount(), 0u);
}

TEST(MatchStateTest, MemoryAccounting) {
  MatchState state;
  state.Initialize(1000, 10);
  const size_t base = state.MemoryBytes();
  EXPECT_GE(base, 1000u * 10u * sizeof(float));
  state.RuleTrue(0);
  state.PredFalse(0);
  EXPECT_GT(state.MemoryBytes(), base);
  const std::string report = state.MemoryReport();
  EXPECT_NE(report.find("memo:"), std::string::npos);
  EXPECT_NE(report.find("total"), std::string::npos);
}

TEST(MatchStateTest, PaperScaleBitmapMemory) {
  // Sec. 7.4: 255 rules + 1688 predicates over 291,649 pairs. With packed
  // bitmaps this is ~(255 + 1688) * 36 KB ≈ 68 MB — far below the paper's
  // 542 MB Java boolean arrays, which is the point of using bitmaps.
  MatchState state;
  state.Initialize(291649, 33);
  for (RuleId r = 0; r < 255; ++r) state.RuleTrue(r);
  for (PredicateId p = 0; p < 1688; ++p) state.PredFalse(p);
  const double mb =
      static_cast<double>(state.MemoryBytes()) / (1024.0 * 1024.0);
  EXPECT_LT(mb, 150.0);
  EXPECT_GT(mb, 80.0);  // memo ~37 MB + bitmaps ~68 MB
}

}  // namespace
}  // namespace emdbg
