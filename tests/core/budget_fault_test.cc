#include <filesystem>
#include <memory>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "src/core/debug_session.h"
#include "src/serve/session_digest.h"
#include "src/util/fault_injection.h"
#include "src/util/memory_budget.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

/// The resource governor's correctness matrix: every memory reservation
/// in the match path (memo capacity, token/id cache fills, interner
/// growth, per-worker scratch, recovery) is a potential denial point, and
/// a denial must never corrupt state — the operation either completes
/// with bit-identical results (a cache layer degraded) or fails cleanly
/// with ResourceExhausted leaving the prior state untouched. The
/// mem.reserve fault site drives the matrix without needing real memory
/// pressure.
class BudgetFaultTest : public ::testing::Test {
 protected:
  BudgetFaultTest()
      : dir_(::testing::TempDir() + "/emdbg_bfault_" +
             ::testing::UnitTest::GetInstance()
                 ->current_test_info()
                 ->name()) {
    std::filesystem::remove_all(dir_);
    FaultInjection::DisarmAll();
  }

  ~BudgetFaultTest() override {
    FaultInjection::DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  struct Outcome {
    size_t matches = 0;
    uint32_t digest = 0;
  };

  /// Stable-id lookup by rule *name*. Positional capture
  /// (`s.function().rule(0)`) is wrong here: the ordering strategy
  /// permutes the rule vector using *measured* feature costs, so which
  /// rule sits at index 0 after a run is a timing coin-flip — the
  /// original source of this suite's famous 27-vs-64 flake (the workload
  /// sometimes edited r2 where it meant r1).
  static RuleId RuleByName(const DebugSession& s, std::string_view name) {
    const MatchingFunction& fn = s.function();
    for (size_t i = 0; i < fn.num_rules(); ++i) {
      if (fn.rule(i).name() == name) return fn.rule(i).id();
    }
    ADD_FAILURE() << "no rule named " << name;
    return kInvalidRule;
  }

  static PredicateId FirstPredicateOf(const DebugSession& s, RuleId rid) {
    const MatchingFunction& fn = s.function();
    for (size_t i = 0; i < fn.num_rules(); ++i) {
      if (fn.rule(i).id() == rid) return fn.rule(i).predicate(0).id;
    }
    ADD_FAILURE() << "no rule with id " << rid;
    return kInvalidPredicate;
  }

  /// Formats the budget's denial log for failure messages: which
  /// reservation sites actually absorbed the injected denials.
  static std::string DeniedList(const MemoryBudget& budget) {
    std::string out;
    for (const std::string& d : budget.DeniedConsumers()) {
      if (!out.empty()) out += ", ";
      out += d;
    }
    return out.empty() ? "<none>" : out;
  }

  std::unique_ptr<DebugSession> MakeSession(const DebugSession::Options& o) {
    GeneratedDataset ds = testing::SmallProducts();
    return std::make_unique<DebugSession>(
        std::move(ds.a), std::move(ds.b), std::move(ds.candidates), o);
  }

  /// The canonical workload: base rule, full run, then a post-run editing
  /// burst (the incremental path). Each step tolerates exactly-once
  /// injected denials by retrying — the fault plans in the matrix fail a
  /// single reservation, so one retry must always succeed.
  Outcome RunWorkload(DebugSession& s) {
    auto edit = [&](auto&& fn) {
      Status st = fn();
      if (st.code() == StatusCode::kResourceExhausted) st = fn();
      EXPECT_TRUE(st.ok()) << st.message();
    };
    edit([&] {
      return s.AddRuleText("r1: jaccard(title, title) >= 0.5").status();
    });
    edit([&] {
      return s.AddRuleText("r2: jaccard(brand, brand) >= 0.4").status();
    });
    for (int attempt = 0; attempt < 3; ++attempt) {
      MatchResult r = s.Run(RunControl());
      if (!r.partial) break;
      EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted)
          << r.status.message();
    }
    EXPECT_TRUE(s.has_run());
    // Capture ids by name, not position: the run above may have
    // reordered the rule vector (see RuleByName).
    const RuleId r1_id = RuleByName(s, "r1");
    const PredicateId p1_id = FirstPredicateOf(s, r1_id);
    edit([&] { return s.SetThreshold(r1_id, p1_id, 0.62); });
    edit([&] { return s.RemoveRule(RuleByName(s, "r2")); });
    edit([&] {
      return s.AddRuleText("r3: jaccard(title, title) >= 0.71").status();
    });
    edit([&] { return s.SetThreshold(r1_id, p1_id, 0.55); });
    edit([&] { return s.Undo(); });
    Outcome out;
    out.matches = s.Run().Count();
    out.digest = SessionStateDigest(s);
    return out;
  }

  Outcome Baseline() {
    auto s = MakeSession(DebugSession::Options{});
    return RunWorkload(*s);
  }

  std::string dir_;
};

TEST_F(BudgetFaultTest, SingleDenialAtEveryReservationSiteIsHarmless) {
  const Outcome want = Baseline();
  ASSERT_GT(want.matches, 0u);
  // One matrix row per reservation index: the skip-th reservation fails,
  // everything before and after succeeds. Covers the memo EnsureCapacity,
  // cache-fill billing, interner growth and scratch reservations as they
  // occur in workload order.
  for (uint64_t skip = 0; skip < 24; ++skip) {
    FaultInjection::DisarmAll();
    FaultInjection::Plan plan;
    plan.skip = skip;
    plan.every = 0;  // fail exactly once
    FaultInjection::Arm("mem.reserve", plan);
    MemoryBudget budget(0, "matrix");
    DebugSession::Options o;
    o.budget = &budget;
    auto s = MakeSession(o);
    const Outcome got = RunWorkload(*s);
    EXPECT_EQ(got.matches, want.matches)
        << "skip=" << skip << " denied=[" << DeniedList(budget) << "]";
    EXPECT_EQ(got.digest, want.digest)
        << "skip=" << skip << " denied=[" << DeniedList(budget) << "]";
    FaultInjection::DisarmAll();
    // Everything the session billed must drain when it dies.
    s.reset();
    EXPECT_EQ(budget.used(), 0u) << "skip=" << skip;
  }
}

TEST_F(BudgetFaultTest, PeriodicDenialsDegradeButNeverDiverge) {
  const Outcome want = Baseline();
  for (uint64_t every : {2, 5, 11}) {
    FaultInjection::DisarmAll();
    FaultInjection::Plan plan;
    plan.every = every;
    FaultInjection::Arm("mem.reserve", plan);
    MemoryBudget budget(0, "periodic");
    DebugSession::Options o;
    o.budget = &budget;
    auto s = MakeSession(o);
    auto tolerant = [&](auto&& fn) {
      for (int attempt = 0; attempt < 8; ++attempt) {
        Status st = fn();
        if (st.ok()) return;
        ASSERT_EQ(st.code(), StatusCode::kResourceExhausted)
            << st.message();
      }
      FAIL() << "step kept failing under every=" << every;
    };
    // The same edit sequence as RunWorkload, with deeper retry budgets —
    // under every-Nth denials a single step can fail several times.
    tolerant([&] {
      return s->AddRuleText("r1: jaccard(title, title) >= 0.5").status();
    });
    tolerant([&] {
      return s->AddRuleText("r2: jaccard(brand, brand) >= 0.4").status();
    });
    for (int attempt = 0; attempt < 8; ++attempt) {
      if (!s->Run(RunControl()).partial) break;
    }
    ASSERT_TRUE(s->has_run());
    const RuleId r1_id = RuleByName(*s, "r1");
    const PredicateId p1_id = FirstPredicateOf(*s, r1_id);
    tolerant([&] { return s->SetThreshold(r1_id, p1_id, 0.62); });
    tolerant([&] { return s->RemoveRule(RuleByName(*s, "r2")); });
    tolerant([&] {
      return s->AddRuleText("r3: jaccard(title, title) >= 0.71").status();
    });
    tolerant([&] { return s->SetThreshold(r1_id, p1_id, 0.55); });
    tolerant([&] { return s->Undo(); });
    FaultInjection::DisarmAll();
    EXPECT_EQ(s->Run().Count(), want.matches)
        << "every=" << every << " denied=[" << DeniedList(budget) << "]";
    EXPECT_EQ(SessionStateDigest(*s), want.digest)
        << "every=" << every << " denied=[" << DeniedList(budget) << "]";
  }
}

TEST_F(BudgetFaultTest, CacheDegradationUnderRealPressureIsBitIdentical) {
  const Outcome want = Baseline();
  // Measure what an unconstrained session actually holds, then rerun with
  // a budget that fits the memo but not all the caches: the context must
  // degrade (drop id columns, stop token caching) instead of failing, and
  // the results must not move by a single bit.
  DebugSession::MemoryFootprint full;
  {
    auto s = MakeSession(DebugSession::Options{});
    RunWorkload(*s);
    full = s->Footprint();
  }
  ASSERT_GT(full.memo_bytes, 0u);
  ASSERT_GT(full.token_cache_bytes + full.id_cache_bytes, 0u);
  const size_t limit = full.memo_bytes + full.interner_bytes +
                       (full.token_cache_bytes + full.id_cache_bytes) / 2 +
                       (64u << 10);
  MemoryBudget budget(limit, "tight");
  DebugSession::Options o;
  o.budget = &budget;
  auto s = MakeSession(o);
  const Outcome got = RunWorkload(*s);
  EXPECT_EQ(got.matches, want.matches);
  EXPECT_EQ(got.digest, want.digest);
  EXPECT_LE(budget.peak(), limit);  // the accountant never over-admits
  // The squeeze must actually have happened for this test to mean
  // anything.
  EXPECT_GT(s->context().budget_denials() +
                (s->context().id_path_degraded() ? 1u : 0u) +
                (s->context().token_cache_degraded() ? 1u : 0u),
            0u);
  s.reset();
  EXPECT_EQ(budget.used(), 0u);
}

TEST_F(BudgetFaultTest, HopelessBudgetFailsTheRunCleanly) {
  // Below the memo matrix's own footprint (pairs × features × 4 = 3600
  // bytes here): the caches can degrade to nothing, but the run's memo
  // reservation itself must be denied.
  MemoryBudget budget(2048, "hopeless");
  DebugSession::Options o;
  o.budget = &budget;
  auto s = MakeSession(o);
  ASSERT_TRUE(s->AddRuleText("r1: jaccard(title, title) >= 0.5").ok());
  MatchResult r = s->Run(RunControl());
  ASSERT_TRUE(r.partial);
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted)
      << r.status.message();
  EXPECT_EQ(r.pairs_completed, 0u);
  EXPECT_FALSE(s->has_run());  // a denied first run does not start the
                               // session; edits stay in the pre-run regime
  ASSERT_TRUE(s->AddRuleText("r2: jaccard(brand, brand) >= 0.9").ok());
  EXPECT_LE(budget.used(), budget.limit());
}

TEST_F(BudgetFaultTest, RecoveryUnderDenialsEitherSucceedsOrLeavesDiskIntact) {
  // Build a durable session, record its digest, then recover it with
  // mem.reserve failing at each index in turn. Recovery must either
  // reproduce the digest exactly or fail with ResourceExhausted — and a
  // clean retry afterwards must always succeed from the untouched disk
  // state.
  uint32_t want_digest = 0;
  size_t want_matches = 0;
  {
    auto s = MakeSession(DebugSession::Options{});
    ASSERT_TRUE(s->AddRuleText("r1: jaccard(title, title) >= 0.5").ok());
    s->Run();
    ASSERT_TRUE(s->EnableDurability(dir_, 4).ok());
    const RuleId r1_id = s->function().rule(0).id();
    const PredicateId p1_id = s->function().rule(0).predicate(0).id;
    ASSERT_TRUE(s->SetThreshold(r1_id, p1_id, 0.6).ok());
    ASSERT_TRUE(
        s->AddRuleText("r2: jaccard(brand, brand) >= 0.45").ok());
    ASSERT_TRUE(s->SetThreshold(r1_id, p1_id, 0.58).ok());
    want_matches = s->Run().Count();
    want_digest = SessionStateDigest(*s);
  }
  for (uint64_t skip = 0; skip < 12; ++skip) {
    FaultInjection::DisarmAll();
    FaultInjection::Plan plan;
    plan.skip = skip;
    plan.every = 0;
    FaultInjection::Arm("mem.reserve", plan);
    MemoryBudget budget(0, "recovery");
    DebugSession::Options o;
    o.budget = &budget;
    auto s = MakeSession(o);
    Status rs = s->Recover(dir_);
    if (!rs.ok()) {
      ASSERT_EQ(rs.code(), StatusCode::kResourceExhausted)
          << "skip=" << skip << ": " << rs.message();
      FaultInjection::DisarmAll();
      auto retry = MakeSession(o);
      ASSERT_TRUE(retry->Recover(dir_).ok()) << "skip=" << skip;
      EXPECT_EQ(retry->Run().Count(), want_matches) << "skip=" << skip;
      EXPECT_EQ(SessionStateDigest(*retry), want_digest)
          << "skip=" << skip;
      continue;
    }
    FaultInjection::DisarmAll();
    EXPECT_EQ(s->Run().Count(), want_matches) << "skip=" << skip;
    EXPECT_EQ(SessionStateDigest(*s), want_digest) << "skip=" << skip;
  }
}

TEST_F(BudgetFaultTest, ParallelRunUnderBudgetMatchesSerial) {
  const Outcome want = Baseline();
  MemoryBudget budget(0, "parallel");
  DebugSession::Options o;
  o.budget = &budget;
  o.num_threads = 4;
  auto s = MakeSession(o);
  const Outcome got = RunWorkload(*s);
  EXPECT_EQ(got.matches, want.matches);
  EXPECT_EQ(got.digest, want.digest);
  s.reset();
  EXPECT_EQ(budget.used(), 0u);
}

}  // namespace
}  // namespace emdbg
