#include "src/core/feature_profiler.h"

#include <memory>
#include <numeric>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace emdbg {
namespace {

class FeatureProfilerTest : public ::testing::Test {
 protected:
  FeatureProfilerTest() : ds_(testing::SmallProducts()) {
    catalog_ = FeatureCatalog(ds_.a.schema(), ds_.b.schema());
    ctx_ = std::make_unique<PairContext>(ds_.a, ds_.b, catalog_);
  }

  GeneratedDataset ds_;
  FeatureCatalog catalog_;
  std::unique_ptr<PairContext> ctx_;
};

TEST_F(FeatureProfilerTest, GoodFeatureSeparatesLabels) {
  const FeatureId f =
      *catalog_.InternByName(SimFunction::kTrigram, "title", "title");
  auto profile =
      ProfileFeature(f, ds_.candidates, ds_.labels, *ctx_, /*max_pairs=*/0);
  ASSERT_TRUE(profile.ok());
  // Twins share most of their title; negatives share little.
  EXPECT_GT(profile->match_mean, profile->nonmatch_mean + 0.2);
  EXPECT_GT(profile->auc, 0.85);
  EXPECT_EQ(profile->matches, ds_.labels.Count());
}

TEST_F(FeatureProfilerTest, HistogramCountsAddUp) {
  const FeatureId f =
      *catalog_.InternByName(SimFunction::kJaccard, "title", "title");
  auto profile = ProfileFeature(f, ds_.candidates, ds_.labels, *ctx_, 0);
  ASSERT_TRUE(profile.ok());
  const size_t match_total = std::accumulate(
      profile->match_hist.begin(), profile->match_hist.end(), size_t{0});
  const size_t nonmatch_total =
      std::accumulate(profile->nonmatch_hist.begin(),
                      profile->nonmatch_hist.end(), size_t{0});
  EXPECT_EQ(match_total, profile->matches);
  EXPECT_EQ(nonmatch_total, profile->nonmatches);
  EXPECT_EQ(match_total + nonmatch_total, ds_.candidates.size());
}

TEST_F(FeatureProfilerTest, SubsamplingKeepsAllMatches) {
  const FeatureId f =
      *catalog_.InternByName(SimFunction::kJaro, "modelno", "modelno");
  auto profile =
      ProfileFeature(f, ds_.candidates, ds_.labels, *ctx_, /*max_pairs=*/50);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->matches, ds_.labels.Count());
  EXPECT_LT(profile->nonmatches, ds_.candidates.size() / 4);
}

TEST_F(FeatureProfilerTest, UselessFeatureHasMidAuc) {
  // Price is heavily perturbed and weakly informative; AUC should sit
  // well below a strong title feature's.
  const FeatureId price =
      *catalog_.InternByName(SimFunction::kExactMatch, "price", "price");
  auto profile = ProfileFeature(price, ds_.candidates, ds_.labels, *ctx_, 0);
  ASSERT_TRUE(profile.ok());
  EXPECT_LT(profile->auc, 0.85);
  EXPECT_GE(profile->auc, 0.4);
}

TEST_F(FeatureProfilerTest, Errors) {
  const PairLabels wrong(3);
  EXPECT_EQ(
      ProfileFeature(0, ds_.candidates, wrong, *ctx_).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(ProfileFeature(kInvalidFeature, ds_.candidates, ds_.labels,
                           *ctx_)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(FeatureProfilerTest, ToStringRendersHistogram) {
  const FeatureId f =
      *catalog_.InternByName(SimFunction::kTrigram, "title", "title");
  auto profile = ProfileFeature(f, ds_.candidates, ds_.labels, *ctx_, 0);
  ASSERT_TRUE(profile.ok());
  const std::string text = profile->ToString(catalog_);
  EXPECT_NE(text.find("trigram(title, title)"), std::string::npos);
  EXPECT_NE(text.find("AUC"), std::string::npos);
  EXPECT_NE(text.find("[0.9, 1.0]"), std::string::npos);
}

}  // namespace
}  // namespace emdbg
