/// Long-haul stress of the incremental engine on a second dataset shape
/// (restaurant-style schema) with mid-sequence save/resume: hundreds of
/// random edits, each verified against a from-scratch oracle.

#include <cstdio>
#include <memory>

#include <gtest/gtest.h>

#include "src/core/incremental.h"
#include "src/core/memo_matcher.h"
#include "src/core/rule_generator.h"
#include "src/core/sampler.h"
#include "src/core/state_io.h"
#include "src/data/datasets.h"

namespace emdbg {
namespace {

class IncrementalStressTest : public ::testing::Test {
 protected:
  IncrementalStressTest() {
    DatasetProfile profile =
        ScaleProfile(PaperDatasetProfile(DatasetId::kRestaurants), 0.05);
    profile.seed = 4242;
    ds_ = GenerateDataset(profile);
    catalog_ = FeatureCatalog(ds_.a.schema(), ds_.b.schema());
    catalog_.InternAllSameAttribute();
    ctx_ = std::make_unique<PairContext>(ds_.a, ds_.b, catalog_);
    Rng rng(9);
    sample_ = SamplePairs(ds_.candidates, 0.3, rng);
    RuleGeneratorConfig config;
    config.num_rules = 8;
    config.min_predicates = 2;
    config.max_predicates = 5;
    config.seed = 4243;
    gen_ = std::make_unique<RuleGenerator>(*ctx_, sample_, config);
  }

  Bitmap Oracle(const MatchingFunction& fn) {
    MemoMatcher matcher;
    return matcher.Run(fn, ds_.candidates, *ctx_).matches;
  }

  void ApplyRandomEdit(IncrementalMatcher& inc, Rng& rng) {
    const size_t num_rules = inc.function().num_rules();
    const uint64_t op = rng.Uniform(6);
    if (op == 0 || num_rules == 0) {
      ASSERT_TRUE(inc.AddRule(gen_->GenerateRule(rng)).ok());
    } else if (op == 1 && num_rules > 2) {
      const RuleId rid = inc.function().rule(rng.Uniform(num_rules)).id();
      ASSERT_TRUE(inc.RemoveRule(rid).ok());
    } else if (op == 2) {
      const RuleId rid = inc.function().rule(rng.Uniform(num_rules)).id();
      const Rule donor = gen_->GenerateRule(rng);
      ASSERT_TRUE(inc.AddPredicate(rid, donor.predicate(0)).ok());
    } else if (op == 3) {
      const Rule& rule = inc.function().rule(rng.Uniform(num_rules));
      if (rule.size() < 2) return;
      const PredicateId pid = rule.predicate(rng.Uniform(rule.size())).id;
      ASSERT_TRUE(inc.RemovePredicate(rule.id(), pid).ok());
    } else {
      const Rule& rule = inc.function().rule(rng.Uniform(num_rules));
      if (rule.empty()) return;
      const Predicate& p = rule.predicate(rng.Uniform(rule.size()));
      ASSERT_TRUE(
          inc.SetThreshold(rule.id(), p.id, rng.NextDouble()).ok());
    }
  }

  GeneratedDataset ds_;
  FeatureCatalog catalog_;
  std::unique_ptr<PairContext> ctx_;
  CandidateSet sample_;
  std::unique_ptr<RuleGenerator> gen_;
};

TEST_F(IncrementalStressTest, TwoHundredEditsWithMidpointResume) {
  const std::string state_path =
      ::testing::TempDir() + "/emdbg_stress_state.bin";
  IncrementalMatcher inc(*ctx_, ds_.candidates);
  inc.FullRun(gen_->Generate());
  Rng rng(77);

  for (int step = 0; step < 100; ++step) {
    ApplyRandomEdit(inc, rng);
    if (step % 10 == 9) {
      ASSERT_EQ(inc.matches(), Oracle(inc.function())) << step;
    }
  }
  // Persist and resume into a fresh engine mid-stream.
  ASSERT_TRUE(SaveMatchState(inc.state(), state_path).ok());
  const MatchingFunction snapshot = inc.function();
  auto loaded = LoadMatchState(state_path);
  ASSERT_TRUE(loaded.ok());
  IncrementalMatcher resumed(*ctx_, ds_.candidates);
  ASSERT_TRUE(resumed.Resume(snapshot, std::move(*loaded)).ok());
  ASSERT_EQ(resumed.matches(), inc.matches());

  for (int step = 0; step < 100; ++step) {
    ApplyRandomEdit(resumed, rng);
    if (step % 10 == 9) {
      ASSERT_EQ(resumed.matches(), Oracle(resumed.function())) << step;
    }
  }
  ASSERT_EQ(resumed.matches(), Oracle(resumed.function()));
  std::remove(state_path.c_str());
}

TEST_F(IncrementalStressTest, MemoOnlyGrowsAndNeverRecomputes) {
  IncrementalMatcher inc(*ctx_, ds_.candidates);
  inc.FullRun(gen_->Generate());
  Rng rng(99);
  size_t last_filled = inc.state().memo().FilledCount();
  for (int step = 0; step < 50; ++step) {
    ApplyRandomEdit(inc, rng);
    const size_t filled = inc.state().memo().FilledCount();
    ASSERT_GE(filled, last_filled) << "memo shrank at step " << step;
    last_filled = filled;
  }
}

}  // namespace
}  // namespace emdbg
