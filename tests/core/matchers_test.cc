#include <memory>

#include <gtest/gtest.h>

#include "src/core/early_exit_matcher.h"
#include "src/core/memo_matcher.h"
#include "src/core/precompute_matcher.h"
#include "src/core/rudimentary_matcher.h"
#include "src/core/rule_generator.h"
#include "src/core/rule_parser.h"
#include "src/core/sampler.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

/// Shared fixture: the small generated products dataset with its catalog,
/// context, and a generated rule set.
class MatchersTest : public ::testing::Test {
 protected:
  MatchersTest() : ds_(testing::SmallProducts()) {
    catalog_ = FeatureCatalog(ds_.a.schema(), ds_.b.schema());
    catalog_.InternAllSameAttribute();
    ctx_ = std::make_unique<PairContext>(ds_.a, ds_.b, catalog_);
  }

  MatchingFunction GeneratedRules(size_t num_rules, uint64_t seed) {
    Rng rng(seed);
    const CandidateSet sample = SamplePairs(ds_.candidates, 0.1, rng);
    RuleGeneratorConfig config;
    config.num_rules = num_rules;
    config.min_predicates = 2;
    config.max_predicates = 5;
    config.seed = seed;
    RuleGenerator gen(*ctx_, sample, config);
    return gen.Generate();
  }

  GeneratedDataset ds_;
  FeatureCatalog catalog_;
  std::unique_ptr<PairContext> ctx_;
};

TEST_F(MatchersTest, AllMatchersAgreeOnGeneratedRules) {
  const MatchingFunction fn = GeneratedRules(8, 42);
  RudimentaryMatcher rudimentary;
  EarlyExitMatcher early_exit;
  PrecomputeMatcher production(PrecomputeMatcher::Scope::kProduction);
  PrecomputeMatcher full(PrecomputeMatcher::Scope::kFull);
  MemoMatcher memo;
  MemoMatcher memo_ccf(MemoMatcher::Options{.check_cache_first = true});

  const Bitmap expected = rudimentary.Run(fn, ds_.candidates, *ctx_).matches;
  EXPECT_EQ(early_exit.Run(fn, ds_.candidates, *ctx_).matches, expected);
  EXPECT_EQ(production.Run(fn, ds_.candidates, *ctx_).matches, expected);
  EXPECT_EQ(full.Run(fn, ds_.candidates, *ctx_).matches, expected);
  EXPECT_EQ(memo.Run(fn, ds_.candidates, *ctx_).matches, expected);
  EXPECT_EQ(memo_ccf.Run(fn, ds_.candidates, *ctx_).matches, expected);
}

TEST_F(MatchersTest, AgreementHoldsAcrossSeeds) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const MatchingFunction fn = GeneratedRules(5, seed);
    RudimentaryMatcher rudimentary;
    MemoMatcher memo;
    EXPECT_EQ(memo.Run(fn, ds_.candidates, *ctx_).matches,
              rudimentary.Run(fn, ds_.candidates, *ctx_).matches)
        << "seed " << seed;
  }
}

TEST_F(MatchersTest, EarlyExitDoesNoMoreWorkThanRudimentary) {
  const MatchingFunction fn = GeneratedRules(8, 7);
  RudimentaryMatcher rudimentary;
  EarlyExitMatcher early_exit;
  const MatchStats r = rudimentary.Run(fn, ds_.candidates, *ctx_).stats;
  const MatchStats e = early_exit.Run(fn, ds_.candidates, *ctx_).stats;
  EXPECT_LT(e.feature_computations, r.feature_computations);
  EXPECT_LE(e.predicate_evaluations, r.predicate_evaluations);
  // Rudimentary computes one feature per predicate evaluation of every
  // rule for every pair.
  EXPECT_EQ(r.feature_computations,
            fn.num_predicates() * ds_.candidates.size());
}

TEST_F(MatchersTest, MemoingComputesEachPairFeatureAtMostOnce) {
  const MatchingFunction fn = GeneratedRules(10, 9);
  MemoMatcher memo;
  const MatchStats s = memo.Run(fn, ds_.candidates, *ctx_).stats;
  const size_t used_features = fn.UsedFeatures().size();
  EXPECT_LE(s.feature_computations,
            used_features * ds_.candidates.size());
  // And strictly fewer computations than early exit when features repeat.
  EarlyExitMatcher early_exit;
  const MatchStats e = early_exit.Run(fn, ds_.candidates, *ctx_).stats;
  EXPECT_LE(s.feature_computations, e.feature_computations);
}

TEST_F(MatchersTest, ProductionPrecomputesOnlyUsedFeatures) {
  const MatchingFunction fn = GeneratedRules(4, 11);
  PrecomputeMatcher production(PrecomputeMatcher::Scope::kProduction);
  PrecomputeMatcher full(PrecomputeMatcher::Scope::kFull);
  const MatchStats p = production.Run(fn, ds_.candidates, *ctx_).stats;
  const MatchStats f = full.Run(fn, ds_.candidates, *ctx_).stats;
  EXPECT_EQ(p.feature_computations,
            fn.UsedFeatures().size() * ds_.candidates.size());
  EXPECT_EQ(f.feature_computations, catalog_.size() * ds_.candidates.size());
  EXPECT_LT(p.feature_computations, f.feature_computations);
}

TEST_F(MatchersTest, DslRuleOnFigure2Example) {
  // The paper's running example: name-match OR phone+name match.
  const Table a = testing::PeopleTableA();
  const Table b = testing::PeopleTableB();
  FeatureCatalog catalog(a.schema(), b.schema());
  auto fn = ParseMatchingFunction(
      "r1: jaccard(name, name) >= 0.9\n"
      "r2: exact_match(phone, phone) >= 1 AND jaccard(name, name) >= 0.4\n",
      catalog);
  ASSERT_TRUE(fn.ok());
  PairContext ctx(a, b, catalog);
  const CandidateSet pairs = testing::AllPairs(a, b);
  MemoMatcher memo;
  const MatchResult result = memo.Run(*fn, pairs, ctx);
  // a0-b0: identical names -> r1 fires.
  // a0-b1: "John Smith" vs "John Smyth" share 1 of 3 tokens -> r1 no;
  //         phone matches and jaccard 1/3 < 0.4 -> r2 no.
  auto index_of = [&](uint32_t ai, uint32_t bi) {
    for (size_t i = 0; i < pairs.size(); ++i) {
      if (pairs.pair(i) == PairId{ai, bi}) return i;
    }
    return pairs.size();
  };
  EXPECT_TRUE(result.matches.Get(index_of(0, 0)));
  EXPECT_FALSE(result.matches.Get(index_of(0, 1)));
  EXPECT_FALSE(result.matches.Get(index_of(1, 0)));
}

TEST_F(MatchersTest, EmptyFunctionMatchesNothing) {
  const MatchingFunction fn;
  MemoMatcher memo;
  EXPECT_EQ(memo.Run(fn, ds_.candidates, *ctx_).MatchCount(), 0u);
  RudimentaryMatcher rudimentary;
  EXPECT_EQ(rudimentary.Run(fn, ds_.candidates, *ctx_).MatchCount(), 0u);
}

TEST_F(MatchersTest, EmptyRuleIsFalse) {
  MatchingFunction fn;
  fn.AddRule(Rule("empty"));
  MemoMatcher memo;
  EXPECT_EQ(memo.Run(fn, ds_.candidates, *ctx_).MatchCount(), 0u);
  EarlyExitMatcher early_exit;
  EXPECT_EQ(early_exit.Run(fn, ds_.candidates, *ctx_).MatchCount(), 0u);
}

TEST_F(MatchersTest, CheckCacheFirstPreservesResults) {
  const MatchingFunction fn = GeneratedRules(12, 21);
  MemoMatcher plain;
  MemoMatcher ccf(MemoMatcher::Options{.check_cache_first = true});
  const MatchResult rp = plain.Run(fn, ds_.candidates, *ctx_);
  const MatchResult rc = ccf.Run(fn, ds_.candidates, *ctx_);
  EXPECT_EQ(rp.matches, rc.matches);
  // Check-cache-first can only reduce feature computations.
  EXPECT_LE(rc.stats.feature_computations, rp.stats.feature_computations);
}

TEST_F(MatchersTest, RunWithStateRecordsBitmaps) {
  const MatchingFunction fn = GeneratedRules(6, 31);
  MemoMatcher memo;
  MatchState state;
  const MatchResult result =
      memo.RunWithState(fn, ds_.candidates, *ctx_, state);
  EXPECT_EQ(state.matches(), result.matches);
  // Every matched pair is covered by exactly one responsible rule bit.
  for (size_t i = 0; i < ds_.candidates.size(); ++i) {
    size_t responsible = 0;
    for (const Rule& r : fn.rules()) {
      const Bitmap* bm = state.FindRuleTrue(r.id());
      if (bm != nullptr && bm->Get(i)) ++responsible;
    }
    EXPECT_EQ(responsible, result.matches.Get(i) ? 1u : 0u) << "pair " << i;
  }
  // Memo reuse: a second run computes nothing new.
  ctx_->ResetComputeCount();
  const MatchResult again =
      memo.RunWithState(fn, ds_.candidates, *ctx_, state);
  EXPECT_EQ(again.stats.feature_computations, 0u);
  EXPECT_EQ(again.matches, result.matches);
}

TEST_F(MatchersTest, MatcherNames) {
  EXPECT_STREQ(RudimentaryMatcher().name(), "R");
  EXPECT_STREQ(EarlyExitMatcher().name(), "EE");
  EXPECT_STREQ(
      PrecomputeMatcher(PrecomputeMatcher::Scope::kProduction).name(),
      "PPR+EE");
  EXPECT_STREQ(PrecomputeMatcher(PrecomputeMatcher::Scope::kFull).name(),
               "FPR+EE");
  EXPECT_STREQ(MemoMatcher().name(), "DM+EE");
}

}  // namespace
}  // namespace emdbg
