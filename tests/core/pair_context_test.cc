#include "src/core/pair_context.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace emdbg {
namespace {

class PairContextTest : public ::testing::Test {
 protected:
  PairContextTest()
      : a_(testing::PeopleTableA()),
        b_(testing::PeopleTableB()),
        catalog_(a_.schema(), b_.schema()) {}

  Table a_;
  Table b_;
  FeatureCatalog catalog_;
};

TEST_F(PairContextTest, ComputesExactMatch) {
  const FeatureId f =
      *catalog_.InternByName(SimFunction::kExactMatch, "zip", "zip");
  PairContext ctx(a_, b_, catalog_);
  EXPECT_DOUBLE_EQ(ctx.ComputeFeature(f, {0, 0}), 1.0);  // 53703 == 53703
  EXPECT_DOUBLE_EQ(ctx.ComputeFeature(f, {0, 1}), 0.0);  // != 53704
}

TEST_F(PairContextTest, TokenBasedFeatureMatchesRegistry) {
  const FeatureId f =
      *catalog_.InternByName(SimFunction::kJaccard, "name", "name");
  PairContext ctx(a_, b_, catalog_);
  const double via_ctx = ctx.ComputeFeature(f, {0, 1});
  const double direct = ComputeSimilarity(
      SimFunction::kJaccard, a_.Value(0, 0), b_.Value(1, 0));
  // The context quantizes to float (memo consistency); compare at float
  // precision.
  EXPECT_DOUBLE_EQ(via_ctx, static_cast<double>(static_cast<float>(direct)));
}

TEST_F(PairContextTest, CachingDoesNotChangeValues) {
  const FeatureId jac =
      *catalog_.InternByName(SimFunction::kJaccard, "street", "street");
  const FeatureId tri =
      *catalog_.InternByName(SimFunction::kTrigram, "name", "name");
  PairContext cached(a_, b_, catalog_);
  PairContext uncached(a_, b_, catalog_,
                       PairContext::Options{.cache_tokens = false});
  for (uint32_t i = 0; i < a_.num_rows(); ++i) {
    for (uint32_t j = 0; j < b_.num_rows(); ++j) {
      EXPECT_DOUBLE_EQ(cached.ComputeFeature(jac, {i, j}),
                       uncached.ComputeFeature(jac, {i, j}));
      EXPECT_DOUBLE_EQ(cached.ComputeFeature(tri, {i, j}),
                       uncached.ComputeFeature(tri, {i, j}));
    }
  }
  EXPECT_GT(cached.TokenCacheBytes(), 0u);
  EXPECT_EQ(uncached.TokenCacheBytes(), 0u);
}

TEST_F(PairContextTest, TfIdfUsesCorpusModel) {
  const FeatureId f =
      *catalog_.InternByName(SimFunction::kTfIdf, "name", "name");
  PairContext ctx(a_, b_, catalog_);
  // Identical names should score ~1 regardless of the corpus.
  EXPECT_NEAR(ctx.ComputeFeature(f, {0, 0}), 1.0, 1e-9);
  // Different names score less.
  EXPECT_LT(ctx.ComputeFeature(f, {0, 2}), 0.9);
}

TEST_F(PairContextTest, ModelForIsCachedPerAttrPair) {
  PairContext ctx(a_, b_, catalog_);
  const TfIdfModel& m1 = ctx.ModelFor(0, 0);
  const TfIdfModel& m2 = ctx.ModelFor(0, 0);
  EXPECT_EQ(&m1, &m2);
  const TfIdfModel& cross = ctx.ModelFor(0, 1);
  EXPECT_NE(&m1, &cross);
  // Corpus = |A| + |B| documents.
  EXPECT_EQ(m1.document_count(), a_.num_rows() + b_.num_rows());
}

TEST_F(PairContextTest, ComputeCountTracksCalls) {
  const FeatureId f =
      *catalog_.InternByName(SimFunction::kJaro, "name", "name");
  PairContext ctx(a_, b_, catalog_);
  EXPECT_EQ(ctx.compute_count(), 0u);
  ctx.ComputeFeature(f, {0, 0});
  ctx.ComputeFeature(f, {0, 0});
  EXPECT_EQ(ctx.compute_count(), 2u);
  ctx.ResetComputeCount();
  EXPECT_EQ(ctx.compute_count(), 0u);
}

TEST_F(PairContextTest, ClearTokenCaches) {
  const FeatureId f =
      *catalog_.InternByName(SimFunction::kJaccard, "name", "name");
  PairContext ctx(a_, b_, catalog_);
  ctx.ComputeFeature(f, {0, 0});
  EXPECT_GT(ctx.TokenCacheBytes(), 0u);
  ctx.ClearTokenCaches();
  // Values still computable after the caches are dropped.
  EXPECT_GE(ctx.ComputeFeature(f, {0, 0}), 0.0);
}

}  // namespace
}  // namespace emdbg
