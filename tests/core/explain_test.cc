#include "src/core/explain.h"

#include <gtest/gtest.h>

#include "src/core/memo_matcher.h"
#include "src/core/rule_parser.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest()
      : a_(testing::PeopleTableA()),
        b_(testing::PeopleTableB()),
        catalog_(a_.schema(), b_.schema()),
        ctx_(a_, b_, catalog_) {
    auto fn = ParseMatchingFunction(
        "name: jaccard(name, name) >= 0.9\n"
        "phone: exact_match(phone, phone) >= 1 AND "
        "jaccard(name, name) >= 0.4\n",
        catalog_);
    fn_ = *fn;
  }

  Table a_;
  Table b_;
  FeatureCatalog catalog_;
  PairContext ctx_;
  MatchingFunction fn_;
};

TEST_F(ExplainTest, MatchedPairNamesResponsibleRule) {
  // a0-b0: identical names -> rule "name" fires.
  const MatchExplanation ex = ExplainPair(fn_, {0, 0}, ctx_);
  EXPECT_TRUE(ex.matched);
  EXPECT_EQ(ex.responsible_rule, fn_.rule(0).id());
  ASSERT_EQ(ex.rules.size(), 2u);
  EXPECT_TRUE(ex.rules[0].fired);
  EXPECT_TRUE(ex.rules[0].predicates[0].passed);
}

TEST_F(ExplainTest, UnmatchedPairShowsFailures) {
  // a1-b0: "Bob Jones" vs "John Smith".
  const MatchExplanation ex = ExplainPair(fn_, {1, 0}, ctx_);
  EXPECT_FALSE(ex.matched);
  EXPECT_EQ(ex.responsible_rule, kInvalidRule);
  for (const RuleTrace& rt : ex.rules) {
    EXPECT_FALSE(rt.fired);
    EXPECT_FALSE(rt.predicates.back().passed);
  }
}

TEST_F(ExplainTest, TraceStopsAtFirstFailure) {
  // a0-b1: phone rule — exact phone passes, name jaccard 1/3 fails.
  const MatchExplanation ex = ExplainPair(fn_, {0, 1}, ctx_);
  const RuleTrace& phone_rule = ex.rules[1];
  ASSERT_EQ(phone_rule.predicates.size(), 2u);
  EXPECT_TRUE(phone_rule.predicates[0].passed);
  EXPECT_FALSE(phone_rule.predicates[1].passed);
}

TEST_F(ExplainTest, AgreesWithMatcherOnAllPairs) {
  const CandidateSet pairs = testing::AllPairs(a_, b_);
  MemoMatcher matcher;
  const Bitmap expected = matcher.Run(fn_, pairs, ctx_).matches;
  for (size_t i = 0; i < pairs.size(); ++i) {
    const MatchExplanation ex = ExplainPair(fn_, pairs.pair(i), ctx_);
    EXPECT_EQ(ex.matched, expected.Get(i)) << "pair " << i;
  }
}

TEST_F(ExplainTest, ToStringMentionsDecision) {
  const MatchExplanation ex = ExplainPair(fn_, {0, 0}, ctx_);
  const std::string text = ex.ToString(catalog_);
  EXPECT_NE(text.find("MATCH"), std::string::npos);
  EXPECT_NE(text.find("responsible"), std::string::npos);
  EXPECT_NE(text.find("jaccard(name, name)"), std::string::npos);
}

TEST_F(ExplainTest, NearMissRanksClosestRuleFirst) {
  // a0-b1: phone rule fails only on the name predicate (1 failing
  // predicate); name rule fails its single predicate but with a larger
  // threshold... both have 1 failing predicate; phone's gap is
  // |0.4 - 1/3| ≈ 0.067 vs name's |0.9 - 1/3| ≈ 0.567.
  const auto misses = FindNearMisses(fn_, {0, 1}, ctx_, 5);
  ASSERT_EQ(misses.size(), 2u);
  EXPECT_EQ(misses[0].rule_name, "phone");
  EXPECT_EQ(misses[0].failing_predicates, 1u);
  EXPECT_NEAR(misses[0].total_gap, 0.4 - 1.0 / 3.0, 1e-6);
  EXPECT_EQ(misses[1].rule_name, "name");
}

TEST_F(ExplainTest, NearMissExcludesFiredRules) {
  const auto misses = FindNearMisses(fn_, {0, 0}, ctx_, 5);
  for (const NearMiss& m : misses) {
    EXPECT_NE(m.rule_name, "name");  // "name" fired for a0-b0
  }
}

TEST_F(ExplainTest, NearMissTopKLimit) {
  const auto misses = FindNearMisses(fn_, {1, 0}, ctx_, 1);
  EXPECT_EQ(misses.size(), 1u);
}

TEST_F(ExplainTest, NearMissToString) {
  const auto misses = FindNearMisses(fn_, {0, 1}, ctx_, 2);
  const std::string text = NearMissesToString(misses, catalog_);
  EXPECT_NE(text.find("phone"), std::string::npos);
  EXPECT_NE(text.find("gap"), std::string::npos);
  EXPECT_EQ(NearMissesToString({}, catalog_),
            "no near misses (some rule fired)\n");
}

}  // namespace
}  // namespace emdbg
