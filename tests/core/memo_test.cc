#include "src/core/memo.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/bitmap.h"

namespace emdbg {
namespace {

template <typename T>
class MemoTest : public ::testing::Test {
 protected:
  static std::unique_ptr<Memo> Make() {
    if constexpr (std::is_same_v<T, DenseMemo>) {
      return std::make_unique<DenseMemo>(100, 8);
    } else {
      return std::make_unique<HashMemo>();
    }
  }
};

using MemoTypes = ::testing::Types<DenseMemo, HashMemo>;
TYPED_TEST_SUITE(MemoTest, MemoTypes);

TYPED_TEST(MemoTest, StartsEmpty) {
  auto memo = TestFixture::Make();
  EXPECT_EQ(memo->FilledCount(), 0u);
  double v = 0.0;
  EXPECT_FALSE(memo->Lookup(0, 0, &v));
  EXPECT_FALSE(memo->Contains(5, 3));
}

TYPED_TEST(MemoTest, StoreAndLookup) {
  auto memo = TestFixture::Make();
  memo->Store(7, 2, 0.75);
  double v = 0.0;
  EXPECT_TRUE(memo->Lookup(7, 2, &v));
  EXPECT_NEAR(v, 0.75, 1e-6);
  EXPECT_TRUE(memo->Contains(7, 2));
  EXPECT_FALSE(memo->Contains(7, 3));
  EXPECT_EQ(memo->FilledCount(), 1u);
}

TYPED_TEST(MemoTest, OverwriteKeepsCount) {
  auto memo = TestFixture::Make();
  memo->Store(1, 1, 0.25);
  memo->Store(1, 1, 0.5);
  EXPECT_EQ(memo->FilledCount(), 1u);
  double v = 0.0;
  EXPECT_TRUE(memo->Lookup(1, 1, &v));
  EXPECT_NEAR(v, 0.5, 1e-6);
}

TYPED_TEST(MemoTest, ZeroAndOneAreStorable) {
  auto memo = TestFixture::Make();
  memo->Store(0, 0, 0.0);
  memo->Store(0, 1, 1.0);
  double v = -1.0;
  EXPECT_TRUE(memo->Lookup(0, 0, &v));
  EXPECT_DOUBLE_EQ(v, 0.0);
  EXPECT_TRUE(memo->Lookup(0, 1, &v));
  EXPECT_DOUBLE_EQ(v, 1.0);
}

TYPED_TEST(MemoTest, ClearResets) {
  auto memo = TestFixture::Make();
  memo->Store(3, 3, 0.3);
  memo->Clear();
  EXPECT_EQ(memo->FilledCount(), 0u);
  EXPECT_FALSE(memo->Contains(3, 3));
}

TYPED_TEST(MemoTest, MemoryBytesNonZeroAfterStore) {
  auto memo = TestFixture::Make();
  memo->Store(0, 0, 0.5);
  EXPECT_GT(memo->MemoryBytes(), 0u);
}

TEST(DenseMemoTest, MemoryIsPairsTimesFeaturesFloats) {
  DenseMemo memo(1000, 33);
  EXPECT_EQ(memo.MemoryBytes(), 1000u * 33u * sizeof(float));
}

TEST(DenseMemoTest, Table74Memory) {
  // The paper's Sec. 7.4: 291,649 pairs x 33 features of floats ≈ 22 MB
  // in Java (which includes array bookkeeping); the raw payload is ~38 MB
  // at 4 bytes — our dense memo should land in the tens of MB, not GB.
  DenseMemo memo(291649, 33);
  const double mb =
      static_cast<double>(memo.MemoryBytes()) / (1024.0 * 1024.0);
  EXPECT_GT(mb, 20.0);
  EXPECT_LT(mb, 60.0);
}

TEST(DenseMemoTest, GrowFeaturesPreservesValues) {
  DenseMemo memo(10, 2);
  memo.Store(3, 1, 0.9);
  memo.Store(9, 0, 0.1);
  memo.GrowFeatures(5);
  EXPECT_EQ(memo.num_features(), 5u);
  double v = 0.0;
  EXPECT_TRUE(memo.Lookup(3, 1, &v));
  EXPECT_NEAR(v, 0.9, 1e-6);
  EXPECT_TRUE(memo.Lookup(9, 0, &v));
  EXPECT_NEAR(v, 0.1, 1e-6);
  EXPECT_FALSE(memo.Contains(3, 4));
  memo.Store(3, 4, 0.4);
  EXPECT_TRUE(memo.Contains(3, 4));
  // Shrinking is a no-op.
  memo.GrowFeatures(2);
  EXPECT_EQ(memo.num_features(), 5u);
}

TEST(HashMemoTest, SparseUsesLessMemoryThanDenseAtLowFill) {
  DenseMemo dense(100000, 33);
  HashMemo sparse;
  for (size_t i = 0; i < 1000; ++i) sparse.Store(i * 97 % 100000, i % 33, 0.5);
  EXPECT_LT(sparse.MemoryBytes(), dense.MemoryBytes());
}

TEST(DenseMemoTest, GatherColumnReportsPresenceAndValues) {
  DenseMemo memo(200, 3);
  for (size_t i = 0; i < 200; i += 3) {
    memo.Store(i, 1, static_cast<double>(i) / 256.0);
  }
  // Gather a 70-row window starting mid-matrix (off-word-boundary length).
  const size_t row = 64, n = 70;
  std::vector<float> col(n);
  std::vector<uint64_t> present(bitspan::Words(n), ~uint64_t{0});
  memo.GatherColumn(row, n, 1, col.data(), present.data());
  for (size_t i = 0; i < n; ++i) {
    const bool expect = (row + i) % 3 == 0;
    EXPECT_EQ((present[i >> 6] >> (i & 63)) & 1u, expect ? 1u : 0u) << i;
    if (expect) {
      EXPECT_EQ(col[i], static_cast<float>((row + i) / 256.0)) << i;
    } else {
      EXPECT_TRUE(std::isnan(col[i])) << i;
    }
  }
  EXPECT_EQ(present.back() & ~bitspan::TailMask(n), 0u);
}

TEST(DenseMemoTest, FillSpanStoresMaskedCellsAndCountsNewFills) {
  DenseMemo memo(128, 2);
  memo.Store(65, 0, 0.25);  // pre-filled cell inside the span
  std::vector<float> vals(100);
  std::vector<uint64_t> mask(bitspan::Words(100), 0);
  size_t masked = 0;
  for (size_t i = 0; i < 100; i += 2) {
    vals[i] = static_cast<float>(i) / 128.0f;
    mask[i >> 6] |= uint64_t{1} << (i & 63);
    ++masked;
  }
  memo.FillSpan(28, 100, 0, vals.data(), mask.data());
  // 65 - 28 = 37 is odd -> not in the mask; its old value survives.
  double v = 0.0;
  EXPECT_TRUE(memo.Lookup(65, 0, &v));
  EXPECT_NEAR(v, 0.25, 1e-9);
  EXPECT_EQ(memo.FilledCount(), masked + 1);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(memo.Contains(28 + i, 0), i % 2 == 0 || 28 + i == 65) << i;
    if (i % 2 == 0) {
      EXPECT_TRUE(memo.Lookup(28 + i, 0, &v));
      EXPECT_EQ(v, static_cast<double>(vals[i])) << i;
    }
  }
  // Overwriting already-present cells must not double-count fills.
  memo.FillSpan(28, 100, 0, vals.data(), mask.data());
  EXPECT_EQ(memo.FilledCount(), masked + 1);
}

TEST(DenseMemoTest, FillSpanMasksTailWord) {
  DenseMemo memo(80, 1);
  std::vector<float> vals(65, 0.5f);
  // Poisoned mask tail: bits past n must be ignored.
  std::vector<uint64_t> mask(2, ~uint64_t{0});
  memo.FillSpan(0, 65, 0, vals.data(), mask.data());
  EXPECT_EQ(memo.FilledCount(), 65u);
  EXPECT_FALSE(memo.Contains(65, 0));
}

TEST(DenseMemoTest, RowViewSeesStores) {
  DenseMemo memo(4, 3);
  memo.Store(2, 1, 0.75);
  const float* row = memo.RowView(2);
  EXPECT_TRUE(std::isnan(row[0]));
  EXPECT_EQ(row[1], 0.75f);
  EXPECT_TRUE(std::isnan(row[2]));
}

}  // namespace
}  // namespace emdbg
