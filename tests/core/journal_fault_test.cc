#include <filesystem>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/core/debug_session.h"
#include "src/core/edit_log.h"
#include "src/core/rule_parser.h"
#include "src/util/fault_injection.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

/// Journal recovery under injected failures — the contracts the serve
/// layer's ack-after-fsync protocol leans on:
///
///  * journal.write fires *before* the record reaches the file, so a
///    failed edit is guaranteed absent on disk: recovery restores exactly
///    the acknowledged edits.
///  * journal.fsync fires *after* the record is in the file, so a failed
///    edit is journaled-but-unacknowledged: recovery legitimately replays
///    it. Acked edits are never lost either way.
///  * A checkpoint that tears mid-write (state.atomic_write) leaves the
///    previous checkpoint + journal authoritative.
///  * Recovery is idempotent: recovering the same directory twice gives
///    bit-identical sessions and does not disturb the files.
class JournalFaultTest : public ::testing::Test {
 protected:
  JournalFaultTest()
      : dir_(::testing::TempDir() + "/emdbg_jfault_" +
             ::testing::UnitTest::GetInstance()
                 ->current_test_info()
                 ->name()) {
    std::filesystem::remove_all(dir_);
    FaultInjection::DisarmAll();
  }

  ~JournalFaultTest() override {
    FaultInjection::DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  /// A session over the deterministic test corpus with one rule and a
  /// completed run (EnableDurability requires one).
  std::unique_ptr<DebugSession> FreshSession() {
    GeneratedDataset ds = testing::SmallProducts();
    auto session = std::make_unique<DebugSession>(
        std::move(ds.a), std::move(ds.b), std::move(ds.candidates));
    EXPECT_TRUE(
        session->AddRuleText("r1: jaccard(title, title) >= 0.5").ok());
    session->Run();
    return session;
  }

  std::unique_ptr<DebugSession> FreshSessionForRecovery() {
    GeneratedDataset ds = testing::SmallProducts();
    return std::make_unique<DebugSession>(
        std::move(ds.a), std::move(ds.b), std::move(ds.candidates));
  }

  std::string Dsl(DebugSession& s) {
    return FunctionToDsl(s.function(), s.catalog());
  }

  Status SetR1Threshold(DebugSession& s, double t) {
    const Rule& r1 = s.function().rule(0);
    return s.SetThreshold(r1.id(), r1.predicate(0).id, t);
  }

  std::string dir_;
};

TEST_F(JournalFaultTest, FsyncFaultLeavesJournaledButUnackedEdit) {
  std::string acked_dsl;
  std::string unacked_dsl;
  {
    auto session = FreshSession();
    ASSERT_TRUE(session->EnableDurability(dir_, 100).ok());

    ASSERT_TRUE(SetR1Threshold(*session, 0.61).ok());  // acked
    acked_dsl = Dsl(*session);

    // The next journal fsync fails; the record is already in the file.
    FaultInjection::Arm("journal.fsync", FaultInjection::Plan{});
    EXPECT_EQ(SetR1Threshold(*session, 0.62).code(), StatusCode::kIoError);
    EXPECT_EQ(FaultInjection::Failures("journal.fsync"), 1u);
    FaultInjection::DisarmAll();
    // In-memory the edit applied (the caller was told otherwise — the
    // serve layer reacts by degrading the session to this journal).
    unacked_dsl = Dsl(*session);
    ASSERT_NE(acked_dsl, unacked_dsl);
    // Crash without checkpointing.
  }

  auto recovered = FreshSessionForRecovery();
  ASSERT_TRUE(recovered->Recover(dir_).ok());
  // The fsync may or may not have hit the platters before the "crash";
  // with the injected failure the bytes are in the file, so replay
  // includes the unacknowledged edit. Either end state is a legal
  // outcome of this crash — what is NOT legal is losing the acked edit
  // or inventing a third state.
  const std::string got = Dsl(*recovered);
  EXPECT_TRUE(got == acked_dsl || got == unacked_dsl)
      << "recovered to a state that matches neither candidate:\n"
      << got;
  EXPECT_EQ(got, unacked_dsl)
      << "the injected fsync fault writes the record first, so replay "
         "deterministically includes the unacked edit";
}

TEST_F(JournalFaultTest, WriteFaultRecoversAckedEditsExactly) {
  std::string acked_dsl;
  {
    auto session = FreshSession();
    ASSERT_TRUE(session->EnableDurability(dir_, 100).ok());

    ASSERT_TRUE(SetR1Threshold(*session, 0.61).ok());
    ASSERT_TRUE(
        session->AddRuleText("r2: jaccard(brand, brand) >= 0.7").ok());
    acked_dsl = Dsl(*session);

    // journal.write fires before anything reaches the file: the failed
    // edit is guaranteed absent on disk.
    FaultInjection::Arm("journal.write", FaultInjection::Plan{});
    EXPECT_EQ(SetR1Threshold(*session, 0.99).code(), StatusCode::kIoError);
    FaultInjection::DisarmAll();
  }

  auto recovered = FreshSessionForRecovery();
  ASSERT_TRUE(recovered->Recover(dir_).ok());
  EXPECT_EQ(Dsl(*recovered), acked_dsl)
      << "recovery must restore the acknowledged edits, nothing more";
  EXPECT_DOUBLE_EQ(recovered->function().rule(0).predicate(0).threshold,
                   0.61);
}

TEST_F(JournalFaultTest, TornCheckpointFallsBackToJournalReplay) {
  std::string expected_dsl;
  {
    auto session = FreshSession();
    // Cadence 2: the second edit triggers a checkpoint.
    ASSERT_TRUE(session->EnableDurability(dir_, 2).ok());
    ASSERT_TRUE(SetR1Threshold(*session, 0.61).ok());

    // The checkpoint write tears partway through: the temp file is left
    // behind, the rename never happens, epoch 1 stays authoritative.
    FaultInjection::Arm("state.atomic_write", FaultInjection::Plan{});
    (void)SetR1Threshold(*session, 0.62);
    FaultInjection::DisarmAll();
    expected_dsl = Dsl(*session);
  }

  auto recovered = FreshSessionForRecovery();
  ASSERT_TRUE(recovered->Recover(dir_).ok())
      << "a torn checkpoint must not strand the session";
  // Whether or not the 0.62 edit's journal record landed before the
  // checkpoint attempt, the recovered threshold is one of the two edit
  // values — never the pre-edit default.
  const double t = recovered->function().rule(0).predicate(0).threshold;
  EXPECT_TRUE(t == 0.61 || t == 0.62) << "threshold " << t;
  // And the fallback files must support *another* crash + recovery.
  auto again = FreshSessionForRecovery();
  ASSERT_TRUE(again->Recover(dir_).ok());
  EXPECT_EQ(Dsl(*again), Dsl(*recovered));
  (void)expected_dsl;
}

TEST_F(JournalFaultTest, DoubleRecoverIsIdempotent) {
  {
    auto session = FreshSession();
    ASSERT_TRUE(session->EnableDurability(dir_, 100).ok());
    ASSERT_TRUE(SetR1Threshold(*session, 0.66).ok());
    ASSERT_TRUE(
        session->AddRuleText("r2: jaccard(category, category) >= 0.8").ok());
  }

  auto first = FreshSessionForRecovery();
  ASSERT_TRUE(first->Recover(dir_).ok());
  const std::string first_dsl = Dsl(*first);
  const auto first_run = first->Run();
  // Recovering rewrote nothing the second recovery depends on: a fresh
  // session over the same directory lands in the identical state.
  auto second = FreshSessionForRecovery();
  ASSERT_TRUE(second->Recover(dir_).ok());
  EXPECT_EQ(Dsl(*second), first_dsl);
  EXPECT_EQ(second->Run(), first_run);
}

TEST_F(JournalFaultTest, RepeatedFsyncFaultsNeverLoseAckedEdits) {
  // A hostile disk: every 3rd journal fsync fails across a burst of
  // edits. Whatever subset of the burst gets acked must survive.
  double last_acked_t = -1.0;
  int acked = 0;
  {
    auto session = FreshSession();
    ASSERT_TRUE(session->EnableDurability(dir_, 100).ok());
    FaultInjection::Plan plan;
    plan.every = 3;
    FaultInjection::Arm("journal.fsync", plan);
    for (int i = 0; i < 10; ++i) {
      const double t = 0.50 + 0.01 * i;
      const Status s = SetR1Threshold(*session, t);
      if (s.ok()) {
        ++acked;
        last_acked_t = t;
      } else {
        EXPECT_EQ(s.code(), StatusCode::kIoError);
      }
    }
    FaultInjection::DisarmAll();
    EXPECT_GT(acked, 0);
    EXPECT_LT(acked, 10);
  }

  auto recovered = FreshSessionForRecovery();
  ASSERT_TRUE(recovered->Recover(dir_).ok());
  // set_threshold edits are totally ordered on one predicate: the
  // recovered threshold is at least the last acked one (a later
  // journaled-but-unacked record may push it further forward, never
  // back), and never beyond the last value attempted.
  const double recovered_t =
      recovered->function().rule(0).predicate(0).threshold;
  EXPECT_GE(recovered_t, last_acked_t - 1e-12)
      << "an acknowledged edit was rolled back";
  EXPECT_LE(recovered_t, 0.59 + 1e-12);
}

}  // namespace
}  // namespace emdbg
