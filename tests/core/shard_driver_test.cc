/// Differential suite for the out-of-core sharded driver: a sharded run —
/// any shard size, spilling or not, serial or pooled — must be
/// *bit-identical* to one monolithic serial MemoMatcher run over the same
/// pairs: same match bitmap, same per-rule/per-predicate decision bitmaps
/// (shard slices vs global ranges), same memo values, same MatchStats
/// counters. Plus the robustness matrix: mid-run cancellation, injected
/// budget denials at every reservation site, and injected spill-IO
/// failures must yield clean partial results whose evaluated bits are
/// still exact — never silently wrong matches.

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/block/external_sort.h"
#include "src/core/memo_matcher.h"
#include "src/core/rule_generator.h"
#include "src/core/shard_driver.h"
#include "src/util/fault_injection.h"
#include "src/util/memory_budget.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

void ExpectSameCounters(const MatchStats& sharded, const MatchStats& serial) {
  EXPECT_EQ(sharded.feature_computations, serial.feature_computations);
  EXPECT_EQ(sharded.memo_hits, serial.memo_hits);
  EXPECT_EQ(sharded.predicate_evaluations, serial.predicate_evaluations);
  EXPECT_EQ(sharded.rule_evaluations, serial.rule_evaluations);
}

/// Compares one shard's decision bitmap against the [begin, end) range of
/// the serial full-length bitmap. A missing shard bitmap is fine iff the
/// serial range is all zero (the shard never touched that rule/pred).
void ExpectSliceEqual(const Bitmap* shard_bits, const Bitmap* serial_bits,
                      size_t begin, size_t end, const std::string& what) {
  if (serial_bits == nullptr) {
    if (shard_bits != nullptr) {
      EXPECT_EQ(shard_bits->Count(), 0u) << what;
    }
    return;
  }
  for (size_t i = begin; i < end; ++i) {
    const bool expected = serial_bits->Get(i);
    const bool got = shard_bits != nullptr && shard_bits->Get(i - begin);
    ASSERT_EQ(got, expected) << what << " differs at global pair " << i;
  }
}

class ShardDriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjection::DisarmAll();
    ds_ = std::make_unique<GeneratedDataset>(testing::SmallProducts(4242));
    catalog_ =
        std::make_unique<FeatureCatalog>(ds_->a.schema(), ds_->b.schema());
    catalog_->InternAllSameAttribute();
    ctx_ = std::make_unique<PairContext>(ds_->a, ds_->b, *catalog_);
    // The driver's merge math assumes a sorted, deduped pair sequence
    // (true of every blocker's output).
    pairs_ = ds_->candidates;
    pairs_.SortAndDedup();
  }

  void TearDown() override { FaultInjection::DisarmAll(); }

  MatchingFunction MakeFunction(uint64_t seed = 3, int num_rules = 4) {
    RuleGeneratorConfig config;
    config.num_rules = num_rules;
    config.min_predicates = 1;
    config.max_predicates = 4;
    config.seed = seed;
    RuleGenerator gen(*ctx_, pairs_, config);
    return gen.Generate();
  }

  /// Fresh serial baseline over the same pairs with its own context (so
  /// memo warm-up in one run never leaks into the other).
  MatchResult SerialBaseline(const MatchingFunction& fn,
                             MatchState* state_out) {
    PairContext fresh(ds_->a, ds_->b, *catalog_);
    MemoMatcher serial;  // defaults: ccf off — the block-mode semantics
    return serial.RunWithState(fn, pairs_, fresh, *state_out);
  }

  std::string SpillDir() { return ::testing::TempDir(); }

  ShardedMatchDriver::Options DriverOptions(size_t shard_pairs,
                                            ThreadPool* pool = nullptr) {
    ShardedMatchDriver::Options o;
    o.shard_pairs = shard_pairs;
    o.spill_dir = SpillDir();
    o.pool = pool;
    return o;
  }

  std::unique_ptr<GeneratedDataset> ds_;
  std::unique_ptr<FeatureCatalog> catalog_;
  std::unique_ptr<PairContext> ctx_;
  CandidateSet pairs_;
};

// ---------------------------------------------------------------------------
// Bit-identity

TEST_F(ShardDriverTest, BitIdenticalAcrossShardSizes) {
  const MatchingFunction fn = MakeFunction();
  MatchState serial_state;
  const MatchResult sr = SerialBaseline(fn, &serial_state);

  for (size_t shard_pairs : {size_t{64}, size_t{128}, size_t{448},
                             size_t{4096}}) {
    PairContext fresh(ds_->a, ds_->b, *catalog_);
    ShardedMatchDriver driver(DriverOptions(shard_pairs));
    const MatchResult r = driver.Run(fn, pairs_, fresh);
    ASSERT_FALSE(r.partial) << r.status.ToString();
    EXPECT_EQ(r.matches, sr.matches) << "shard_pairs=" << shard_pairs;
    EXPECT_EQ(r.pairs_completed, sr.pairs_completed);
    ExpectSameCounters(r.stats, sr.stats);
    EXPECT_EQ(driver.shards().size(),
              (pairs_.size() + driver.shard_pairs() - 1) /
                  driver.shard_pairs());
  }
}

TEST_F(ShardDriverTest, DecisionBitmapsAndMemoSliceExactly) {
  const MatchingFunction fn = MakeFunction(5);
  MatchState serial_state;
  const MatchResult sr = SerialBaseline(fn, &serial_state);

  PairContext fresh(ds_->a, ds_->b, *catalog_);
  ShardedMatchDriver driver(DriverOptions(192));
  const MatchResult r = driver.Run(fn, pairs_, fresh);
  ASSERT_FALSE(r.partial) << r.status.ToString();
  ASSERT_EQ(r.matches, sr.matches);

  for (size_t i = 0; i < driver.shards().size(); ++i) {
    const auto& info = driver.shards()[i];
    auto loaded = driver.LoadShardState(i);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    // The concatenated decision bitmaps equal the serial run's.
    for (const Rule& rule : fn.rules()) {
      ExpectSliceEqual(loaded->FindRuleTrue(rule.id()),
                       serial_state.FindRuleTrue(rule.id()), info.begin,
                       info.end, "RuleTrue " + std::to_string(rule.id()));
      for (const Predicate& p : rule.predicates()) {
        ExpectSliceEqual(loaded->FindPredFalse(p.id),
                         serial_state.FindPredFalse(p.id), info.begin,
                         info.end, "PredFalse " + std::to_string(p.id));
      }
    }
    // The shard memo is the exact slice of the monolithic memo.
    const DenseMemo& shard_memo = loaded->memo();
    const DenseMemo& serial_memo = serial_state.memo();
    ASSERT_EQ(shard_memo.num_pairs(), info.end - info.begin);
    for (size_t local = 0; local < shard_memo.num_pairs(); ++local) {
      for (FeatureId f = 0; f < serial_memo.num_features(); ++f) {
        double shard_v = 0.0, serial_v = 0.0;
        const bool sp = shard_memo.Lookup(local, f, &shard_v);
        const bool gp = serial_memo.Lookup(info.begin + local, f, &serial_v);
        ASSERT_EQ(sp, gp) << "memo presence at pair " << info.begin + local
                          << " feature " << f;
        if (gp) {
          ASSERT_EQ(shard_v, serial_v)
              << "memo value at pair " << info.begin + local << " feature "
              << f;
        }
      }
    }
  }
}

TEST_F(ShardDriverTest, PooledShardsBitIdentical) {
  const MatchingFunction fn = MakeFunction(7);
  MatchState serial_state;
  const MatchResult sr = SerialBaseline(fn, &serial_state);

  ThreadPool pool(4);
  PairContext fresh(ds_->a, ds_->b, *catalog_);
  ShardedMatchDriver driver(DriverOptions(256, &pool));
  const MatchResult r = driver.Run(fn, pairs_, fresh);
  ASSERT_FALSE(r.partial) << r.status.ToString();
  EXPECT_EQ(r.matches, sr.matches);
  ExpectSameCounters(r.stats, sr.stats);
}

TEST_F(ShardDriverTest, RunStreamMatchesMaterializedRun) {
  const MatchingFunction fn = MakeFunction(9);
  MatchState serial_state;
  const MatchResult sr = SerialBaseline(fn, &serial_state);

  // Feed the pairs in scrambled order through the external sorter; the
  // stream comes out sorted+deduped — the same sequence as pairs_.
  ExternalSortOptions sopts;
  sopts.spill_dir = SpillDir();
  sopts.file_prefix = "shardstream";
  ExternalPairSorter sorter(sopts);
  for (size_t i = pairs_.size(); i-- > 0;) {
    ASSERT_TRUE(sorter.Add(pairs_.pair(i)).ok());
  }
  ASSERT_TRUE(sorter.Finish().ok());

  PairContext fresh(ds_->a, ds_->b, *catalog_);
  ShardedMatchDriver driver(DriverOptions(128));
  const MatchResult r = driver.RunStream(fn, sorter, fresh);
  ASSERT_FALSE(r.partial) << r.status.ToString();
  ASSERT_EQ(r.matches.size(), pairs_.size());
  EXPECT_EQ(r.matches, sr.matches);
  ExpectSameCounters(r.stats, sr.stats);
}

TEST_F(ShardDriverTest, BudgetedAutoShardingCompletesAndReleases) {
  const MatchingFunction fn = MakeFunction(11);
  MatchState serial_state;
  const MatchResult sr = SerialBaseline(fn, &serial_state);

  // A budget far smaller than the monolithic memo footprint
  // (pairs × features × 4 bytes ≈ several MiB here) forces many
  // auto-sized shards, yet must still fit one shard's memo plus the
  // in-flight spilling shard's.
  MemoryBudget budget(768u << 10, "shard-test");
  PairContext fresh(ds_->a, ds_->b, *catalog_);
  ShardedMatchDriver::Options o = DriverOptions(0);
  o.budget = &budget;
  ShardedMatchDriver driver(o);
  const MatchResult r = driver.Run(fn, pairs_, fresh);
  ASSERT_FALSE(r.partial) << r.status.ToString();
  EXPECT_EQ(r.matches, sr.matches);
  EXPECT_GT(driver.shards().size(), 1u)
      << "budget did not force multiple shards";
  EXPECT_EQ(budget.used(), 0u) << "driver leaked billing";
}

TEST_F(ShardDriverTest, AutoShardPairsDerivation) {
  EXPECT_EQ(ShardedMatchDriver::AutoShardPairs(nullptr, 30),
            size_t{1} << 18);
  MemoryBudget small(64u << 10, "t");
  const size_t p = ShardedMatchDriver::AutoShardPairs(&small, 30);
  EXPECT_EQ(p % 64, 0u);
  EXPECT_GE(p, 64u);
  MemoryBudget large(1u << 30, "t");
  EXPECT_GE(ShardedMatchDriver::AutoShardPairs(&large, 30), p);
}

// ---------------------------------------------------------------------------
// Robustness: cancellation and injected faults

TEST_F(ShardDriverTest, PreCancelledRunIsCleanlyPartial) {
  const MatchingFunction fn = MakeFunction();
  CancellationToken cancel;
  cancel.RequestCancel();
  PairContext fresh(ds_->a, ds_->b, *catalog_);
  ShardedMatchDriver driver(DriverOptions(128));
  const MatchResult r = driver.Run(fn, pairs_, fresh, RunControl(cancel));
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(r.matches.Count(), 0u);
  // A later uncontrolled run on the same driver completes normally.
  const MatchResult ok = driver.Run(fn, pairs_, fresh);
  EXPECT_FALSE(ok.partial);
}

TEST_F(ShardDriverTest, SpillWriteFaultStopsCleanlyWithExactPrefix) {
  const MatchingFunction fn = MakeFunction();
  MatchState serial_state;
  const MatchResult sr = SerialBaseline(fn, &serial_state);

  // Fail the third shard's spill: shards 0-2 evaluated (the failing
  // shard's bits are still valid — only its spill failed), the rest
  // untouched.
  FaultInjection::Plan plan;
  plan.skip = 2;  // every = 0: fail exactly once, on the third spill
  FaultInjection::Arm("spill.write", plan);
  PairContext fresh(ds_->a, ds_->b, *catalog_);
  ShardedMatchDriver driver(DriverOptions(128));
  const MatchResult r = driver.Run(fn, pairs_, fresh);
  FaultInjection::DisarmAll();

  ASSERT_TRUE(r.partial);
  EXPECT_EQ(r.status.code(), StatusCode::kIoError);
  ASSERT_EQ(r.evaluated.size(), pairs_.size());
  size_t evaluated = 0;
  for (size_t i = 0; i < pairs_.size(); ++i) {
    if (r.evaluated.Get(i)) {
      ++evaluated;
      ASSERT_EQ(r.matches.Get(i), sr.matches.Get(i))
          << "evaluated bit wrong at " << i;
    } else {
      ASSERT_FALSE(r.matches.Get(i)) << "unevaluated bit set at " << i;
    }
  }
  EXPECT_EQ(evaluated, 3u * 128) << "expected exactly three shards done";
}

TEST_F(ShardDriverTest, SingleBudgetDenialAtEverySiteIsHarmless) {
  const MatchingFunction fn = MakeFunction();
  MatchState serial_state;
  const MatchResult sr = SerialBaseline(fn, &serial_state);

  // One injected denial at the k-th mem.reserve call, for every k until
  // a run sees no injection: each run must either complete bit-identical
  // or fail cleanly partial. Never silently wrong bits.
  size_t completed = 0;
  for (uint64_t skip = 0; skip < 64; ++skip) {
    FaultInjection::DisarmAll();
    FaultInjection::Plan plan;
    plan.skip = skip;
    FaultInjection::Arm("mem.reserve", plan);

    MemoryBudget budget(1u << 20, "fault-run");
    PairContext fresh(ds_->a, ds_->b, *catalog_,
                      PairContext::Options{.budget = &budget});
    ShardedMatchDriver::Options o = DriverOptions(128);
    o.budget = &budget;
    ShardedMatchDriver driver(o);
    const MatchResult r = driver.Run(fn, pairs_, fresh);
    const uint64_t fired = FaultInjection::Failures("mem.reserve");
    FaultInjection::DisarmAll();

    if (r.partial) {
      EXPECT_FALSE(r.status.ok());
      for (size_t i = 0; i < pairs_.size(); ++i) {
        if (r.evaluated.size() > 0 && r.evaluated.Get(i)) {
          ASSERT_EQ(r.matches.Get(i), sr.matches.Get(i))
              << "skip=" << skip << " wrong evaluated bit at " << i;
        }
      }
    } else {
      ASSERT_EQ(r.matches, sr.matches) << "skip=" << skip;
      ++completed;
    }
    if (fired == 0) break;  // past the last reservation site
  }
  EXPECT_GT(completed, 0u)
      << "denials should be absorbed at degradable sites";
}

// ---------------------------------------------------------------------------
// Incremental re-match over spilled state

TEST_F(ShardDriverTest, RematchAllDirtyEqualsFreshRunOfEditedFunction) {
  MatchingFunction fn = MakeFunction(13);
  PairContext fresh(ds_->a, ds_->b, *catalog_);
  ShardedMatchDriver driver(DriverOptions(128));
  const MatchResult first = driver.Run(fn, pairs_, fresh);
  ASSERT_FALSE(first.partial);

  // Edit: tighten the first predicate of every rule, then re-match with
  // every pair dirty. Must equal a from-scratch serial run of the edited
  // function.
  for (size_t i = 0; i < fn.num_rules(); ++i) {
    Rule& rule = fn.mutable_rule(i);
    if (!rule.predicates().empty()) {
      const Predicate& p = rule.predicates().front();
      ASSERT_TRUE(fn.SetThreshold(rule.id(), p.id,
                                  std::min(1.0, p.threshold + 0.07))
                      .ok());
    }
  }
  MatchState edited_state;
  const MatchResult edited_serial = SerialBaseline(fn, &edited_state);

  Bitmap all_dirty(pairs_.size(), true);
  const MatchResult rematched = driver.Rematch(fn, pairs_, fresh, all_dirty);
  ASSERT_FALSE(rematched.partial) << rematched.status.ToString();
  EXPECT_EQ(rematched.matches, edited_serial.matches);
  // Warm memo: only features on newly reached short-circuit paths (rules
  // the first run never evaluated for a pair) are computed fresh; the
  // bulk must come from the spilled memo.
  EXPECT_LT(rematched.stats.feature_computations,
            edited_serial.stats.feature_computations / 2);
  EXPECT_GT(rematched.stats.memo_hits, 0u);
}

TEST_F(ShardDriverTest, RematchTouchesOnlyDirtyShards) {
  const MatchingFunction fn = MakeFunction(15);
  PairContext fresh(ds_->a, ds_->b, *catalog_);
  ShardedMatchDriver driver(DriverOptions(128));
  const MatchResult first = driver.Run(fn, pairs_, fresh);
  ASSERT_FALSE(first.partial);

  // No edit, one dirty pair in shard 2: the result must be unchanged and
  // the work bounded by one shard.
  Bitmap dirty(pairs_.size());
  dirty.Set(2 * 128 + 5);
  const MatchResult r = driver.Rematch(fn, pairs_, fresh, dirty);
  ASSERT_FALSE(r.partial) << r.status.ToString();
  EXPECT_EQ(r.matches, first.matches);
  EXPECT_LE(r.stats.rule_evaluations, first.stats.rule_evaluations / 2)
      << "re-match did not skip clean shards";

  // Zero dirty pairs: pure no-op.
  Bitmap clean(pairs_.size());
  const MatchResult noop = driver.Rematch(fn, pairs_, fresh, clean);
  ASSERT_FALSE(noop.partial);
  EXPECT_EQ(noop.matches, first.matches);
  EXPECT_EQ(noop.stats.rule_evaluations, 0u);
}

TEST_F(ShardDriverTest, RematchGuardsItsPreconditions) {
  const MatchingFunction fn = MakeFunction();
  PairContext fresh(ds_->a, ds_->b, *catalog_);
  // Before any run:
  {
    ShardedMatchDriver driver(DriverOptions(128));
    Bitmap dirty(pairs_.size(), true);
    const MatchResult r = driver.Rematch(fn, pairs_, fresh, dirty);
    EXPECT_TRUE(r.partial);
    EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition);
  }
  // keep_state off:
  {
    ShardedMatchDriver::Options o = DriverOptions(128);
    o.keep_state = false;
    ShardedMatchDriver driver(o);
    const MatchResult first = driver.Run(fn, pairs_, fresh);
    ASSERT_FALSE(first.partial);
    EXPECT_TRUE(driver.shards().front().state_path.empty());
    Bitmap dirty(pairs_.size(), true);
    const MatchResult r = driver.Rematch(fn, pairs_, fresh, dirty);
    EXPECT_TRUE(r.partial);
    EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition);
  }
}

TEST_F(ShardDriverTest, SpillAndRecoverRoundTripsShardState) {
  const MatchingFunction fn = MakeFunction(17);
  PairContext fresh(ds_->a, ds_->b, *catalog_);
  ShardedMatchDriver driver(DriverOptions(256));
  const MatchResult r = driver.Run(fn, pairs_, fresh);
  ASSERT_FALSE(r.partial);
  ASSERT_GT(driver.spilled_bytes(), 0u);

  // Every shard's state reloads from its CRC-checked container and its
  // match bits agree with the merged global bitmap.
  for (size_t i = 0; i < driver.shards().size(); ++i) {
    const auto& info = driver.shards()[i];
    auto loaded = driver.LoadShardState(i);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    for (size_t local = 0; local < info.end - info.begin; ++local) {
      ASSERT_EQ(loaded->matches().Get(local),
                r.matches.Get(info.begin + local))
          << "shard " << i << " local " << local;
    }
  }
}

}  // namespace
}  // namespace emdbg
