#include "src/core/rule.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace emdbg {
namespace {

Rule ThreePredicateRule() {
  Rule r("r1");
  r.AddPredicate({/*feature=*/0, CompareOp::kGe, 0.7, /*id=*/10});
  r.AddPredicate({/*feature=*/1, CompareOp::kLt, 0.3, /*id=*/11});
  r.AddPredicate({/*feature=*/0, CompareOp::kLt, 0.9, /*id=*/12});
  return r;
}

TEST(RuleTest, BasicAccess) {
  const Rule r = ThreePredicateRule();
  EXPECT_EQ(r.name(), "r1");
  EXPECT_EQ(r.size(), 3u);
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.predicate(1).feature, 1u);
}

TEST(RuleTest, FeaturesInFirstAppearanceOrder) {
  const Rule r = ThreePredicateRule();
  EXPECT_EQ(r.Features(), (std::vector<FeatureId>{0, 1}));
}

TEST(RuleTest, PredicatesOnFeature) {
  const Rule r = ThreePredicateRule();
  EXPECT_EQ(r.PredicatesOnFeature(0), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(r.PredicatesOnFeature(1), (std::vector<size_t>{1}));
  EXPECT_TRUE(r.PredicatesOnFeature(9).empty());
}

TEST(RuleTest, FindPredicateById) {
  const Rule r = ThreePredicateRule();
  EXPECT_EQ(r.FindPredicate(11), 1u);
  EXPECT_EQ(r.FindPredicate(99), r.size());
}

TEST(RuleTest, RemovePredicateById) {
  Rule r = ThreePredicateRule();
  EXPECT_TRUE(r.RemovePredicateById(11));
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.Features(), (std::vector<FeatureId>{0}));
  EXPECT_FALSE(r.RemovePredicateById(11));
}

TEST(RuleTest, Permute) {
  Rule r = ThreePredicateRule();
  r.Permute({2, 0, 1});
  EXPECT_EQ(r.predicate(0).id, 12u);
  EXPECT_EQ(r.predicate(1).id, 10u);
  EXPECT_EQ(r.predicate(2).id, 11u);
}

TEST(RuleTest, IsCanonical) {
  EXPECT_TRUE(ThreePredicateRule().IsCanonical());
  Rule bad;
  bad.AddPredicate({0, CompareOp::kGe, 0.5});
  bad.AddPredicate({0, CompareOp::kGt, 0.6});  // two lower bounds on f0
  EXPECT_FALSE(bad.IsCanonical());
}

TEST(RuleTest, ToString) {
  FeatureCatalog catalog(testing::PeopleTableA().schema(),
                         testing::PeopleTableB().schema());
  const FeatureId f =
      *catalog.InternByName(SimFunction::kJaro, "name", "name");
  Rule r("rx");
  r.AddPredicate({f, CompareOp::kGe, 0.9});
  EXPECT_EQ(r.ToString(catalog), "rx: jaro(name, name) >= 0.9");
}

TEST(RuleTest, EmptyRule) {
  const Rule r;
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.Features().empty());
  EXPECT_TRUE(r.IsCanonical());
}

}  // namespace
}  // namespace emdbg
