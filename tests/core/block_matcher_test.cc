/// Randomized differential suite for the columnar block engine: for every
/// rule-set shape, block size, and interning setting, BlockMatcher must be
/// *bit-identical* to the serial MemoMatcher — same match bitmap, same
/// per-rule/per-predicate decision bitmaps, same MatchStats counters, same
/// memo contents — because it performs the same set of evaluations, merely
/// reordered across the pairs of one block.

#include <cmath>
#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "src/core/block_matcher.h"
#include "src/core/memo_matcher.h"
#include "src/core/rule_generator.h"
#include "src/core/sampler.h"
#include "src/util/memory_budget.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

void ExpectSameCounters(const MatchStats& block, const MatchStats& serial) {
  EXPECT_EQ(block.feature_computations, serial.feature_computations);
  EXPECT_EQ(block.memo_hits, serial.memo_hits);
  EXPECT_EQ(block.predicate_evaluations, serial.predicate_evaluations);
  EXPECT_EQ(block.rule_evaluations, serial.rule_evaluations);
}

void ExpectSameMemo(const DenseMemo& block, const DenseMemo& serial) {
  ASSERT_EQ(block.num_pairs(), serial.num_pairs());
  ASSERT_EQ(block.num_features(), serial.num_features());
  EXPECT_EQ(block.FilledCount(), serial.FilledCount());
  for (size_t i = 0; i < serial.num_pairs(); ++i) {
    for (FeatureId f = 0; f < serial.num_features(); ++f) {
      double bv = 0.0, sv = 0.0;
      const bool bp = block.Lookup(i, f, &bv);
      const bool sp = serial.Lookup(i, f, &sv);
      ASSERT_EQ(bp, sp) << "presence differs at pair " << i << " feature "
                        << f;
      if (sp) {
        ASSERT_EQ(bv, sv) << "value differs at pair " << i << " feature "
                          << f;
      }
    }
  }
}

void ExpectSameState(const MatchingFunction& fn, const MatchState& block,
                     const MatchState& serial) {
  for (const Rule& r : fn.rules()) {
    const Bitmap* bt = block.FindRuleTrue(r.id());
    const Bitmap* st = serial.FindRuleTrue(r.id());
    ASSERT_EQ(bt != nullptr, st != nullptr);
    if (st != nullptr) {
      EXPECT_EQ(*bt, *st) << "RuleTrue " << r.id();
    }
    for (const Predicate& p : r.predicates()) {
      const Bitmap* bf = block.FindPredFalse(p.id);
      const Bitmap* sf = serial.FindPredFalse(p.id);
      ASSERT_EQ(bf != nullptr, sf != nullptr);
      if (sf != nullptr) {
        EXPECT_EQ(*bf, *sf) << "PredFalse " << p.id;
      }
    }
  }
}

// (interning on/off, rule count, generator seed, block size; 0 = auto)
using ParamType = std::tuple<bool, int, int, size_t>;

class BlockDifferentialTest : public ::testing::TestWithParam<ParamType> {
 protected:
  void SetUp() override {
    ds_ = std::make_unique<GeneratedDataset>(testing::SmallProducts(4242));
    catalog_ =
        std::make_unique<FeatureCatalog>(ds_->a.schema(), ds_->b.schema());
    catalog_->InternAllSameAttribute();
    PairContext::Options opts;
    opts.intern_tokens = std::get<0>(GetParam());
    ctx_ = std::make_unique<PairContext>(ds_->a, ds_->b, *catalog_, opts);
    Rng rng(7);
    sample_ = std::make_unique<CandidateSet>(
        SamplePairs(ds_->candidates, 0.25, rng));
  }

  MatchingFunction MakeFunction() {
    RuleGeneratorConfig config;
    config.num_rules = std::get<1>(GetParam());
    config.min_predicates = 1;
    config.max_predicates = 5;
    config.seed = static_cast<uint64_t>(std::get<2>(GetParam()));
    RuleGenerator gen(*ctx_, *sample_, config);
    return gen.Generate();
  }

  BlockMatcher MakeBlock() {
    BlockMatcher::Options opts;
    opts.block_size = std::get<3>(GetParam());
    return BlockMatcher(opts);
  }

  std::unique_ptr<GeneratedDataset> ds_;
  std::unique_ptr<FeatureCatalog> catalog_;
  std::unique_ptr<PairContext> ctx_;
  std::unique_ptr<CandidateSet> sample_;
};

TEST_P(BlockDifferentialTest, RunWithStateBitIdentical) {
  const MatchingFunction fn = MakeFunction();
  MemoMatcher serial;  // defaults: ccf off — the block-mode semantics
  BlockMatcher block = MakeBlock();

  MatchState serial_state;
  const MatchResult sr =
      serial.RunWithState(fn, ds_->candidates, *ctx_, serial_state);
  MatchState block_state;
  const MatchResult br =
      block.RunWithState(fn, ds_->candidates, *ctx_, block_state);

  EXPECT_EQ(br.matches, sr.matches);
  EXPECT_FALSE(br.partial);
  EXPECT_EQ(br.pairs_completed, sr.pairs_completed);
  ExpectSameCounters(br.stats, sr.stats);
  ExpectSameState(fn, block_state, serial_state);
  ExpectSameMemo(block_state.memo(), serial_state.memo());
  EXPECT_EQ(block_state.matches(), serial_state.matches());
}

TEST_P(BlockDifferentialTest, MemoLessRunMatchesSerial) {
  const MatchingFunction fn = MakeFunction();
  MemoMatcher serial;
  BlockMatcher block = MakeBlock();

  const MatchResult sr = serial.Run(fn, ds_->candidates, *ctx_);
  const MatchResult br = block.Run(fn, ds_->candidates, *ctx_);

  EXPECT_EQ(br.matches, sr.matches);
  ExpectSameCounters(br.stats, sr.stats);
}

TEST_P(BlockDifferentialTest, WarmMemoReusedIdentically) {
  const MatchingFunction fn = MakeFunction();
  MemoMatcher serial;
  BlockMatcher block = MakeBlock();

  // Warm both memos with a first run, then re-run: the second pass must
  // be all hits, and still agree.
  DenseMemo serial_memo(ds_->candidates.size(), catalog_->size());
  DenseMemo block_memo(ds_->candidates.size(), catalog_->size());
  (void)serial.RunWithMemo(fn, ds_->candidates, *ctx_, serial_memo);
  (void)block.RunWithMemo(fn, ds_->candidates, *ctx_, block_memo);
  ExpectSameMemo(block_memo, serial_memo);

  const MatchResult sr =
      serial.RunWithMemo(fn, ds_->candidates, *ctx_, serial_memo);
  const MatchResult br =
      block.RunWithMemo(fn, ds_->candidates, *ctx_, block_memo);
  EXPECT_EQ(br.matches, sr.matches);
  ExpectSameCounters(br.stats, sr.stats);
  EXPECT_EQ(br.stats.feature_computations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BlockDifferentialTest,
    ::testing::Combine(::testing::Bool(),            // interning
                       ::testing::Values(1, 3, 8),   // rules (CNF 1..5 each)
                       ::testing::Values(1, 2, 3),   // generator seed
                       ::testing::Values(size_t{64}, size_t{192},
                                         size_t{1024}, size_t{0})),
    [](const ::testing::TestParamInfo<ParamType>& info) {
      const bool intern = std::get<0>(info.param);
      const int rules = std::get<1>(info.param);
      const int seed = std::get<2>(info.param);
      const size_t block = std::get<3>(info.param);
      return std::string(intern ? "ids" : "strings") + "_r" +
             std::to_string(rules) + "_s" + std::to_string(seed) +
             (block == 0 ? std::string("_auto")
                         : "_b" + std::to_string(block));
    });

class BlockMatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = std::make_unique<GeneratedDataset>(testing::SmallProducts(31337));
    catalog_ =
        std::make_unique<FeatureCatalog>(ds_->a.schema(), ds_->b.schema());
    catalog_->InternAllSameAttribute();
    ctx_ = std::make_unique<PairContext>(ds_->a, ds_->b, *catalog_);
    Rng rng(7);
    sample_ = std::make_unique<CandidateSet>(
        SamplePairs(ds_->candidates, 0.25, rng));
    RuleGeneratorConfig config;
    config.num_rules = 4;
    config.min_predicates = 2;
    config.max_predicates = 4;
    config.seed = 17;
    RuleGenerator gen(*ctx_, *sample_, config);
    fn_ = std::make_unique<MatchingFunction>(gen.Generate());
  }

  std::unique_ptr<GeneratedDataset> ds_;
  std::unique_ptr<FeatureCatalog> catalog_;
  std::unique_ptr<PairContext> ctx_;
  std::unique_ptr<CandidateSet> sample_;
  std::unique_ptr<MatchingFunction> fn_;
};

TEST_F(BlockMatcherTest, PreCancelledRunEvaluatesNothing) {
  CancellationToken token;
  token.RequestCancel();
  BlockMatcher block(BlockMatcher::Options{.block_size = 64});
  const MatchResult r =
      block.Run(*fn_, ds_->candidates, *ctx_, RunControl(token));
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.pairs_completed, 0u);
  EXPECT_EQ(r.MatchCount(), 0u);
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(r.stats.feature_computations, 0u);
}

TEST_F(BlockMatcherTest, ExpiredDeadlineStopsOnBlockBoundary) {
  BlockMatcher block(BlockMatcher::Options{.block_size = 64});
  const MatchResult r = block.Run(*fn_, ds_->candidates, *ctx_,
                                  RunControl(Deadline::AfterMillis(-1)));
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.pairs_completed % 64, 0u);
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);

  // Every evaluated pair carries the serial matcher's bit.
  MemoMatcher serial;
  const Bitmap expected = serial.Run(*fn_, ds_->candidates, *ctx_).matches;
  for (size_t i = 0; i < r.pairs_completed; ++i) {
    EXPECT_EQ(r.matches.Get(i), expected.Get(i)) << "pair " << i;
  }
}

TEST_F(BlockMatcherTest, ScratchBudgetDenialFailsCleanly) {
  MemoryBudget budget(1024, "tiny");  // far below any block scratch
  BlockMatcher block(
      BlockMatcher::Options{.block_size = 1024, .budget = &budget});
  const MatchResult r = block.Run(*fn_, ds_->candidates, *ctx_);
  EXPECT_TRUE(r.partial);
  EXPECT_EQ(r.pairs_completed, 0u);
  EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(budget.used(), 0u) << "denied run must release everything";
}

TEST_F(BlockMatcherTest, AutoBlockSizeIsAlignedAndClamped) {
  const size_t b = BlockMatcher::AutoBlockSize(*fn_, nullptr);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, size_t{256});
  EXPECT_LE(b, size_t{4096});

  // Explicit sizes round up to the bitmap-word alignment.
  EXPECT_EQ(BlockMatcher::ResolveBlockSize(
                BlockMatcher::Options{.block_size = 1}, *fn_),
            64u);
  EXPECT_EQ(BlockMatcher::ResolveBlockSize(
                BlockMatcher::Options{.block_size = 65}, *fn_),
            128u);
  EXPECT_EQ(BlockMatcher::ResolveBlockSize(
                BlockMatcher::Options{.block_size = 512}, *fn_),
            512u);
}

TEST_F(BlockMatcherTest, EmptyFunctionAndEmptyPairsAreHandled) {
  MatchingFunction empty_fn;
  BlockMatcher block;
  const MatchResult r1 = block.Run(empty_fn, ds_->candidates, *ctx_);
  EXPECT_FALSE(r1.partial);
  EXPECT_EQ(r1.MatchCount(), 0u);
  EXPECT_EQ(r1.stats.rule_evaluations, 0u);

  CandidateSet none;
  const MatchResult r2 = block.Run(*fn_, none, *ctx_);
  EXPECT_FALSE(r2.partial);
  EXPECT_EQ(r2.pairs_completed, 0u);
}

TEST_F(BlockMatcherTest, DegradedContextStaysBitIdentical) {
  // A context whose id caches are denied by a tiny budget must still
  // produce the serial matcher's exact result (the degradation ladder is
  // value-preserving; the engine only changes *when* lanes are computed).
  MemoryBudget tiny(16 * 1024, "ctx");
  PairContext::Options opts;
  opts.budget = &tiny;
  PairContext degraded(ds_->a, ds_->b, *catalog_, opts);

  MemoMatcher serial;
  const Bitmap expected =
      serial.Run(*fn_, ds_->candidates, degraded).matches;
  BlockMatcher block(BlockMatcher::Options{.block_size = 256});
  const MatchResult r = block.Run(*fn_, ds_->candidates, degraded);
  EXPECT_EQ(r.matches, expected);
}

}  // namespace
}  // namespace emdbg
