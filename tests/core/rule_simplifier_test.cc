#include "src/core/rule_simplifier.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/core/rule_parser.h"
#include "src/core/sampler.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

class RuleSimplifierTest : public ::testing::Test {
 protected:
  RuleSimplifierTest()
      : catalog_(testing::PeopleTableA().schema(),
                 testing::PeopleTableB().schema()) {}

  MatchingFunction Parse(const char* text) {
    auto fn = ParseMatchingFunction(text, catalog_);
    EXPECT_TRUE(fn.ok()) << fn.status();
    return *fn;
  }

  std::vector<SimplifierFinding> FindingsOfKind(
      const std::vector<SimplifierFinding>& all, FindingKind kind) {
    std::vector<SimplifierFinding> out;
    for (const auto& f : all) {
      if (f.kind == kind) out.push_back(f);
    }
    return out;
  }

  FeatureCatalog catalog_;
};

TEST_F(RuleSimplifierTest, CleanRuleSetHasNoFindings) {
  const MatchingFunction fn = Parse(
      "r1: jaccard(name, name) >= 0.7 AND jaro(zip, zip) < 0.4\n"
      "r2: exact_match(phone, phone) >= 1\n");
  EXPECT_TRUE(AnalyzeRules(fn, catalog_).empty());
}

TEST_F(RuleSimplifierTest, RedundantLowerBoundDetected) {
  const MatchingFunction fn = Parse(
      "r1: jaccard(name, name) >= 0.8 AND jaccard(name, name) >= 0.5\n");
  const auto findings = AnalyzeRules(fn, catalog_);
  const auto redundant =
      FindingsOfKind(findings, FindingKind::kRedundantPredicate);
  ASSERT_EQ(redundant.size(), 1u);
  // The weaker (>= 0.5) predicate is the redundant one.
  EXPECT_EQ(redundant[0].predicate_id, fn.rule(0).predicate(1).id);
  EXPECT_NE(redundant[0].description.find("0.5"), std::string::npos);
}

TEST_F(RuleSimplifierTest, DuplicatePredicateDetectedOnce) {
  const MatchingFunction fn = Parse(
      "r1: jaro(zip, zip) < 0.4 AND jaro(zip, zip) < 0.4\n");
  const auto redundant = FindingsOfKind(AnalyzeRules(fn, catalog_),
                                        FindingKind::kRedundantPredicate);
  ASSERT_EQ(redundant.size(), 1u);
  EXPECT_EQ(redundant[0].predicate_id, fn.rule(0).predicate(1).id);
}

TEST_F(RuleSimplifierTest, StrictVsNonStrictImplication) {
  // "> 0.5" strictly implies ">= 0.5" → the >= is redundant.
  const MatchingFunction fn = Parse(
      "r1: jaccard(name, name) > 0.5 AND jaccard(name, name) >= 0.5\n");
  const auto redundant = FindingsOfKind(AnalyzeRules(fn, catalog_),
                                        FindingKind::kRedundantPredicate);
  ASSERT_EQ(redundant.size(), 1u);
  EXPECT_EQ(catalog_.size(), 1u);
  EXPECT_EQ(redundant[0].predicate_id, fn.rule(0).predicate(1).id);
}

TEST_F(RuleSimplifierTest, UnsatisfiableRuleDetected) {
  const MatchingFunction fn = Parse(
      "dead: jaccard(name, name) >= 0.8 AND jaccard(name, name) < 0.5\n");
  const auto unsat = FindingsOfKind(AnalyzeRules(fn, catalog_),
                                    FindingKind::kUnsatisfiableRule);
  ASSERT_EQ(unsat.size(), 1u);
  EXPECT_EQ(unsat[0].rule_id, fn.rule(0).id());
}

TEST_F(RuleSimplifierTest, BoundaryEqualityIsSatisfiable) {
  // >= 0.5 AND <= 0.5 admits exactly 0.5 — not a contradiction.
  const MatchingFunction fn = Parse(
      "r1: jaccard(name, name) >= 0.5 AND jaccard(name, name) <= 0.5\n");
  EXPECT_TRUE(FindingsOfKind(AnalyzeRules(fn, catalog_),
                             FindingKind::kUnsatisfiableRule)
                  .empty());
  // > 0.5 AND <= 0.5 is empty.
  const MatchingFunction dead = Parse(
      "r1: jaccard(name, name) > 0.5 AND jaccard(name, name) <= 0.5\n");
  EXPECT_EQ(FindingsOfKind(AnalyzeRules(dead, catalog_),
                           FindingKind::kUnsatisfiableRule)
                .size(),
            1u);
}

TEST_F(RuleSimplifierTest, SubsumedRuleDetected) {
  // r2 is tighter than r1 on every predicate → anything r2 matches, r1
  // matches; r2 is useless.
  const MatchingFunction fn = Parse(
      "r1: jaccard(name, name) >= 0.5\n"
      "r2: jaccard(name, name) >= 0.8 AND exact_match(zip, zip) >= 1\n");
  const auto subsumed = FindingsOfKind(AnalyzeRules(fn, catalog_),
                                       FindingKind::kSubsumedRule);
  ASSERT_EQ(subsumed.size(), 1u);
  EXPECT_EQ(subsumed[0].rule_id, fn.rule(1).id());
  EXPECT_EQ(subsumed[0].by_rule_id, fn.rule(0).id());
}

TEST_F(RuleSimplifierTest, IdenticalRulesReportLaterOne) {
  const MatchingFunction fn = Parse(
      "r1: jaccard(name, name) >= 0.5\n"
      "r2: jaccard(name, name) >= 0.5\n");
  const auto subsumed = FindingsOfKind(AnalyzeRules(fn, catalog_),
                                       FindingKind::kSubsumedRule);
  ASSERT_EQ(subsumed.size(), 1u);
  EXPECT_EQ(subsumed[0].rule_id, fn.rule(1).id());
}

TEST_F(RuleSimplifierTest, NonOverlappingRulesNotSubsumed) {
  const MatchingFunction fn = Parse(
      "r1: jaccard(name, name) >= 0.5\n"
      "r2: jaccard(name, name) >= 0.8 AND jaro(zip, zip) < 0.2\n"
      "r3: exact_match(phone, phone) >= 1\n");
  // r2 IS subsumed by r1; r3 is independent.
  const auto subsumed = FindingsOfKind(AnalyzeRules(fn, catalog_),
                                       FindingKind::kSubsumedRule);
  ASSERT_EQ(subsumed.size(), 1u);
  EXPECT_EQ(subsumed[0].rule_id, fn.rule(1).id());
}

TEST_F(RuleSimplifierTest, IneffectivePredicateViaModel) {
  const GeneratedDataset ds = testing::SmallProducts();
  FeatureCatalog catalog(ds.a.schema(), ds.b.schema());
  auto fn = ParseMatchingFunction(
      // trigram >= 0 passes everything; exact modelno is selective.
      "r1: exact_match(modelno, modelno) >= 1 AND "
      "trigram(title, title) >= 0.0\n",
      catalog);
  ASSERT_TRUE(fn.ok());
  PairContext ctx(ds.a, ds.b, catalog);
  Rng rng(3);
  const CandidateSet sample = SamplePairs(ds.candidates, 0.2, rng);
  const CostModel model =
      CostModel::EstimateForFunction(*fn, ctx, sample);
  const auto findings = AnalyzeRulesWithModel(*fn, catalog, model);
  const auto ineffective =
      FindingsOfKind(findings, FindingKind::kIneffectivePredicate);
  ASSERT_EQ(ineffective.size(), 1u);
  EXPECT_EQ(ineffective[0].predicate_id, fn->rule(0).predicate(1).id);
}

TEST_F(RuleSimplifierTest, FindingKindNames) {
  EXPECT_STREQ(FindingKindName(FindingKind::kRedundantPredicate),
               "redundant_predicate");
  EXPECT_STREQ(FindingKindName(FindingKind::kSubsumedRule),
               "subsumed_rule");
}

}  // namespace
}  // namespace emdbg
