/// Parameterized agreement sweep: every (ordering strategy x
/// check-cache-first x rule seed) combination must produce exactly the
/// matches of the rudimentary oracle. This is the library's central
/// correctness property — all of the paper's optimizations are
/// semantics-preserving.

#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "src/core/memo_matcher.h"
#include "src/core/ordering.h"
#include "src/core/rudimentary_matcher.h"
#include "src/core/rule_generator.h"
#include "src/core/sampler.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

using ParamType = std::tuple<OrderingStrategy, bool, int>;

class MatcherAgreementTest : public ::testing::TestWithParam<ParamType> {
 protected:
  static void SetUpTestSuite() {
    ds_ = new GeneratedDataset(testing::SmallProducts(31337));
    catalog_ = new FeatureCatalog(ds_->a.schema(), ds_->b.schema());
    catalog_->InternAllSameAttribute();
    ctx_ = new PairContext(ds_->a, ds_->b, *catalog_);
    Rng rng(11);
    sample_ = new CandidateSet(SamplePairs(ds_->candidates, 0.25, rng));
  }

  static void TearDownTestSuite() {
    delete sample_;
    delete ctx_;
    delete catalog_;
    delete ds_;
    sample_ = nullptr;
    ctx_ = nullptr;
    catalog_ = nullptr;
    ds_ = nullptr;
  }

  static GeneratedDataset* ds_;
  static FeatureCatalog* catalog_;
  static PairContext* ctx_;
  static CandidateSet* sample_;
};

GeneratedDataset* MatcherAgreementTest::ds_ = nullptr;
FeatureCatalog* MatcherAgreementTest::catalog_ = nullptr;
PairContext* MatcherAgreementTest::ctx_ = nullptr;
CandidateSet* MatcherAgreementTest::sample_ = nullptr;

TEST_P(MatcherAgreementTest, OptimizedEqualsOracle) {
  const auto [strategy, check_cache_first, seed] = GetParam();
  RuleGeneratorConfig config;
  config.num_rules = 8;
  config.min_predicates = 2;
  config.max_predicates = 5;
  config.seed = static_cast<uint64_t>(seed);
  RuleGenerator gen(*ctx_, *sample_, config);
  MatchingFunction fn = gen.Generate();

  RudimentaryMatcher oracle;
  const Bitmap expected = oracle.Run(fn, ds_->candidates, *ctx_).matches;

  const CostModel model =
      CostModel::EstimateForFunction(fn, *ctx_, *sample_);
  Rng rng(99);
  ApplyOrdering(fn, strategy, model, &rng);

  MemoMatcher matcher(
      MemoMatcher::Options{.check_cache_first = check_cache_first});
  EXPECT_EQ(matcher.Run(fn, ds_->candidates, *ctx_).matches, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatcherAgreementTest,
    ::testing::Combine(
        ::testing::Values(OrderingStrategy::kAsWritten,
                          OrderingStrategy::kRandom,
                          OrderingStrategy::kIndependent,
                          OrderingStrategy::kGreedyCost,
                          OrderingStrategy::kGreedyReduction),
        ::testing::Bool(), ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<ParamType>& info) {
      // Note: no structured bindings here — their brackets do not protect
      // commas from the INSTANTIATE macro's argument splitting.
      const OrderingStrategy strategy = std::get<0>(info.param);
      const bool ccf = std::get<1>(info.param);
      const int seed = std::get<2>(info.param);
      return std::string(OrderingStrategyName(strategy)) +
             (ccf ? "_ccf" : "_plain") + "_seed" + std::to_string(seed);
    });

}  // namespace
}  // namespace emdbg
