#include <filesystem>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/core/debug_session.h"
#include "src/core/edit_log.h"
#include "src/core/rule_parser.h"
#include "src/util/crc32c.h"
#include "src/util/csv.h"
#include "src/util/string_util.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

/// Durability/crash-recovery tests. A "crash" is simulated by abandoning
/// the session object: everything the contract promises to survive a
/// kill -9 is already fsync'd on disk, and nothing in the destructor
/// cleans up, so a dropped session is indistinguishable from a killed
/// process as far as the files are concerned.
class DurableSessionTest : public ::testing::Test {
 protected:
  DurableSessionTest()
      : dir_(::testing::TempDir() + "/emdbg_durable_" +
             ::testing::UnitTest::GetInstance()
                 ->current_test_info()
                 ->name()) {
    std::filesystem::remove_all(dir_);
  }

  ~DurableSessionTest() override { std::filesystem::remove_all(dir_); }

  /// A session over the deterministic SmallProducts dataset with two
  /// rules and a completed first run. Every call builds an identical
  /// session (same generator seed), which is the recovery contract: the
  /// tables/candidates must match the crashed session's.
  std::unique_ptr<DebugSession> FreshSession() {
    GeneratedDataset ds = testing::SmallProducts();
    auto session = std::make_unique<DebugSession>(
        std::move(ds.a), std::move(ds.b), std::move(ds.candidates));
    EXPECT_TRUE(
        session->AddRuleText("r1: jaccard(title, title) >= 0.5").ok());
    EXPECT_TRUE(
        session
            ->AddRuleText("r2: exact_match(modelno, modelno) >= 1 AND "
                          "jaro_winkler(brand, brand) >= 0.85")
            .ok());
    session->Run();
    EXPECT_TRUE(session->has_run());
    return session;
  }

  /// A blank session over the same dataset — the recovery target (Recover
  /// requires a session that has not run yet).
  std::unique_ptr<DebugSession> FreshSessionForRecovery() {
    GeneratedDataset ds = testing::SmallProducts();
    return std::make_unique<DebugSession>(
        std::move(ds.a), std::move(ds.b), std::move(ds.candidates));
  }

  std::string Dsl(DebugSession& s) {
    return FunctionToDsl(s.function(), s.catalog());
  }

  std::string journal_path() const { return dir_ + "/journal.log"; }

  std::string dir_;
};

TEST_F(DurableSessionTest, EnableRequiresCompletedRun) {
  GeneratedDataset ds = testing::SmallProducts();
  DebugSession session(std::move(ds.a), std::move(ds.b),
                       std::move(ds.candidates));
  EXPECT_EQ(session.EnableDurability(dir_).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DurableSessionTest, EnableWritesCheckpointFiles) {
  auto session = FreshSession();
  ASSERT_TRUE(session->EnableDurability(dir_).ok());
  EXPECT_TRUE(session->durable());
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/checkpoint.meta"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/checkpoint.1.features"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/checkpoint.1.rules"));
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/checkpoint.1.state"));
  EXPECT_TRUE(std::filesystem::exists(journal_path()));
  EXPECT_EQ(session->EnableDurability(dir_).code(),
            StatusCode::kFailedPrecondition)
      << "double enable";
}

TEST_F(DurableSessionTest, RecoverRestoresEditsFromJournal) {
  // Survivor: same edits, no crash — the ground truth.
  auto survivor = FreshSession();

  {
    auto session = FreshSession();
    // Large cadence: all edits stay in the journal, none in a checkpoint.
    ASSERT_TRUE(session->EnableDurability(dir_, 100).ok());
    for (DebugSession* s : {session.get(), survivor.get()}) {
      ASSERT_TRUE(
          s->AddRuleText("r3: jaccard(category, category) >= 0.9").ok());
      const Rule& r1 = *s->function().RuleById(s->function().rule(0).id());
      ASSERT_TRUE(
          s->SetThreshold(r1.id(), r1.predicate(0).id, 0.65).ok());
      ASSERT_TRUE(s->RemoveRule(s->function().rule(1).id()).ok());
    }
    EXPECT_EQ(session->edits_since_checkpoint(), 3u);
    EXPECT_EQ(Dsl(*session), Dsl(*survivor));
    // Crash: session dropped without a checkpoint.
  }

  auto recovered = FreshSessionForRecovery();
  ASSERT_TRUE(recovered->Recover(dir_).ok());
  EXPECT_TRUE(recovered->durable());
  EXPECT_TRUE(recovered->has_run());
  EXPECT_EQ(Dsl(*recovered), Dsl(*survivor));
  EXPECT_EQ(recovered->Run(), survivor->Run());

  // The recovered memo is live: further identical edits stay in lockstep.
  for (DebugSession* s : {recovered.get(), survivor.get()}) {
    const Rule& r = *s->function().RuleById(s->function().rule(0).id());
    ASSERT_TRUE(s->SetThreshold(r.id(), r.predicate(0).id, 0.45).ok());
  }
  EXPECT_EQ(recovered->Run(), survivor->Run());
  EXPECT_EQ(Dsl(*recovered), Dsl(*survivor));
}

TEST_F(DurableSessionTest, CheckpointCadenceTruncatesJournal) {
  auto session = FreshSession();
  ASSERT_TRUE(session->EnableDurability(dir_, 2).ok());

  const Rule& r1 = session->function().rule(0);
  ASSERT_TRUE(
      session->SetThreshold(r1.id(), r1.predicate(0).id, 0.61).ok());
  EXPECT_EQ(session->edits_since_checkpoint(), 1u);
  {
    auto contents = EditJournal::Read(journal_path());
    ASSERT_TRUE(contents.ok());
    EXPECT_EQ(contents->epoch, 1u);
    EXPECT_EQ(contents->records.size(), 1u);
  }

  // Second edit crosses the cadence: checkpoint + fresh journal.
  ASSERT_TRUE(
      session->SetThreshold(r1.id(), r1.predicate(0).id, 0.62).ok());
  EXPECT_EQ(session->edits_since_checkpoint(), 0u);
  {
    auto contents = EditJournal::Read(journal_path());
    ASSERT_TRUE(contents.ok());
    EXPECT_EQ(contents->epoch, 2u);
    EXPECT_TRUE(contents->records.empty());
  }
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/checkpoint.2.state"));
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/checkpoint.1.state"))
      << "superseded epoch files must be cleaned up";

  // Crash now; recovery needs only the checkpoint.
  session.reset();
  auto recovered = FreshSessionForRecovery();
  ASSERT_TRUE(recovered->Recover(dir_).ok());
  const Rule& rec_r1 = recovered->function().rule(0);
  EXPECT_DOUBLE_EQ(rec_r1.predicate(0).threshold, 0.62);
}

TEST_F(DurableSessionTest, TornFinalJournalRecordIsDropped) {
  double original_threshold = 0.0;
  {
    auto session = FreshSession();
    original_threshold =
        session->function().rule(0).predicate(0).threshold;
    ASSERT_TRUE(session->EnableDurability(dir_, 100).ok());
  }
  // Simulate a crash mid-append: a half-written record with no newline
  // and a CRC that cannot match.
  {
    std::FILE* f = std::fopen(journal_path().c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("00000000 set_thresho", f);
    std::fclose(f);
  }
  auto recovered = FreshSessionForRecovery();
  ASSERT_TRUE(recovered->Recover(dir_).ok())
      << "a torn tail is the signature of a crash mid-append and must "
         "be tolerated";
  EXPECT_DOUBLE_EQ(recovered->function().rule(0).predicate(0).threshold,
                   original_threshold)
      << "the torn edit never committed and must not be applied";
}

TEST_F(DurableSessionTest, CorruptEarlierJournalRecordIsParseError) {
  {
    auto session = FreshSession();
    ASSERT_TRUE(session->EnableDurability(dir_, 100).ok());
    const Rule& r1 = session->function().rule(0);
    ASSERT_TRUE(
        session->SetThreshold(r1.id(), r1.predicate(0).id, 0.61).ok());
    ASSERT_TRUE(
        session->SetThreshold(r1.id(), r1.predicate(0).id, 0.62).ok());
  }
  // Flip one payload byte of the first record; the second record after it
  // means this is not a torn tail.
  auto text = ReadFileToString(journal_path());
  ASSERT_TRUE(text.ok());
  const size_t first_record = text->find('\n') + 1;
  const size_t payload = text->find(' ', first_record) + 1;
  (*text)[payload] ^= 0x20;
  ASSERT_TRUE(WriteStringToFile(journal_path(), *text).ok());

  auto recovered = FreshSessionForRecovery();
  EXPECT_EQ(recovered->Recover(dir_).code(), StatusCode::kParseError);
}

TEST_F(DurableSessionTest, StaleEpochJournalIsIgnored) {
  {
    auto session = FreshSession();
    ASSERT_TRUE(session->EnableDurability(dir_, 100).ok());
  }
  // A journal left behind by an older epoch (crash between the meta
  // write and the journal reset): structurally valid, wrong epoch. Its
  // record would remove a rule if it were wrongly replayed.
  const std::string payload = "remove_rule 0";
  const std::string stale = "EMDBGJ1 999\n" +
                            StrFormat("%08x ", Crc32c(payload)) + payload +
                            "\n";
  ASSERT_TRUE(WriteStringToFile(journal_path(), stale).ok());

  auto recovered = FreshSessionForRecovery();
  ASSERT_TRUE(recovered->Recover(dir_).ok());
  EXPECT_EQ(recovered->function().num_rules(), 2u)
      << "a stale journal's edits are inside the checkpoint already";
}

TEST_F(DurableSessionTest, MissingJournalMeansNothingToReplay) {
  {
    auto session = FreshSession();
    ASSERT_TRUE(session->EnableDurability(dir_).ok());
  }
  std::filesystem::remove(journal_path());
  auto recovered = FreshSessionForRecovery();
  ASSERT_TRUE(recovered->Recover(dir_).ok());
  EXPECT_EQ(recovered->function().num_rules(), 2u);
}

TEST_F(DurableSessionTest, UndoIsJournaledAsItsInverse) {
  auto survivor = FreshSession();
  {
    auto session = FreshSession();
    ASSERT_TRUE(session->EnableDurability(dir_, 100).ok());
    for (DebugSession* s : {session.get(), survivor.get()}) {
      const Rule& r1 = *s->function().RuleById(s->function().rule(0).id());
      ASSERT_TRUE(
          s->SetThreshold(r1.id(), r1.predicate(0).id, 0.9).ok());
      ASSERT_TRUE(
          s->AddRuleText("r3: jaccard(category, category) >= 0.8").ok());
      ASSERT_TRUE(s->Undo().ok());  // removes r3 again
      ASSERT_TRUE(s->Undo().ok());  // threshold back to the original
    }
  }
  auto recovered = FreshSessionForRecovery();
  ASSERT_TRUE(recovered->Recover(dir_).ok());
  EXPECT_EQ(Dsl(*recovered), Dsl(*survivor));
  EXPECT_EQ(recovered->Run(), survivor->Run());
}

TEST_F(DurableSessionTest, RecoverFromMissingDirIsIoError) {
  auto session = FreshSessionForRecovery();
  EXPECT_EQ(session->Recover(dir_ + "/nope").code(), StatusCode::kIoError);
}

TEST_F(DurableSessionTest, CorruptMetaIsParseError) {
  {
    auto session = FreshSession();
    ASSERT_TRUE(session->EnableDurability(dir_).ok());
  }
  ASSERT_TRUE(
      WriteStringToFile(dir_ + "/checkpoint.meta", "WHATEVER 1\n").ok());
  auto recovered = FreshSessionForRecovery();
  EXPECT_EQ(recovered->Recover(dir_).code(), StatusCode::kParseError);
}

TEST_F(DurableSessionTest, CorruptStateFileIsDetectedByCrc) {
  {
    auto session = FreshSession();
    ASSERT_TRUE(session->EnableDurability(dir_).ok());
  }
  const std::string state_path = dir_ + "/checkpoint.1.state";
  auto bytes = ReadFileToString(state_path);
  ASSERT_TRUE(bytes.ok());
  (*bytes)[bytes->size() / 2] ^= 0x01;  // one flipped bit mid-file
  ASSERT_TRUE(WriteStringToFile(state_path, *bytes).ok());

  auto recovered = FreshSessionForRecovery();
  EXPECT_EQ(recovered->Recover(dir_).code(), StatusCode::kParseError);
}

TEST_F(DurableSessionTest, RecoverAfterEnableOnRecoveredSession) {
  // Recovery chains: crash, recover, edit, crash again, recover again.
  {
    auto session = FreshSession();
    ASSERT_TRUE(session->EnableDurability(dir_, 100).ok());
    const Rule& r1 = session->function().rule(0);
    ASSERT_TRUE(
        session->SetThreshold(r1.id(), r1.predicate(0).id, 0.7).ok());
  }
  {
    auto recovered = FreshSessionForRecovery();
    ASSERT_TRUE(recovered->Recover(dir_, 100).ok());
    EXPECT_DOUBLE_EQ(recovered->function().rule(0).predicate(0).threshold,
                     0.7);
    ASSERT_TRUE(
        recovered
            ->AddRuleText("r3: jaccard(category, category) >= 0.95")
            .ok());
  }
  auto again = FreshSessionForRecovery();
  ASSERT_TRUE(again->Recover(dir_).ok());
  EXPECT_EQ(again->function().num_rules(), 3u);
  EXPECT_DOUBLE_EQ(again->function().rule(0).predicate(0).threshold, 0.7);
}

}  // namespace
}  // namespace emdbg
