#include "src/core/debug_session.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/core/memo_matcher.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

class DebugSessionTest : public ::testing::Test {
 protected:
  DebugSessionTest() : ds_(testing::SmallProducts()) {}

  std::unique_ptr<DebugSession> MakeSession(DebugSession::Options options =
                                                DebugSession::Options{}) {
    return std::make_unique<DebugSession>(ds_.a, ds_.b, ds_.candidates,
                                          options);
  }

  /// From-scratch oracle over a session's current function.
  Bitmap Oracle(DebugSession& session) {
    MemoMatcher matcher;
    PairContext ctx(session.context().table_a(), session.context().table_b(),
                    session.catalog());
    return matcher.Run(session.function(), session.candidates(), ctx)
        .matches;
  }

  GeneratedDataset ds_;
};

TEST_F(DebugSessionTest, AddRuleTextAndRun) {
  auto session = MakeSession();
  auto rid = session->AddRuleText(
      "r1: exact_match(modelno, modelno) >= 1 AND "
      "jaccard(title, title) >= 0.4");
  ASSERT_TRUE(rid.ok()) << rid.status();
  const Bitmap& matches = session->Run();
  EXPECT_TRUE(session->has_run());
  EXPECT_GT(matches.Count(), 0u);
  EXPECT_EQ(matches, Oracle(*session));
}

TEST_F(DebugSessionTest, BadRuleTextIsError) {
  auto session = MakeSession();
  EXPECT_FALSE(session->AddRuleText("nonsense !!").ok());
  EXPECT_FALSE(session->AddRuleText("jaccard(title, bogus) >= 1").ok());
}

TEST_F(DebugSessionTest, ScoreAgainstLabels) {
  auto session = MakeSession();
  ASSERT_TRUE(session
                  ->AddRuleText(
                      "jaccard(title, title) >= 0.6 AND "
                      "exact_match(category, category) >= 1")
                  .ok());
  const QualityMetrics m = session->Score(ds_.labels);
  // The generated twins are similar; a reasonable rule should find some.
  EXPECT_GT(m.true_positives, 0u);
  EXPECT_GT(m.precision, 0.3);
}

TEST_F(DebugSessionTest, IncrementalEditsMatchOracle) {
  auto session = MakeSession();
  auto r1 = session->AddRuleText("jaccard(title, title) >= 0.7");
  ASSERT_TRUE(r1.ok());
  session->Run();

  // Add a rule after the first run (incremental path).
  auto r2 =
      session->AddRuleText("exact_match(modelno, modelno) >= 1");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(session->Run(), Oracle(*session));

  // Tighten the first rule's threshold.
  const Rule* rule = session->function().RuleById(*r1);
  ASSERT_NE(rule, nullptr);
  const PredicateId pid = rule->predicate(0).id;
  ASSERT_TRUE(session->SetThreshold(*r1, pid, 0.85).ok());
  EXPECT_EQ(session->Run(), Oracle(*session));

  // Remove the second rule.
  ASSERT_TRUE(session->RemoveRule(*r2).ok());
  EXPECT_EQ(session->Run(), Oracle(*session));
}

TEST_F(DebugSessionTest, EditsBeforeRunAreFree) {
  auto session = MakeSession();
  auto rid = session->AddRuleText("jaccard(title, title) >= 0.5");
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(session->RemoveRule(*rid).ok());
  EXPECT_EQ(session->function().num_rules(), 0u);
  EXPECT_EQ(session->Run().Count(), 0u);
}

TEST_F(DebugSessionTest, NonIncrementalModeAgrees) {
  DebugSession::Options options;
  options.incremental = false;
  auto batch = MakeSession(options);
  auto inc = MakeSession();
  for (const char* rule :
       {"jaccard(title, title) >= 0.6",
        "exact_match(modelno, modelno) >= 1 AND trigram(title, title) >= "
        "0.3"}) {
    ASSERT_TRUE(batch->AddRuleText(rule).ok());
    ASSERT_TRUE(inc->AddRuleText(rule).ok());
  }
  EXPECT_EQ(batch->Run(), inc->Run());
  // Post-run edit in both modes.
  auto extra = batch->AddRuleText("jaro_winkler(brand, brand) >= 0.95");
  ASSERT_TRUE(extra.ok());
  auto extra2 = inc->AddRuleText("jaro_winkler(brand, brand) >= 0.95");
  ASSERT_TRUE(extra2.ok());
  EXPECT_EQ(batch->Run(), inc->Run());
}

TEST_F(DebugSessionTest, OrderingStrategiesAgreeOnResults) {
  for (const OrderingStrategy s :
       {OrderingStrategy::kAsWritten, OrderingStrategy::kRandom,
        OrderingStrategy::kIndependent, OrderingStrategy::kGreedyCost,
        OrderingStrategy::kGreedyReduction}) {
    DebugSession::Options options;
    options.ordering = s;
    auto session = MakeSession(options);
    ASSERT_TRUE(session
                    ->AddRuleText(
                        "jaccard(title, title) >= 0.6 AND "
                        "exact_match(category, category) >= 1")
                    .ok());
    ASSERT_TRUE(
        session->AddRuleText("exact_match(modelno, modelno) >= 1").ok());
    EXPECT_EQ(session->Run(), Oracle(*session))
        << OrderingStrategyName(s);
  }
}

TEST_F(DebugSessionTest, StatsAccumulate) {
  auto session = MakeSession();
  ASSERT_TRUE(session->AddRuleText("jaccard(title, title) >= 0.6").ok());
  session->Run();
  const size_t after_first = session->total_stats().feature_computations;
  EXPECT_GT(after_first, 0u);
  ASSERT_TRUE(
      session->AddRuleText("exact_match(modelno, modelno) >= 1").ok());
  EXPECT_GE(session->total_stats().feature_computations, after_first);
}

TEST_F(DebugSessionTest, RuleActivityReport) {
  auto session = MakeSession();
  EXPECT_NE(session->RuleActivityReport().find("no run yet"),
            std::string::npos);
  auto rid = session->AddRuleText(
      "hot: exact_match(category, category) >= 1");
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE(
      session->AddRuleText("cold: jaccard(title, title) >= 0.999").ok());
  session->Run();
  const std::string report = session->RuleActivityReport();
  EXPECT_NE(report.find("hot"), std::string::npos);
  EXPECT_NE(report.find("cold"), std::string::npos);
  EXPECT_NE(report.find("exact_match(category, category)"),
            std::string::npos);
}

TEST_F(DebugSessionTest, MemoryReportMentionsMemo) {
  auto session = MakeSession();
  ASSERT_TRUE(session->AddRuleText("jaccard(title, title) >= 0.6").ok());
  session->Run();
  EXPECT_NE(session->MemoryReport().find("memo:"), std::string::npos);
}

TEST_F(DebugSessionTest, ReoptimizePreservesSemantics) {
  auto session = MakeSession();
  ASSERT_TRUE(session->AddRuleText("jaccard(title, title) >= 0.6").ok());
  ASSERT_TRUE(
      session->AddRuleText("exact_match(modelno, modelno) >= 1").ok());
  const Bitmap before = session->Run();
  session->Reoptimize();
  EXPECT_EQ(session->Run(), before);
  EXPECT_NE(session->cost_model(), nullptr);
}

TEST_F(DebugSessionTest, UndoRevertsLastEdit) {
  auto session = MakeSession();
  ASSERT_TRUE(session->AddRuleText("jaccard(title, title) >= 0.6").ok());
  session->Run();
  const Bitmap before = session->Run();
  auto extra =
      session->AddRuleText("exact_match(modelno, modelno) >= 1");
  ASSERT_TRUE(extra.ok());
  EXPECT_FALSE(session->Run() == before);
  ASSERT_TRUE(session->Undo().ok());
  EXPECT_EQ(session->Run(), before);
  EXPECT_EQ(session->function().num_rules(), 1u);
}

TEST_F(DebugSessionTest, UndoBeforeRunIsError) {
  auto session = MakeSession();
  EXPECT_EQ(session->Undo().code(), StatusCode::kFailedPrecondition);
}

TEST_F(DebugSessionTest, UndoPastHistoryIsError) {
  auto session = MakeSession();
  ASSERT_TRUE(session->AddRuleText("jaccard(title, title) >= 0.6").ok());
  session->Run();
  EXPECT_EQ(session->Undo().code(), StatusCode::kFailedPrecondition);
}

TEST_F(DebugSessionTest, HistoryListsPostRunEdits) {
  auto session = MakeSession();
  ASSERT_TRUE(session->AddRuleText("jaccard(title, title) >= 0.6").ok());
  session->Run();
  EXPECT_TRUE(session->History().empty());
  ASSERT_TRUE(
      session->AddRuleText("exact_match(modelno, modelno) >= 1").ok());
  EXPECT_NE(session->History().find("add rule"), std::string::npos);
}

TEST_F(DebugSessionTest, ExplainAndWhyNotPassthroughs) {
  auto session = MakeSession();
  auto rid = session->AddRuleText("r: jaccard(title, title) >= 0.99");
  ASSERT_TRUE(rid.ok());
  const Bitmap& matches = session->Run();
  // Find an unmatched true pair and interrogate it.
  for (size_t i = 0; i < session->candidates().size(); ++i) {
    if (!ds_.labels.Get(i) || matches.Get(i)) continue;
    const PairId pair = session->candidates().pair(i);
    const MatchExplanation ex = session->Explain(pair);
    EXPECT_FALSE(ex.matched);
    const auto misses = session->WhyNot(pair);
    ASSERT_FALSE(misses.empty());
    EXPECT_EQ(misses[0].rule_id, *rid);
    return;
  }
  GTEST_SKIP() << "no unmatched true pair in this dataset seed";
}

TEST_F(DebugSessionTest, SuspendAndResumeSession) {
  const std::string prefix = ::testing::TempDir() + "/emdbg_session_sr";
  Bitmap saved_matches;
  {
    auto session = MakeSession();
    ASSERT_TRUE(session->AddRuleText("jaccard(title, title) >= 0.6").ok());
    ASSERT_TRUE(
        session->AddRuleText("exact_match(modelno, modelno) >= 1").ok());
    saved_matches = session->Run();
    ASSERT_TRUE(session->SaveSession(prefix).ok());
  }
  {
    auto session = MakeSession();
    ASSERT_TRUE(session->ResumeSession(prefix).ok());
    EXPECT_TRUE(session->has_run());
    EXPECT_EQ(session->Run(), saved_matches);
    EXPECT_EQ(session->function().num_rules(), 2u);
    // Continue editing incrementally and stay oracle-consistent.
    ASSERT_TRUE(
        session->AddRuleText("jaro_winkler(brand, brand) >= 0.97").ok());
    EXPECT_EQ(session->Run(), Oracle(*session));
  }
  std::remove((prefix + ".rules").c_str());
  std::remove((prefix + ".state").c_str());
}

TEST_F(DebugSessionTest, SaveBeforeRunIsError) {
  auto session = MakeSession();
  EXPECT_EQ(session->SaveSession("/tmp/whatever").code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DebugSessionTest, ResumeAfterRunIsError) {
  auto session = MakeSession();
  ASSERT_TRUE(session->AddRuleText("jaccard(title, title) >= 0.6").ok());
  session->Run();
  EXPECT_EQ(session->ResumeSession("/tmp/whatever").code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DebugSessionTest, ResumeMissingFilesIsIoError) {
  auto session = MakeSession();
  EXPECT_EQ(session->ResumeSession("/no/such/prefix").code(),
            StatusCode::kIoError);
}

TEST_F(DebugSessionTest, CostModelAvailableAfterRun) {
  auto session = MakeSession();
  ASSERT_TRUE(session->AddRuleText("jaccard(title, title) >= 0.6").ok());
  EXPECT_EQ(session->cost_model(), nullptr);
  session->Run();
  EXPECT_NE(session->cost_model(), nullptr);
}

TEST_F(DebugSessionTest, MultiThreadedSessionMatchesSerial) {
  // The same debugging script driven through a serial session and a
  // pooled one (both incremental and batch mode) must produce identical
  // matches at every step.
  const char* kRules[] = {
      "r1: exact_match(modelno, modelno) >= 1 AND "
      "jaccard(title, title) >= 0.4",
      "r2: jaccard(title, title) >= 0.55 AND "
      "exact_match(category, category) >= 1",
      "r3: levenshtein(brand, brand) >= 0.8 AND "
      "numeric(price, price) >= 0.9",
  };
  for (const bool incremental : {true, false}) {
    auto serial = MakeSession(
        DebugSession::Options{.incremental = incremental, .num_threads = 1});
    auto pooled = MakeSession(
        DebugSession::Options{.incremental = incremental, .num_threads = 4});
    EXPECT_EQ(serial->pool(), nullptr);
    ASSERT_NE(pooled->pool(), nullptr);
    EXPECT_EQ(pooled->pool()->num_workers(), 4u);

    ASSERT_TRUE(serial->AddRuleText(kRules[0]).ok());
    ASSERT_TRUE(pooled->AddRuleText(kRules[0]).ok());
    EXPECT_EQ(serial->Run(), pooled->Run()) << "incremental="
                                            << incremental;

    // Post-run edits: the pooled session re-matches affected pairs on
    // its worker pool; results must stay identical.
    for (const char* rule : {kRules[1], kRules[2]}) {
      auto rs = serial->AddRuleText(rule);
      auto rp = pooled->AddRuleText(rule);
      ASSERT_TRUE(rs.ok());
      ASSERT_TRUE(rp.ok());
      EXPECT_EQ(serial->Run(), pooled->Run());
    }
    const RuleId last_serial = serial->function().rules().back().id();
    const RuleId last_pooled = pooled->function().rules().back().id();
    ASSERT_TRUE(serial->RemoveRule(last_serial).ok());
    ASSERT_TRUE(pooled->RemoveRule(last_pooled).ok());
    EXPECT_EQ(serial->Run(), pooled->Run());
    EXPECT_EQ(serial->Run(), Oracle(*serial));
  }
}

}  // namespace
}  // namespace emdbg
