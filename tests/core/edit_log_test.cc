#include "src/core/edit_log.h"

#include <memory>

#include <gtest/gtest.h>

#include "src/core/memo_matcher.h"
#include "src/core/rule_generator.h"
#include "src/core/sampler.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

class EditLogTest : public ::testing::Test {
 protected:
  EditLogTest() : ds_(testing::SmallProducts()) {
    catalog_ = FeatureCatalog(ds_.a.schema(), ds_.b.schema());
    catalog_.InternAllSameAttribute();
    ctx_ = std::make_unique<PairContext>(ds_.a, ds_.b, catalog_);
    Rng rng(1);
    sample_ = SamplePairs(ds_.candidates, 0.2, rng);
    RuleGeneratorConfig config;
    config.num_rules = 5;
    config.min_predicates = 2;
    config.max_predicates = 4;
    config.seed = 55;
    gen_ = std::make_unique<RuleGenerator>(*ctx_, sample_, config);
    inc_ = std::make_unique<IncrementalMatcher>(*ctx_, ds_.candidates);
    inc_->FullRun(gen_->Generate());
    baseline_ = inc_->matches();
  }

  Bitmap Oracle() {
    MemoMatcher matcher;
    return matcher.Run(inc_->function(), ds_.candidates, *ctx_).matches;
  }

  GeneratedDataset ds_;
  FeatureCatalog catalog_;
  std::unique_ptr<PairContext> ctx_;
  CandidateSet sample_;
  std::unique_ptr<RuleGenerator> gen_;
  std::unique_ptr<IncrementalMatcher> inc_;
  Bitmap baseline_;
};

TEST_F(EditLogTest, UndoEmptyIsError) {
  EditLog log;
  EXPECT_EQ(log.Undo(*inc_).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(EditLogTest, UndoAddRule) {
  EditLog log;
  Rng rng(2);
  ASSERT_TRUE(log.AddRule(*inc_, gen_->GenerateRule(rng)).ok());
  EXPECT_EQ(log.size(), 1u);
  ASSERT_TRUE(log.Undo(*inc_).ok());
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(inc_->matches(), baseline_);
  EXPECT_EQ(inc_->matches(), Oracle());
}

TEST_F(EditLogTest, UndoRemoveRuleRestoresMatches) {
  EditLog log;
  const RuleId rid = inc_->function().rule(0).id();
  ASSERT_TRUE(log.RemoveRule(*inc_, rid).ok());
  ASSERT_TRUE(log.Undo(*inc_).ok());
  EXPECT_EQ(inc_->matches(), baseline_);
  EXPECT_EQ(inc_->function().num_rules(), 5u);
}

TEST_F(EditLogTest, UndoThresholdChange) {
  EditLog log;
  const Rule& rule = inc_->function().rule(0);
  const Predicate p = rule.predicate(0);
  ASSERT_TRUE(log.SetThreshold(*inc_, rule.id(), p.id, 0.99).ok());
  ASSERT_TRUE(log.Undo(*inc_).ok());
  EXPECT_EQ(inc_->matches(), baseline_);
  EXPECT_DOUBLE_EQ(
      inc_->function().RuleById(rule.id())->predicate(0).threshold,
      p.threshold);
}

TEST_F(EditLogTest, UndoPredicateAddRemove) {
  EditLog log;
  Rng rng(3);
  const RuleId rid = inc_->function().rule(1).id();
  const Rule donor = gen_->GenerateRule(rng);
  ASSERT_TRUE(log.AddPredicate(*inc_, rid, donor.predicate(0)).ok());
  ASSERT_TRUE(log.Undo(*inc_).ok());
  EXPECT_EQ(inc_->matches(), baseline_);

  const PredicateId pid = inc_->function().RuleById(rid)->predicate(0).id;
  ASSERT_TRUE(log.RemovePredicate(*inc_, rid, pid).ok());
  ASSERT_TRUE(log.Undo(*inc_).ok());
  EXPECT_EQ(inc_->matches(), baseline_);
}

TEST_F(EditLogTest, IdRemappingAfterUndoneRemoval) {
  EditLog log;
  const RuleId rid = inc_->function().rule(2).id();
  // Remove the rule, undo (rule returns with a NEW id), then edit through
  // the OLD id: the log must remap transparently.
  ASSERT_TRUE(log.RemoveRule(*inc_, rid).ok());
  ASSERT_TRUE(log.Undo(*inc_).ok());
  EXPECT_EQ(inc_->function().RuleById(rid), nullptr);  // old id is gone
  ASSERT_TRUE(log.RemoveRule(*inc_, rid).ok());        // remapped
  ASSERT_TRUE(log.Undo(*inc_).ok());
  EXPECT_EQ(inc_->matches(), baseline_);
}

TEST_F(EditLogTest, LifoUndoOfMixedSequence) {
  EditLog log;
  Rng rng(4);
  // Apply a mixed sequence, then undo everything; matches must return to
  // baseline and stay oracle-consistent the whole way.
  ASSERT_TRUE(log.AddRule(*inc_, gen_->GenerateRule(rng)).ok());
  const Rule& rule = inc_->function().rule(0);
  ASSERT_TRUE(
      log.SetThreshold(*inc_, rule.id(), rule.predicate(0).id, 0.9).ok());
  const RuleId removed = inc_->function().rule(1).id();
  ASSERT_TRUE(log.RemoveRule(*inc_, removed).ok());
  const Rule donor = gen_->GenerateRule(rng);
  ASSERT_TRUE(
      log.AddPredicate(*inc_, inc_->function().rule(0).id(),
                       donor.predicate(0))
          .ok());
  EXPECT_EQ(log.size(), 4u);
  while (!log.empty()) {
    ASSERT_TRUE(log.Undo(*inc_).ok());
    EXPECT_EQ(inc_->matches(), Oracle());
  }
  EXPECT_EQ(inc_->matches(), baseline_);
  EXPECT_EQ(inc_->function().num_rules(), 5u);
}

TEST_F(EditLogTest, DescribeListsEdits) {
  EditLog log;
  Rng rng(5);
  ASSERT_TRUE(log.AddRule(*inc_, gen_->GenerateRule(rng)).ok());
  const Rule& rule = inc_->function().rule(0);
  ASSERT_TRUE(
      log.SetThreshold(*inc_, rule.id(), rule.predicate(0).id, 0.8).ok());
  const std::string text = log.Describe(catalog_);
  EXPECT_NE(text.find("add rule"), std::string::npos);
  EXPECT_NE(text.find("set threshold"), std::string::npos);
}

TEST_F(EditLogTest, FailedEditNotRecorded) {
  EditLog log;
  EXPECT_FALSE(log.RemoveRule(*inc_, 9999).ok());
  EXPECT_TRUE(log.empty());
}

}  // namespace
}  // namespace emdbg
