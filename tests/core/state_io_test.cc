#include "src/core/state_io.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include <gtest/gtest.h>

#include "src/core/incremental.h"
#include "src/core/memo_matcher.h"
#include "src/core/rule_generator.h"
#include "src/core/rule_parser.h"
#include "src/core/sampler.h"
#include "src/util/crc32c.h"
#include "src/util/csv.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

class StateIoTest : public ::testing::Test {
 protected:
  StateIoTest()
      : ds_(testing::SmallProducts()),
        // Per-test path: ctest runs suite members as parallel processes.
        path_(::testing::TempDir() + "/emdbg_state_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name() +
              ".bin") {
    catalog_ = FeatureCatalog(ds_.a.schema(), ds_.b.schema());
    catalog_.InternAllSameAttribute();
    ctx_ = std::make_unique<PairContext>(ds_.a, ds_.b, catalog_);
  }

  ~StateIoTest() override { std::remove(path_.c_str()); }

  MatchingFunction SomeRules() {
    Rng rng(1);
    const CandidateSet sample = SamplePairs(ds_.candidates, 0.2, rng);
    RuleGeneratorConfig config;
    config.num_rules = 4;
    config.seed = 77;
    RuleGenerator gen(*ctx_, sample, config);
    return gen.Generate();
  }

  GeneratedDataset ds_;
  FeatureCatalog catalog_;
  std::unique_ptr<PairContext> ctx_;
  std::string path_;
};

TEST_F(StateIoTest, RoundTripPreservesEverything) {
  const MatchingFunction fn = SomeRules();
  MemoMatcher matcher;
  MatchState state;
  matcher.RunWithState(fn, ds_.candidates, *ctx_, state);

  ASSERT_TRUE(SaveMatchState(state, path_).ok());
  auto loaded = LoadMatchState(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->num_pairs(), state.num_pairs());
  EXPECT_EQ(loaded->matches(), state.matches());
  EXPECT_EQ(loaded->memo().FilledCount(), state.memo().FilledCount());
  EXPECT_EQ(loaded->memo().raw_values().size(),
            state.memo().raw_values().size());
  for (const RuleId rid : state.RuleIdsWithState()) {
    ASSERT_NE(loaded->FindRuleTrue(rid), nullptr);
    EXPECT_EQ(*loaded->FindRuleTrue(rid), *state.FindRuleTrue(rid));
  }
  for (const PredicateId pid : state.PredicateIdsWithState()) {
    ASSERT_NE(loaded->FindPredFalse(pid), nullptr);
    EXPECT_EQ(*loaded->FindPredFalse(pid), *state.FindPredFalse(pid));
  }
}

TEST_F(StateIoTest, ResumedSessionContinuesIncrementally) {
  // Session 1: run, save rules + state.
  const std::string rules_path = path_ + ".rules";
  MatchingFunction fn = SomeRules();
  IncrementalMatcher first(*ctx_, ds_.candidates);
  first.FullRun(fn);
  ASSERT_TRUE(SaveMatchState(first.state(), path_).ok());
  ASSERT_TRUE(SaveRulesFile(first.function(), catalog_, rules_path).ok());

  // Session 2: fresh catalog/context/matcher, resume from disk.
  FeatureCatalog catalog2(ds_.a.schema(), ds_.b.schema());
  catalog2.InternAllSameAttribute();
  PairContext ctx2(ds_.a, ds_.b, catalog2);
  auto rules2 = LoadRulesFile(rules_path, catalog2);
  ASSERT_TRUE(rules2.ok());
  auto state2 = LoadMatchState(path_);
  ASSERT_TRUE(state2.ok());

  IncrementalMatcher resumed(ctx2, ds_.candidates);
  ASSERT_TRUE(resumed.Resume(*rules2, std::move(*state2)).ok());
  EXPECT_EQ(resumed.matches(), first.matches());

  // No recomputation needed to continue: an edit touches only deltas.
  ctx2.ResetComputeCount();
  const Rule& rule = resumed.function().rule(0);
  const Predicate& p = rule.predicate(0);
  const double t =
      IsLowerBound(p.op) ? p.threshold + 0.05 : p.threshold - 0.05;
  ASSERT_TRUE(resumed.SetThreshold(rule.id(), p.id, t).ok());

  // Oracle check after the post-resume edit.
  MemoMatcher oracle;
  EXPECT_EQ(resumed.matches(),
            oracle.Run(resumed.function(), ds_.candidates, ctx2).matches);
  std::remove(rules_path.c_str());
}

TEST_F(StateIoTest, ResumeRejectsWrongPairCount) {
  MatchingFunction fn = SomeRules();
  MatchState state;
  state.Initialize(10, catalog_.size());  // wrong size
  IncrementalMatcher inc(*ctx_, ds_.candidates);
  EXPECT_EQ(inc.Resume(fn, std::move(state)).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(StateIoTest, SaveUninitializedStateRejected) {
  MatchState empty;
  EXPECT_EQ(SaveMatchState(empty, path_).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(StateIoTest, LoadRejectsGarbage) {
  ASSERT_TRUE(WriteStringToFile(path_, "not a state file").ok());
  EXPECT_EQ(LoadMatchState(path_).status().code(),
            StatusCode::kParseError);
}

TEST_F(StateIoTest, LoadRejectsTruncatedFile) {
  const MatchingFunction fn = SomeRules();
  MemoMatcher matcher;
  MatchState state;
  matcher.RunWithState(fn, ds_.candidates, *ctx_, state);
  ASSERT_TRUE(SaveMatchState(state, path_).ok());
  auto full = ReadFileToString(path_);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(
      WriteStringToFile(path_, full->substr(0, full->size() / 2)).ok());
  EXPECT_EQ(LoadMatchState(path_).status().code(),
            StatusCode::kParseError);
}

TEST_F(StateIoTest, LoadMissingFileIsIoError) {
  EXPECT_EQ(LoadMatchState("/no/such/state.bin").status().code(),
            StatusCode::kIoError);
}

TEST_F(StateIoTest, BitFlipsAnywhereAreDetected) {
  const MatchingFunction fn = SomeRules();
  MemoMatcher matcher;
  MatchState state;
  matcher.RunWithState(fn, ds_.candidates, *ctx_, state);
  ASSERT_TRUE(SaveMatchState(state, path_).ok());
  auto clean = ReadFileToString(path_);
  ASSERT_TRUE(clean.ok());

  // Flip one bit at positions spread across every section of the file
  // (magic, header, memo, bitmaps, trailing checksums); each corruption
  // must surface as ParseError, never as a bad load or a crash.
  for (size_t step = 0; step < 32; ++step) {
    const size_t byte = (clean->size() - 1) * step / 31;
    std::string corrupt = *clean;
    corrupt[byte] ^= 0x04;
    ASSERT_TRUE(WriteStringToFile(path_, corrupt).ok());
    const auto loaded = LoadMatchState(path_);
    ASSERT_FALSE(loaded.ok()) << "undetected flip at byte " << byte;
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError)
        << "byte " << byte << ": " << loaded.status();
  }
}

TEST_F(StateIoTest, TruncationAtEveryBoundaryIsParseError) {
  const MatchingFunction fn = SomeRules();
  MemoMatcher matcher;
  MatchState state;
  matcher.RunWithState(fn, ds_.candidates, *ctx_, state);
  ASSERT_TRUE(SaveMatchState(state, path_).ok());
  auto full = ReadFileToString(path_);
  ASSERT_TRUE(full.ok());

  for (const size_t keep :
       {size_t{0}, size_t{4}, size_t{8}, size_t{12}, size_t{16},
        size_t{24}, full->size() / 4, full->size() - 4,
        full->size() - 1}) {
    ASSERT_TRUE(WriteStringToFile(path_, full->substr(0, keep)).ok());
    const auto loaded = LoadMatchState(path_);
    ASSERT_FALSE(loaded.ok()) << "accepted truncation to " << keep;
    EXPECT_EQ(loaded.status().code(), StatusCode::kParseError)
        << "truncated to " << keep << " bytes";
  }
}

TEST_F(StateIoTest, OversizedHeaderRejectedBeforeAllocation) {
  // A hand-crafted v2 file whose header claims ~10^24 memo bytes — with a
  // *valid* header checksum, so only the dimension validation stands
  // between the parser and a gargantuan allocation. The payload sections
  // are absent; the load must fail from the size check alone.
  std::string file("EMDBGST2", 8);
  std::string header;
  const uint64_t num_pairs = 1ull << 40;
  const uint64_t num_features = 1ull << 40;
  header.append(reinterpret_cast<const char*>(&num_pairs), 8);
  header.append(reinterpret_cast<const char*>(&num_features), 8);
  const uint32_t crc = Crc32c(header);
  header.append(reinterpret_cast<const char*>(&crc), 4);
  file += header;
  ASSERT_TRUE(WriteStringToFile(path_, file).ok());

  const auto loaded = LoadMatchState(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);

  // Same again with dimensions whose product overflows 64 bits.
  std::string file2("EMDBGST2", 8);
  std::string header2;
  const uint64_t huge = ~0ull;
  header2.append(reinterpret_cast<const char*>(&huge), 8);
  header2.append(reinterpret_cast<const char*>(&huge), 8);
  const uint32_t crc2 = Crc32c(header2);
  header2.append(reinterpret_cast<const char*>(&crc2), 4);
  file2 += header2;
  ASSERT_TRUE(WriteStringToFile(path_, file2).ok());
  EXPECT_EQ(LoadMatchState(path_).status().code(),
            StatusCode::kParseError);
}

TEST_F(StateIoTest, CorruptSectionCountRejectedBeforeLoop) {
  // Grow the rule-bitmap count field to an absurd value; the loader must
  // reject it against the remaining file size before looping.
  const MatchingFunction fn = SomeRules();
  MemoMatcher matcher;
  MatchState state;
  matcher.RunWithState(fn, ds_.candidates, *ctx_, state);
  ASSERT_TRUE(SaveMatchState(state, path_).ok());
  auto bytes = ReadFileToString(path_);
  ASSERT_TRUE(bytes.ok());
  // The rule-count u64 sits right after magic + header(+crc) + memo(+crc)
  // + matches bitmap(+crc).
  const size_t num_pairs = state.num_pairs();
  const size_t memo_bytes = num_pairs * state.memo().num_features() * 4;
  const size_t match_bytes = ((num_pairs + 63) / 64) * 8;
  const size_t count_pos = 8 + (16 + 4) + (memo_bytes + 4) +
                           (match_bytes + 4);
  ASSERT_LT(count_pos + 8, bytes->size());
  const uint64_t absurd = 1ull << 60;
  std::memcpy(bytes->data() + count_pos, &absurd, 8);
  ASSERT_TRUE(WriteStringToFile(path_, *bytes).ok());
  const auto loaded = LoadMatchState(path_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace emdbg
