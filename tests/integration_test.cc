/// End-to-end tests of the full debugging workflow the paper describes
/// (Fig. 1): generate a dataset, block, write rules, run, inspect quality,
/// refine incrementally, and converge — exercising every subsystem
/// together.

#include <memory>

#include <gtest/gtest.h>

#include "src/block/key_blocker.h"
#include "src/core/debug_session.h"
#include "src/core/memo_matcher.h"
#include "src/data/datasets.h"
#include "src/data/table_io.h"
#include "src/learn/rule_extraction.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

TEST(IntegrationTest, BlockingThenSessionWorkflow) {
  // Generate a small dataset and block it ourselves with the category key
  // blocker (instead of using the generator's candidate set).
  DatasetProfile profile =
      ScaleProfile(PaperDatasetProfile(DatasetId::kProducts), 0.01);
  const GeneratedDataset ds = GenerateDataset(profile);
  auto blocked = KeyBlocker("category").Block(ds.a, ds.b);
  ASSERT_TRUE(blocked.ok());
  ASSERT_GT(blocked->size(), 0u);

  // Build labels for the blocked pairs from the known ground truth.
  PairLabels labels(blocked->size());
  for (size_t i = 0; i < blocked->size(); ++i) {
    for (const PairId& m : ds.true_matches) {
      if (blocked->pair(i) == m) {
        labels.Set(i);
        break;
      }
    }
  }

  DebugSession session(ds.a, ds.b, *blocked);
  ASSERT_TRUE(session
                  .AddRuleText(
                      "strong: jaccard(title, title) >= 0.55 AND "
                      "trigram(title, title) >= 0.3")
                  .ok());
  const QualityMetrics first = session.Score(labels);
  EXPECT_GT(first.true_positives, 0u);
}

TEST(IntegrationTest, IterativeDebuggingImprovesRecall) {
  const GeneratedDataset ds = testing::SmallProducts();
  DebugSession session(ds.a, ds.b, ds.candidates);

  // Iteration 1: one strict rule -> high precision, limited recall.
  auto r1 = session.AddRuleText(
      "jaccard(title, title) >= 0.8 AND exact_match(modelno, modelno) >= 1");
  ASSERT_TRUE(r1.ok());
  const QualityMetrics m1 = session.Score(ds.labels);

  // Iteration 2 (incremental): add a complementary rule for dirty model
  // numbers.
  auto r2 = session.AddRuleText(
      "trigram(title, title) >= 0.45 AND jaro_winkler(brand, brand) >= 0.9");
  ASSERT_TRUE(r2.ok());
  const QualityMetrics m2 = session.Score(ds.labels);
  EXPECT_GE(m2.recall, m1.recall);

  // Iteration 3 (incremental): relax the first rule's title threshold.
  const Rule* rule = session.function().RuleById(*r1);
  ASSERT_NE(rule, nullptr);
  PredicateId title_pid = kInvalidPredicate;
  for (const Predicate& p : rule->predicates()) {
    const Feature& f = session.catalog().feature(p.feature);
    if (f.fn == SimFunction::kJaccard) title_pid = p.id;
  }
  ASSERT_NE(title_pid, kInvalidPredicate);
  ASSERT_TRUE(session.SetThreshold(*r1, title_pid, 0.5).ok());
  const QualityMetrics m3 = session.Score(ds.labels);
  EXPECT_GE(m3.recall, m2.recall);

  // Sanity: all the while, matches equal a from-scratch evaluation.
  MemoMatcher matcher;
  PairContext fresh(session.context().table_a(), session.context().table_b(),
                    session.catalog());
  EXPECT_EQ(session.Run(),
            matcher.Run(session.function(), session.candidates(), fresh)
                .matches);
}

TEST(IntegrationTest, LearnedRulesThroughSession) {
  // Learn rules from labels (as the paper did with its random forest),
  // load them into a session, and debug one of them.
  const GeneratedDataset ds = testing::SmallProducts(1234);
  FeatureCatalog catalog(ds.a.schema(), ds.b.schema());
  std::vector<FeatureId> feats;
  for (const char* attr : {"title", "modelno"}) {
    feats.push_back(
        *catalog.InternByName(SimFunction::kJaccard, attr, attr));
    feats.push_back(*catalog.InternByName(SimFunction::kJaro, attr, attr));
  }
  PairContext ctx(ds.a, ds.b, catalog);
  const FeatureMatrix matrix = BuildFeatureMatrix(ctx, ds.candidates, feats);
  std::vector<char> labels(ds.candidates.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = ds.labels.Get(i) ? 1 : 0;
  }
  ForestConfig config;
  config.num_trees = 8;
  config.seed = 5;
  const RandomForest forest = RandomForest::Train(matrix, labels, config);
  const std::vector<Rule> rules =
      ExtractRules(forest, feats, RuleExtractionConfig{});
  ASSERT_FALSE(rules.empty());

  DebugSession session(ds.a, ds.b, ds.candidates);
  // Transfer learned rules: rebuild each predicate against the session's
  // own catalog (same schemas, so feature ids transfer via names).
  for (const Rule& learned : rules) {
    Rule copy;
    for (const Predicate& p : learned.predicates()) {
      const Feature& f = catalog.feature(p.feature);
      Predicate q = p;
      q.feature = session.catalog().Intern(f);
      copy.AddPredicate(q);
    }
    ASSERT_TRUE(session.AddRule(copy).ok());
  }
  const QualityMetrics m = session.Score(ds.labels);
  EXPECT_GT(m.f1, 0.5);
  // Remove the last rule incrementally; quality should not crash to zero.
  const RuleId last =
      session.function().rule(session.function().num_rules() - 1).id();
  ASSERT_TRUE(session.RemoveRule(last).ok());
  session.Run();
}

TEST(IntegrationTest, CsvRoundTripThroughSession) {
  // Persist generated tables to CSV, reload, and verify matching results
  // are identical — exercising the IO path end to end.
  const GeneratedDataset ds = testing::SmallProducts(777);
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(SaveTableCsv(ds.a, dir + "/emdbg_a.csv").ok());
  ASSERT_TRUE(SaveTableCsv(ds.b, dir + "/emdbg_b.csv").ok());
  auto a2 = LoadTableCsv(dir + "/emdbg_a.csv");
  auto b2 = LoadTableCsv(dir + "/emdbg_b.csv");
  ASSERT_TRUE(a2.ok());
  ASSERT_TRUE(b2.ok());
  ASSERT_EQ(a2->num_rows(), ds.a.num_rows());

  const char* rule_text =
      "jaccard(title, title) >= 0.6 AND exact_match(category, category) >= "
      "1";
  DebugSession orig(ds.a, ds.b, ds.candidates);
  ASSERT_TRUE(orig.AddRuleText(rule_text).ok());
  DebugSession reloaded(*a2, *b2, ds.candidates);
  ASSERT_TRUE(reloaded.AddRuleText(rule_text).ok());
  EXPECT_EQ(orig.Run(), reloaded.Run());
}

}  // namespace
}  // namespace emdbg
