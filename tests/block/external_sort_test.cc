/// Differential suite for the out-of-core blocking layer: the external
/// pair/entry sorters and the external blockers must emit *identical*
/// sequences to their in-memory counterparts — same pairs, same order —
/// whether they stay in RAM or spill runs to disk, because downstream
/// bitmap indexing is positional.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/block/external_blocker.h"
#include "src/block/external_sort.h"
#include "src/block/key_blocker.h"
#include "src/block/sorted_neighborhood.h"
#include "src/util/fault_injection.h"
#include "src/util/memory_budget.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

class ExternalSortTest : public ::testing::Test {
 protected:
  ExternalSortTest() { FaultInjection::DisarmAll(); }
  ~ExternalSortTest() override { FaultInjection::DisarmAll(); }

  ExternalSortOptions Opts(const std::string& prefix) {
    ExternalSortOptions o;
    o.spill_dir = ::testing::TempDir();
    o.file_prefix = "extsort_" + prefix;
    return o;
  }

  /// Random pairs with plenty of duplicates (small id space).
  std::vector<PairId> RandomPairs(size_t n, uint64_t seed) {
    Rng rng(seed);
    std::vector<PairId> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out.push_back(PairId{static_cast<uint32_t>(rng.Uniform(200)),
                           static_cast<uint32_t>(rng.Uniform(300))});
    }
    return out;
  }
};

TEST_F(ExternalSortTest, InMemoryPathMatchesSortAndDedup) {
  const std::vector<PairId> input = RandomPairs(5000, 7);
  CandidateSet expected;
  for (PairId p : input) expected.Add(p);
  expected.SortAndDedup();

  ExternalPairSorter sorter(Opts("mem"));
  for (PairId p : input) ASSERT_TRUE(sorter.Add(p).ok());
  ASSERT_TRUE(sorter.Finish().ok());
  EXPECT_EQ(sorter.num_runs(), 0u) << "5000 pairs should fit in RAM";
  auto drained = sorter.Drain();
  ASSERT_TRUE(drained.ok());
  ASSERT_EQ(drained->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(drained->pair(i), expected.pair(i)) << "at " << i;
  }
}

TEST_F(ExternalSortTest, SpillingPathIsBitIdenticalToInMemory) {
  const std::vector<PairId> input = RandomPairs(60000, 11);
  CandidateSet expected;
  for (PairId p : input) expected.Add(p);
  expected.SortAndDedup();

  // A budget small enough to force the run buffer to its floor (8192
  // pairs), so ~60k pairs split into several spilled runs with heavy
  // cross-run duplication.
  MemoryBudget budget(160u << 10, "sort-test");
  ExternalSortOptions opts = Opts("spill");
  opts.budget = &budget;
  ExternalPairSorter sorter(opts);
  for (PairId p : input) ASSERT_TRUE(sorter.Add(p).ok());
  ASSERT_TRUE(sorter.Finish().ok());
  EXPECT_GT(sorter.num_runs(), 1u) << "test did not exercise spilling";
  EXPECT_GT(sorter.spilled_bytes(), 0u);

  auto drained = sorter.Drain();
  ASSERT_TRUE(drained.ok()) << drained.status().ToString();
  ASSERT_EQ(drained->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(drained->pair(i), expected.pair(i)) << "at " << i;
  }
  EXPECT_EQ(budget.used(), 0u) << "sorter billing leaked";
}

TEST_F(ExternalSortTest, NextBatchStreamsTheSameSequence) {
  const std::vector<PairId> input = RandomPairs(20000, 13);
  CandidateSet expected;
  for (PairId p : input) expected.Add(p);
  expected.SortAndDedup();

  MemoryBudget budget(160u << 10, "sort-test");
  ExternalSortOptions opts = Opts("batch");
  opts.budget = &budget;
  ExternalPairSorter sorter(opts);
  for (PairId p : input) ASSERT_TRUE(sorter.Add(p).ok());
  ASSERT_TRUE(sorter.Finish().ok());

  std::vector<PairId> streamed;
  while (!sorter.AtEnd()) {
    auto n = sorter.NextBatch(777, &streamed);
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
  }
  ASSERT_EQ(streamed.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(streamed[i], expected.pair(i)) << "at " << i;
  }
}

TEST_F(ExternalSortTest, EntrySorterReproducesStableSortByKey) {
  // Entries with heavily colliding keys: (key, seq) order must equal a
  // stable_sort by key of the generation sequence.
  Rng rng(17);
  struct Flat {
    std::string key;
    uint32_t row;
    bool from_b;
  };
  std::vector<Flat> input;
  for (uint32_t i = 0; i < 30000; ++i) {
    input.push_back(Flat{"k" + std::to_string(rng.Uniform(100)), i,
                         rng.Uniform(2) == 1});
  }
  std::vector<Flat> expected = input;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Flat& x, const Flat& y) { return x.key < y.key; });

  MemoryBudget budget(256u << 10, "entry-test");
  ExternalSortOptions opts = Opts("entries");
  opts.budget = &budget;
  ExternalEntrySorter sorter(opts);
  for (const Flat& f : input) {
    ASSERT_TRUE(sorter.Add(f.key, f.row, f.from_b).ok());
  }
  ASSERT_TRUE(sorter.Finish().ok());
  EXPECT_GT(sorter.num_runs(), 1u) << "test did not exercise spilling";

  size_t i = 0;
  BlockEntry e;
  while (!sorter.AtEnd()) {
    ASSERT_TRUE(sorter.Next(&e).ok());
    ASSERT_LT(i, expected.size());
    ASSERT_EQ(e.key, expected[i].key) << "at " << i;
    ASSERT_EQ(e.row, expected[i].row) << "at " << i;
    ASSERT_EQ(e.from_b, expected[i].from_b) << "at " << i;
    ++i;
  }
  EXPECT_EQ(i, expected.size());
}

TEST_F(ExternalSortTest, InjectedSpillFaultSurfacesCleanly) {
  MemoryBudget budget(160u << 10, "fault-test");
  ExternalSortOptions opts = Opts("fault");
  opts.budget = &budget;
  ExternalPairSorter sorter(opts);
  FaultInjection::Plan plan;
  plan.every = 1;
  plan.skip = 2;  // let a couple of frames through, then fail
  FaultInjection::Arm("spill.write", plan);
  Status failed = Status::Ok();
  for (PairId p : RandomPairs(60000, 19)) {
    failed = sorter.Add(p);
    if (!failed.ok()) break;
  }
  if (failed.ok()) failed = sorter.Finish();
  FaultInjection::DisarmAll();
  EXPECT_EQ(failed.code(), StatusCode::kIoError)
      << "fault should have fired during run spilling";
}

class ExternalBlockerTest : public ::testing::Test {
 protected:
  ExternalSortOptions Opts(const std::string& prefix) {
    ExternalSortOptions o;
    o.spill_dir = ::testing::TempDir();
    o.file_prefix = "extblock_" + prefix;
    return o;
  }

  static void ExpectSameSet(const CandidateSet& external,
                            const CandidateSet& memory) {
    ASSERT_EQ(external.size(), memory.size());
    for (size_t i = 0; i < memory.size(); ++i) {
      ASSERT_EQ(external.pair(i), memory.pair(i)) << "at " << i;
    }
  }
};

TEST_F(ExternalBlockerTest, KeyBlockerIdenticalOnGeneratedData) {
  const GeneratedDataset ds = testing::SmallProducts(21);
  auto memory = KeyBlocker("category").Block(ds.a, ds.b);
  ASSERT_TRUE(memory.ok());

  ExternalKeyBlocker::Options opts;
  opts.attribute = "category";
  opts.sort = Opts("key");
  // Tiny entry buffers force run spilling even on this small dataset.
  opts.sort.buffer_bytes = 1;
  MemoryBudget budget(256u << 10, "blocker-test");
  opts.sort.budget = &budget;
  auto external = ExternalKeyBlocker(opts).Block(ds.a, ds.b);
  ASSERT_TRUE(external.ok()) << external.status().ToString();
  ExpectSameSet(*external, *memory);
  EXPECT_EQ(budget.used(), 0u);
}

TEST_F(ExternalBlockerTest, KeyBlockerIdenticalOnPeopleTables) {
  const Table a = testing::PeopleTableA();
  const Table b = testing::PeopleTableB();
  auto memory = KeyBlocker("zip").Block(a, b);
  ASSERT_TRUE(memory.ok());

  ExternalKeyBlocker::Options opts;
  opts.attribute = "zip";
  opts.sort = Opts("zip");
  auto external = ExternalKeyBlocker(opts).Block(a, b);
  ASSERT_TRUE(external.ok());
  ExpectSameSet(*external, *memory);
}

TEST_F(ExternalBlockerTest, KeyBlockerRejectsMissingAttribute) {
  const Table a = testing::PeopleTableA();
  const Table b = testing::PeopleTableB();
  ExternalKeyBlocker::Options opts;
  opts.attribute = "no_such_attr";
  opts.sort = Opts("missing");
  EXPECT_FALSE(ExternalKeyBlocker(opts).Block(a, b).ok());
}

TEST_F(ExternalBlockerTest, SortedNeighborhoodIdenticalAcrossWindows) {
  const GeneratedDataset ds = testing::SmallProducts(23);
  for (size_t window : {2u, 5u, 9u}) {
    auto memory =
        SortedNeighborhoodBlocker("title", window).Block(ds.a, ds.b);
    ASSERT_TRUE(memory.ok());

    ExternalSortedNeighborhoodBlocker::Options opts;
    opts.attribute = "title";
    opts.window = window;
    opts.sort = Opts("sn" + std::to_string(window));
    opts.sort.buffer_bytes = 1;  // force spilled entry runs
    MemoryBudget budget(256u << 10, "blocker-test");
    opts.sort.budget = &budget;
    auto external =
        ExternalSortedNeighborhoodBlocker(opts).Block(ds.a, ds.b);
    ASSERT_TRUE(external.ok()) << external.status().ToString();
    ASSERT_EQ(external->size(), memory->size()) << "window " << window;
    for (size_t i = 0; i < memory->size(); ++i) {
      ASSERT_EQ(external->pair(i), memory->pair(i))
          << "window " << window << " at " << i;
    }
  }
}

}  // namespace
}  // namespace emdbg
