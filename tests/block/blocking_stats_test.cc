#include "src/block/blocking_stats.h"

#include <gtest/gtest.h>

namespace emdbg {
namespace {

TEST(BlockingStatsTest, PerfectBlocking) {
  CandidateSet candidates({{0, 0}, {1, 1}});
  const std::vector<PairId> matches{{0, 0}, {1, 1}};
  const BlockingStats s = EvaluateBlocking(candidates, matches, 10, 10);
  EXPECT_EQ(s.matches_retained, 2u);
  EXPECT_DOUBLE_EQ(s.pair_completeness, 1.0);
  EXPECT_DOUBLE_EQ(s.reduction_ratio, 1.0 - 2.0 / 100.0);
}

TEST(BlockingStatsTest, MissedMatchLowersCompleteness) {
  CandidateSet candidates({{0, 0}});
  const std::vector<PairId> matches{{0, 0}, {5, 5}};
  const BlockingStats s = EvaluateBlocking(candidates, matches, 10, 10);
  EXPECT_EQ(s.matches_retained, 1u);
  EXPECT_DOUBLE_EQ(s.pair_completeness, 0.5);
}

TEST(BlockingStatsTest, NoMatchesIsVacuouslyComplete) {
  CandidateSet candidates({{0, 0}});
  const BlockingStats s = EvaluateBlocking(candidates, {}, 4, 4);
  EXPECT_DOUBLE_EQ(s.pair_completeness, 1.0);
}

TEST(BlockingStatsTest, EmptyTablesNoCrash) {
  const BlockingStats s = EvaluateBlocking(CandidateSet(), {}, 0, 0);
  EXPECT_DOUBLE_EQ(s.reduction_ratio, 0.0);
  EXPECT_EQ(s.cross_product, 0u);
}

TEST(BlockingStatsTest, ToStringMentionsMetrics) {
  CandidateSet candidates({{0, 0}});
  const BlockingStats s =
      EvaluateBlocking(candidates, {{0, 0}}, 10, 10);
  const std::string text = s.ToString();
  EXPECT_NE(text.find("reduction"), std::string::npos);
  EXPECT_NE(text.find("completeness"), std::string::npos);
}

}  // namespace
}  // namespace emdbg
