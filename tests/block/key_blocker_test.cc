#include "src/block/key_blocker.h"

#include <gtest/gtest.h>

namespace emdbg {
namespace {

Table MakeTable(const std::string& name,
                const std::vector<Row>& rows) {
  Table t(name, Schema({"id", "category"}));
  for (const Row& r : rows) EXPECT_TRUE(t.AppendRow(r).ok());
  return t;
}

TEST(KeyBlockerTest, PairsWithinSameKey) {
  const Table a = MakeTable("a", {{"a0", "tv"}, {"a1", "phone"}});
  const Table b =
      MakeTable("b", {{"b0", "tv"}, {"b1", "tv"}, {"b2", "camera"}});
  auto pairs = KeyBlocker("category").Block(a, b);
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->size(), 2u);
  EXPECT_EQ(pairs->pair(0), (PairId{0, 0}));
  EXPECT_EQ(pairs->pair(1), (PairId{0, 1}));
}

TEST(KeyBlockerTest, CaseAndWhitespaceInsensitive) {
  const Table a = MakeTable("a", {{"a0", " TV "}});
  const Table b = MakeTable("b", {{"b0", "tv"}});
  auto pairs = KeyBlocker("category").Block(a, b);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->size(), 1u);
}

TEST(KeyBlockerTest, EmptyKeysAreSkipped) {
  const Table a = MakeTable("a", {{"a0", ""}});
  const Table b = MakeTable("b", {{"b0", ""}});
  auto pairs = KeyBlocker("category").Block(a, b);
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(pairs->empty());
}

TEST(KeyBlockerTest, MissingAttributeIsNotFound) {
  const Table a = MakeTable("a", {});
  const Table b = MakeTable("b", {});
  EXPECT_EQ(KeyBlocker("bogus").Block(a, b).status().code(),
            StatusCode::kNotFound);
}

TEST(KeyBlockerTest, NoSharedKeysNoPairs) {
  const Table a = MakeTable("a", {{"a0", "x"}});
  const Table b = MakeTable("b", {{"b0", "y"}});
  auto pairs = KeyBlocker("category").Block(a, b);
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(pairs->empty());
}

}  // namespace
}  // namespace emdbg
