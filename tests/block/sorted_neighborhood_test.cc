#include "src/block/sorted_neighborhood.h"

#include <gtest/gtest.h>

namespace emdbg {
namespace {

Table MakeTable(const std::string& name,
                const std::vector<std::string>& names) {
  Table t(name, Schema({"name"}));
  for (const std::string& n : names) {
    EXPECT_TRUE(t.AppendRow({n}).ok());
  }
  return t;
}

TEST(SortedNeighborhoodTest, AdjacentKeysPair) {
  const Table a = MakeTable("a", {"smith john", "zzz far away"});
  const Table b = MakeTable("b", {"smith jon", "aaa other"});
  auto pairs = SortedNeighborhoodBlocker("name", 2).Block(a, b);
  ASSERT_TRUE(pairs.ok());
  // "smith john"/"smith jon" sort adjacently (keys "smithjoh"/"smithjon")
  // and must pair; "zzz..."/"aaa..." are far apart.
  bool found = false;
  for (const PairId& p : pairs->pairs()) {
    if (p == PairId{0, 0}) found = true;
    EXPECT_FALSE(p == (PairId{1, 1}));
  }
  EXPECT_TRUE(found);
}

TEST(SortedNeighborhoodTest, TypoTolerantUnlikeKeyBlocking) {
  // A trailing typo keeps the sort position close.
  const Table a = MakeTable("a", {"walmart store"});
  const Table b = MakeTable("b", {"walmarr store"});
  auto pairs = SortedNeighborhoodBlocker("name", 3).Block(a, b);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->size(), 1u);
}

TEST(SortedNeighborhoodTest, WindowBoundsCandidates) {
  // n records each side with identical key prefixes: window w yields at
  // most (w-1) partners per record.
  std::vector<std::string> names;
  for (int i = 0; i < 10; ++i) names.push_back("same prefix");
  const Table a = MakeTable("a", names);
  const Table b = MakeTable("b", names);
  auto w2 = SortedNeighborhoodBlocker("name", 2).Block(a, b);
  auto w5 = SortedNeighborhoodBlocker("name", 5).Block(a, b);
  ASSERT_TRUE(w2.ok());
  ASSERT_TRUE(w5.ok());
  EXPECT_LT(w2->size(), w5->size());
  // Window 2: each entry pairs with at most its immediate predecessor.
  EXPECT_LE(w2->size(), 19u);
}

TEST(SortedNeighborhoodTest, EmptyKeysSkipped) {
  const Table a = MakeTable("a", {"", "!!"});
  const Table b = MakeTable("b", {"  "});
  auto pairs = SortedNeighborhoodBlocker("name", 4).Block(a, b);
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(pairs->empty());
}

TEST(SortedNeighborhoodTest, MissingAttributeIsNotFound) {
  const Table a = MakeTable("a", {});
  const Table b = MakeTable("b", {});
  EXPECT_EQ(SortedNeighborhoodBlocker("bogus").Block(a, b).status().code(),
            StatusCode::kNotFound);
}

TEST(SortedNeighborhoodTest, MinimumWindowIsTwo) {
  const SortedNeighborhoodBlocker blocker("name", 0);
  EXPECT_EQ(blocker.window(), 2u);
}

TEST(SortedNeighborhoodTest, PairsAlwaysAtoB) {
  const Table a = MakeTable("a", {"alpha", "beta", "gamma"});
  const Table b = MakeTable("b", {"alphb", "betb", "gammb"});
  auto pairs = SortedNeighborhoodBlocker("name", 3).Block(a, b);
  ASSERT_TRUE(pairs.ok());
  for (const PairId& p : pairs->pairs()) {
    EXPECT_LT(p.a, a.num_rows());
    EXPECT_LT(p.b, b.num_rows());
  }
}

}  // namespace
}  // namespace emdbg
