#include "src/block/candidate_pairs.h"

#include <gtest/gtest.h>

namespace emdbg {
namespace {

TEST(PairIdTest, OrderingAndEquality) {
  EXPECT_EQ((PairId{1, 2}), (PairId{1, 2}));
  EXPECT_FALSE((PairId{1, 2}) == (PairId{1, 3}));
  EXPECT_LT((PairId{1, 2}), (PairId{1, 3}));
  EXPECT_LT((PairId{1, 9}), (PairId{2, 0}));
}

TEST(CandidateSetTest, AddAndAccess) {
  CandidateSet cs;
  EXPECT_TRUE(cs.empty());
  cs.Add(PairId{0, 1});
  cs.Add(PairId{2, 3});
  EXPECT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs.pair(1), (PairId{2, 3}));
}

TEST(CandidateSetTest, SortAndDedup) {
  CandidateSet cs({{2, 0}, {0, 1}, {2, 0}, {0, 0}});
  cs.SortAndDedup();
  ASSERT_EQ(cs.size(), 3u);
  EXPECT_EQ(cs.pair(0), (PairId{0, 0}));
  EXPECT_EQ(cs.pair(1), (PairId{0, 1}));
  EXPECT_EQ(cs.pair(2), (PairId{2, 0}));
}

TEST(CandidateSetTest, Truncate) {
  CandidateSet cs({{0, 0}, {0, 1}, {0, 2}});
  cs.Truncate(2);
  EXPECT_EQ(cs.size(), 2u);
  cs.Truncate(10);  // no-op
  EXPECT_EQ(cs.size(), 2u);
}

}  // namespace
}  // namespace emdbg
