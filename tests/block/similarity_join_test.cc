#include "src/block/similarity_join.h"

#include <gtest/gtest.h>

#include "src/text/set_similarity.h"
#include "src/text/tokenizer.h"
#include "src/util/random.h"

namespace emdbg {
namespace {

Table MakeTable(const std::string& name,
                const std::vector<std::string>& titles) {
  Table t(name, Schema({"title"}));
  for (const std::string& title : titles) {
    EXPECT_TRUE(t.AppendRow({title}).ok());
  }
  return t;
}

/// Brute-force oracle: all pairs with word-token Jaccard >= threshold.
CandidateSet BruteForce(const Table& a, const Table& b, double threshold) {
  CandidateSet out;
  for (uint32_t i = 0; i < a.num_rows(); ++i) {
    const TokenList ta = AlnumTokenize(a.Value(i, 0));
    for (uint32_t j = 0; j < b.num_rows(); ++j) {
      const TokenList tb = AlnumTokenize(b.Value(j, 0));
      if (ta.empty() && tb.empty()) continue;  // join skips empty sets
      if (ta.empty() || tb.empty()) continue;
      if (JaccardSimilarity(ta, tb) >= threshold) {
        out.Add(PairId{i, j});
      }
    }
  }
  out.SortAndDedup();
  return out;
}

TEST(JaccardJoinTest, FindsHighOverlapPairs) {
  const Table a = MakeTable("a", {"sony dsc w800 camera", "dell laptop"});
  const Table b = MakeTable(
      "b", {"sony w800 camera", "hp laptop computer", "apple phone"});
  auto pairs = JaccardJoinBlocker("title", 0.5).Block(a, b);
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->size(), 1u);
  EXPECT_EQ(pairs->pair(0), (PairId{0, 0}));  // 3 of 4 tokens shared
}

TEST(JaccardJoinTest, ThresholdOneRequiresIdenticalSets) {
  const Table a = MakeTable("a", {"red green blue", "one two"});
  const Table b = MakeTable("b", {"blue green red", "one two three"});
  auto pairs = JaccardJoinBlocker("title", 1.0).Block(a, b);
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->size(), 1u);
  EXPECT_EQ(pairs->pair(0), (PairId{0, 0}));
}

TEST(JaccardJoinTest, MatchesBruteForceOnRandomData) {
  Rng rng(5);
  const std::vector<std::string> vocab{"alpha", "beta",  "gamma", "delta",
                                       "eps",   "zeta",  "eta",   "theta",
                                       "iota",  "kappa", "lam",   "mu"};
  auto random_title = [&]() {
    std::string out;
    const size_t n = 1 + rng.Uniform(6);
    for (size_t i = 0; i < n; ++i) {
      if (!out.empty()) out += " ";
      out += vocab[rng.Uniform(vocab.size())];
    }
    return out;
  };
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::string> rows_a;
    std::vector<std::string> rows_b;
    for (int i = 0; i < 30; ++i) rows_a.push_back(random_title());
    for (int i = 0; i < 40; ++i) rows_b.push_back(random_title());
    const Table a = MakeTable("a", rows_a);
    const Table b = MakeTable("b", rows_b);
    for (const double threshold : {0.3, 0.5, 0.8, 1.0}) {
      auto join = JaccardJoinBlocker("title", threshold).Block(a, b);
      ASSERT_TRUE(join.ok());
      const CandidateSet oracle = BruteForce(a, b, threshold);
      EXPECT_EQ(join->pairs(), oracle.pairs())
          << "trial " << trial << " threshold " << threshold;
    }
  }
}

TEST(JaccardJoinTest, EmptyValuesNeverPair) {
  const Table a = MakeTable("a", {"", "real title"});
  const Table b = MakeTable("b", {"", "real title"});
  auto pairs = JaccardJoinBlocker("title", 0.5).Block(a, b);
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->size(), 1u);
  EXPECT_EQ(pairs->pair(0), (PairId{1, 1}));
}

TEST(JaccardJoinTest, MissingAttributeIsNotFound) {
  const Table a = MakeTable("a", {});
  const Table b = MakeTable("b", {});
  EXPECT_EQ(JaccardJoinBlocker("bogus", 0.5).Block(a, b).status().code(),
            StatusCode::kNotFound);
}

TEST(JaccardJoinTest, ThresholdClamped) {
  EXPECT_DOUBLE_EQ(JaccardJoinBlocker("t", 2.0).threshold(), 1.0);
  EXPECT_GT(JaccardJoinBlocker("t", -1.0).threshold(), 0.0);
}

TEST(JaccardJoinTest, LowerThresholdIsSuperset) {
  Rng rng(6);
  const Table a = MakeTable(
      "a", {"a b c d", "b c d e", "x y z", "a c e", "m n o p q"});
  const Table b = MakeTable(
      "b", {"a b c", "c d e f", "x y", "a b c d e", "n o p"});
  auto loose = JaccardJoinBlocker("title", 0.3).Block(a, b);
  auto tight = JaccardJoinBlocker("title", 0.7).Block(a, b);
  ASSERT_TRUE(loose.ok());
  ASSERT_TRUE(tight.ok());
  EXPECT_GE(loose->size(), tight->size());
  for (const PairId& p : tight->pairs()) {
    EXPECT_NE(std::find(loose->pairs().begin(), loose->pairs().end(), p),
              loose->pairs().end());
  }
}

}  // namespace
}  // namespace emdbg
