#include "src/block/overlap_blocker.h"

#include <gtest/gtest.h>

namespace emdbg {
namespace {

Table MakeTable(const std::string& name, const std::vector<std::string>& titles) {
  Table t(name, Schema({"title"}));
  for (const std::string& title : titles) {
    EXPECT_TRUE(t.AppendRow({title}).ok());
  }
  return t;
}

TEST(OverlapBlockerTest, SingleTokenOverlap) {
  const Table a = MakeTable("a", {"sony camera", "dell laptop"});
  const Table b =
      MakeTable("b", {"sony tv", "apple phone", "gaming laptop"});
  auto pairs = OverlapBlocker("title", 1).Block(a, b);
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->size(), 2u);
  EXPECT_EQ(pairs->pair(0), (PairId{0, 0}));  // shares "sony"
  EXPECT_EQ(pairs->pair(1), (PairId{1, 2}));  // shares "laptop"
}

TEST(OverlapBlockerTest, MinOverlapTwo) {
  const Table a = MakeTable("a", {"sony dsc camera"});
  const Table b = MakeTable("b", {"sony camera bag", "sony tv"});
  auto pairs = OverlapBlocker("title", 2).Block(a, b);
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs->size(), 1u);
  EXPECT_EQ(pairs->pair(0), (PairId{0, 0}));
}

TEST(OverlapBlockerTest, TokenizationIsCaseInsensitiveAlnum) {
  const Table a = MakeTable("a", {"SONY DSC-W800"});
  const Table b = MakeTable("b", {"sony w800 bundle"});
  auto pairs = OverlapBlocker("title", 2).Block(a, b);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->size(), 1u);  // shares {sony, w800}
}

TEST(OverlapBlockerTest, DuplicateTokensCountOnce) {
  const Table a = MakeTable("a", {"red red red"});
  const Table b = MakeTable("b", {"red wine"});
  auto pairs = OverlapBlocker("title", 2).Block(a, b);
  ASSERT_TRUE(pairs.ok());
  EXPECT_TRUE(pairs->empty());  // only one distinct shared token
}

TEST(OverlapBlockerTest, ZeroMinOverlapCoercedToOne) {
  const OverlapBlocker blocker("title", 0);
  EXPECT_EQ(blocker.min_overlap(), 1u);
}

TEST(OverlapBlockerTest, MissingAttributeIsNotFound) {
  const Table a = MakeTable("a", {});
  const Table b = MakeTable("b", {});
  EXPECT_EQ(OverlapBlocker("bogus").Block(a, b).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace emdbg
