#ifndef EMDBG_TESTS_TEST_UTIL_H_
#define EMDBG_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "src/block/candidate_pairs.h"
#include "src/core/feature.h"
#include "src/core/matching_function.h"
#include "src/data/generator.h"
#include "src/data/table.h"

namespace emdbg::testing {

/// The Figure 2 tables from the paper, plus a couple of extra rows:
/// people with name / phone / zip / street attributes.
inline Table PeopleTableA() {
  Table t("A", Schema({"name", "phone", "zip", "street"}));
  (void)t.AppendRow({"John Smith", "206-453-1978", "53703", "12 main st"});
  (void)t.AppendRow({"Bob Jones", "206-453-1978", "53703", "240 elm ave"});
  (void)t.AppendRow({"Alice Kramer", "312-555-0000", "60601", "77 lake dr"});
  return t;
}

inline Table PeopleTableB() {
  Table t("B", Schema({"name", "phone", "zip", "street"}));
  (void)t.AppendRow({"John Smith", "453 1978", "53703", "12 main st"});
  (void)t.AppendRow({"John Smyth", "206-453-1978", "53704", "12 main st"});
  (void)t.AppendRow({"Roberta Jones", "206-111-2222", "53703", "240 elm"});
  (void)t.AppendRow({"A. Kramer", "312-555-0000", "60601", "77 lake dr"});
  return t;
}

/// All |A| x |B| pairs as candidates.
inline CandidateSet AllPairs(const Table& a, const Table& b) {
  CandidateSet out;
  for (uint32_t i = 0; i < a.num_rows(); ++i) {
    for (uint32_t j = 0; j < b.num_rows(); ++j) {
      out.Add(PairId{i, j});
    }
  }
  return out;
}

/// A small generated dataset shared by matcher / incremental tests —
/// large enough for non-trivial selectivities, small enough to stay fast.
inline GeneratedDataset SmallProducts(uint64_t seed = 99) {
  DatasetProfile p;
  p.name = "test_products";
  p.table_a_rows = 60;
  p.table_b_rows = 120;
  p.candidate_pairs = 900;
  p.twin_fraction = 0.5;
  p.attributes = {
      {"title", AttrKind::kTitle, 0.5, 0.02},
      {"modelno", AttrKind::kModelNo, 0.3, 0.05},
      {"brand", AttrKind::kBrand, 0.25, 0.02},
      {"category", AttrKind::kCategory, 0.1, 0.01},
      {"price", AttrKind::kPrice, 0.5, 0.1},
  };
  p.num_categories = 6;
  p.seed = seed;
  return GenerateDataset(p);
}

}  // namespace emdbg::testing

#endif  // EMDBG_TESTS_TEST_UTIL_H_
