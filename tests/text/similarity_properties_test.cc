/// Property-based sweep over every similarity function in the registry
/// (parameterized gtest): scores stay in [0, 1], are symmetric, score 1 on
/// identical inputs (where the function's semantics promise it), and are
/// deterministic.

#include <gtest/gtest.h>

#include "src/text/similarity_registry.h"
#include "src/util/random.h"

namespace emdbg {
namespace {

class SimilarityPropertiesTest
    : public ::testing::TestWithParam<SimFunction> {
 protected:
  SimilarityPropertiesTest()
      : model_(TfIdfModel::Build({{"sony", "camera", "silver"},
                                  {"nikon", "lens", "kit"},
                                  {"sony", "tv", "remote"},
                                  {"generic", "usb", "cable"}})) {}

  double Sim(std::string_view a, std::string_view b) const {
    return ComputeSimilarity(GetParam(), a, b, &model_);
  }

  TfIdfModel model_;
};

/// Random-ish but deterministic corpus of attribute-like strings.
std::vector<std::string> SampleStrings() {
  std::vector<std::string> out = {
      "",
      "a",
      "ab",
      "Sony DSC-W800",
      "sony dsc w800 silver",
      "John Smith",
      "Jon Smyth",
      "206-453-1978",
      "12.99",
      "13.50",
      "zzzz qqqq",
      "the quick brown fox",
  };
  Rng rng(42);
  for (int i = 0; i < 8; ++i) {
    std::string s;
    const size_t len = 1 + rng.Uniform(14);
    for (size_t k = 0; k < len; ++k) {
      s.push_back(rng.Bernoulli(0.2)
                      ? ' '
                      : static_cast<char>('a' + rng.Uniform(6)));
    }
    out.push_back(s);
  }
  return out;
}

TEST_P(SimilarityPropertiesTest, RangeAndSymmetry) {
  const auto strings = SampleStrings();
  for (const std::string& x : strings) {
    for (const std::string& y : strings) {
      const double xy = Sim(x, y);
      EXPECT_GE(xy, 0.0) << "'" << x << "' vs '" << y << "'";
      EXPECT_LE(xy, 1.0) << "'" << x << "' vs '" << y << "'";
      EXPECT_DOUBLE_EQ(xy, Sim(y, x))
          << "'" << x << "' vs '" << y << "'";
    }
  }
}

TEST_P(SimilarityPropertiesTest, Deterministic) {
  const auto strings = SampleStrings();
  for (const std::string& x : strings) {
    EXPECT_DOUBLE_EQ(Sim(x, strings.back()), Sim(x, strings.back()));
  }
}

TEST_P(SimilarityPropertiesTest, IdenticalInputsScoreOne) {
  // Numeric requires parseable input; everything else promises 1.0 on any
  // identical non-empty string.
  if (GetParam() == SimFunction::kNumeric) {
    EXPECT_DOUBLE_EQ(Sim("42.5", "42.5"), 1.0);
    return;
  }
  for (const char* s :
       {"sony dsc w800", "John Smith", "a", "206-453-1978"}) {
    EXPECT_NEAR(Sim(s, s), 1.0, 1e-9) << s;
  }
}

TEST_P(SimilarityPropertiesTest, BothEmptyScoreOneEmptyVsTextLess) {
  if (GetParam() == SimFunction::kNumeric) return;  // unparseable = 0
  EXPECT_DOUBLE_EQ(Sim("", ""), 1.0);
  EXPECT_LE(Sim("", "something"), 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    AllFunctions, SimilarityPropertiesTest,
    ::testing::ValuesIn(AllSimFunctions()),
    [](const ::testing::TestParamInfo<SimFunction>& info) {
      std::string name = GetSimFunctionInfo(info.param).name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace emdbg
