#include "src/text/alignment.h"

#include <gtest/gtest.h>

namespace emdbg {
namespace {

TEST(NeedlemanWunschTest, IdenticalStringsScoreOne) {
  EXPECT_DOUBLE_EQ(NeedlemanWunschSimilarity("walmart", "walmart"), 1.0);
  EXPECT_DOUBLE_EQ(NeedlemanWunschSimilarity("a", "a"), 1.0);
}

TEST(NeedlemanWunschTest, CaseInsensitive) {
  EXPECT_DOUBLE_EQ(NeedlemanWunschSimilarity("ABC", "abc"), 1.0);
}

TEST(NeedlemanWunschTest, EmptyConventions) {
  EXPECT_DOUBLE_EQ(NeedlemanWunschSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(NeedlemanWunschSimilarity("a", ""), 0.0);
}

TEST(NeedlemanWunschTest, DisjointScoresZero) {
  EXPECT_DOUBLE_EQ(NeedlemanWunschSimilarity("aaaa", "zzzz"), 0.0);
}

TEST(NeedlemanWunschTest, SingleSubstitutionScoresHigh) {
  const double sim = NeedlemanWunschSimilarity("walmart", "walmort");
  EXPECT_GT(sim, 0.7);
  EXPECT_LT(sim, 1.0);
}

TEST(NeedlemanWunschTest, Symmetric) {
  EXPECT_DOUBLE_EQ(NeedlemanWunschSimilarity("kitten", "sitting"),
                   NeedlemanWunschSimilarity("sitting", "kitten"));
}

TEST(NeedlemanWunschTest, AffineGapsPreferOneLongGap) {
  // One contiguous 2-gap is cheaper than two separate 1-gaps under affine
  // costs: "abXXcd" vs "abcd" (one gap of 2) should beat "aXbcXd" vs
  // "abcd" (two gaps of 1).
  const double one_gap = NeedlemanWunschSimilarity("abwwcd", "abcd");
  const double two_gaps = NeedlemanWunschSimilarity("awbcwd", "abcd");
  EXPECT_GT(one_gap, two_gaps);
}

TEST(SmithWatermanTest, SubstringScoresOne) {
  // The shorter string embedded in the longer one aligns perfectly.
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("w800", "sony dsc-w800 camera"),
                   1.0);
}

TEST(SmithWatermanTest, IdenticalScoresOne) {
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("abc", "abc"), 1.0);
}

TEST(SmithWatermanTest, EmptyConventions) {
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("", "abc"), 0.0);
}

TEST(SmithWatermanTest, DisjointScoresZero) {
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("aaa", "zzz"), 0.0);
}

TEST(SmithWatermanTest, LocalBeatsGlobalOnEmbeddedMatch) {
  const char* needle = "dsc-w800";
  const char* haystack = "brand new sony dsc-w800 silver bundle";
  EXPECT_GT(SmithWatermanSimilarity(needle, haystack),
            NeedlemanWunschSimilarity(needle, haystack));
}

TEST(AlignmentTest, ScoresStayInUnitInterval) {
  const char* samples[] = {"", "a", "ab", "walmart", "sony dsc w800",
                           "zzzz", "a b c d e f"};
  for (const char* x : samples) {
    for (const char* y : samples) {
      const double nw = NeedlemanWunschSimilarity(x, y);
      const double sw = SmithWatermanSimilarity(x, y);
      EXPECT_GE(nw, 0.0) << x << "|" << y;
      EXPECT_LE(nw, 1.0) << x << "|" << y;
      EXPECT_GE(sw, 0.0) << x << "|" << y;
      EXPECT_LE(sw, 1.0) << x << "|" << y;
      // Local alignment dominates global after normalization.
      EXPECT_GE(sw, nw - 1e-9) << x << "|" << y;
    }
  }
}

}  // namespace
}  // namespace emdbg
