#include "src/text/soundex.h"

#include <gtest/gtest.h>

namespace emdbg {
namespace {

TEST(SoundexCodeTest, ClassicCodes) {
  EXPECT_EQ(SoundexCode("Robert"), "R163");
  EXPECT_EQ(SoundexCode("Rupert"), "R163");
  EXPECT_EQ(SoundexCode("Ashcraft"), "A261");  // H is transparent
  EXPECT_EQ(SoundexCode("Ashcroft"), "A261");
  EXPECT_EQ(SoundexCode("Tymczak"), "T522");
  EXPECT_EQ(SoundexCode("Pfister"), "P236");
  EXPECT_EQ(SoundexCode("Honeyman"), "H555");
}

TEST(SoundexCodeTest, CaseInsensitive) {
  EXPECT_EQ(SoundexCode("ROBERT"), SoundexCode("robert"));
}

TEST(SoundexCodeTest, PadsShortCodes) {
  EXPECT_EQ(SoundexCode("Lee"), "L000");
  EXPECT_EQ(SoundexCode("a"), "A000");
}

TEST(SoundexCodeTest, IgnoresNonLetters) {
  EXPECT_EQ(SoundexCode("O'Brien"), SoundexCode("OBrien"));
  EXPECT_EQ(SoundexCode("123"), "");
  EXPECT_EQ(SoundexCode(""), "");
}

TEST(SoundexCodeTest, AdjacentSameDigitsCollapse) {
  // "Jackson": c,k,s all map to 2 and collapse.
  EXPECT_EQ(SoundexCode("Jackson"), "J250");
}

TEST(SoundexSimilarityTest, PhoneticMatch) {
  EXPECT_DOUBLE_EQ(SoundexSimilarity("Smith", "Smyth"), 1.0);
  EXPECT_DOUBLE_EQ(SoundexSimilarity("Robert", "Rupert"), 1.0);
}

TEST(SoundexSimilarityTest, DifferentNames) {
  EXPECT_DOUBLE_EQ(SoundexSimilarity("Smith", "Jones"), 0.0);
}

TEST(SoundexSimilarityTest, MultiTokenJaccard) {
  // "John Smith" vs "Jon Smyth": both tokens match phonetically -> 1.0.
  EXPECT_DOUBLE_EQ(SoundexSimilarity("John Smith", "Jon Smyth"), 1.0);
  // One shared phonetic token of two distinct codes -> 1/3.
  EXPECT_NEAR(SoundexSimilarity("John Smith", "John Jones"), 1.0 / 3.0,
              1e-12);
}

TEST(SoundexSimilarityTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(SoundexSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(SoundexSimilarity("Smith", ""), 0.0);
}

}  // namespace
}  // namespace emdbg
