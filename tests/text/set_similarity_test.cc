#include "src/text/set_similarity.h"

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace emdbg {
namespace {

TEST(JaccardTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "b", "c"}, {"b", "c", "d"}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {"a"}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {"b"}), 0.0);
}

TEST(JaccardTest, SetSemanticsCollapseDuplicates) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a", "a", "b"}, {"a", "b", "b"}),
                   1.0);
}

TEST(JaccardTest, EmptyConventions) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({"a"}, {}), 0.0);
}

TEST(DiceTest, KnownValues) {
  EXPECT_DOUBLE_EQ(DiceSimilarity({"a", "b"}, {"b", "c"}), 0.5);
  EXPECT_DOUBLE_EQ(DiceSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity({"x"}, {}), 0.0);
}

TEST(OverlapTest, UsesSmallerSet) {
  EXPECT_DOUBLE_EQ(OverlapCoefficient({"a", "b"}, {"a", "b", "c", "d"}),
                   1.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({"a", "x"}, {"a", "b", "c"}), 0.5);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({"a"}, {}), 0.0);
}

TEST(IntersectionSizeTest, Basic) {
  EXPECT_EQ(IntersectionSize({"a", "b", "b"}, {"b", "c"}), 1u);
  EXPECT_EQ(IntersectionSize({}, {"a"}), 0u);
}

TEST(TrigramTest, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(TrigramSimilarity("walmart", "walmart"), 1.0);
}

TEST(TrigramTest, CaseInsensitive) {
  EXPECT_DOUBLE_EQ(TrigramSimilarity("ABC", "abc"), 1.0);
}

TEST(TrigramTest, DisjointIsZero) {
  EXPECT_DOUBLE_EQ(TrigramSimilarity("aaa", "zzz"), 0.0);
}

TEST(TrigramTest, SharedPrefixScoresPartially) {
  const double sim = TrigramSimilarity("walmart", "walmort");
  EXPECT_GT(sim, 0.3);
  EXPECT_LT(sim, 1.0);
}

TEST(SetSimilarityProperty, OrderingAmongMeasures) {
  // For any pair of non-empty sets: overlap >= dice >= jaccard.
  Rng rng(8);
  const std::vector<std::string> vocab{"a", "b", "c", "d", "e", "f"};
  for (int trial = 0; trial < 200; ++trial) {
    TokenList x;
    TokenList y;
    for (size_t i = 0; i < 1 + rng.Uniform(5); ++i) {
      x.push_back(vocab[rng.Uniform(vocab.size())]);
    }
    for (size_t i = 0; i < 1 + rng.Uniform(5); ++i) {
      y.push_back(vocab[rng.Uniform(vocab.size())]);
    }
    const double j = JaccardSimilarity(x, y);
    const double d = DiceSimilarity(x, y);
    const double o = OverlapCoefficient(x, y);
    EXPECT_LE(j, d + 1e-12);
    EXPECT_LE(d, o + 1e-12);
    EXPECT_GE(j, 0.0);
    EXPECT_LE(o, 1.0);
    // Symmetry.
    EXPECT_DOUBLE_EQ(j, JaccardSimilarity(y, x));
    EXPECT_DOUBLE_EQ(d, DiceSimilarity(y, x));
    EXPECT_DOUBLE_EQ(o, OverlapCoefficient(y, x));
  }
}

}  // namespace
}  // namespace emdbg
