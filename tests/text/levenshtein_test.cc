#include "src/text/levenshtein.h"

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace emdbg {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
}

TEST(LevenshteinTest, Symmetric) {
  EXPECT_EQ(LevenshteinDistance("sunday", "saturday"),
            LevenshteinDistance("saturday", "sunday"));
}

TEST(LevenshteinTest, SingleEdits) {
  EXPECT_EQ(LevenshteinDistance("cat", "cut"), 1u);   // substitute
  EXPECT_EQ(LevenshteinDistance("cat", "cats"), 1u);  // insert
  EXPECT_EQ(LevenshteinDistance("cat", "at"), 1u);    // delete
}

TEST(LevenshteinTest, SimilarityRange) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abcd", "abce"), 0.75);
}

TEST(LevenshteinTest, BoundedMatchesExactWithinBound) {
  Rng rng(3);
  const std::string alphabet = "abcd";
  for (int trial = 0; trial < 200; ++trial) {
    std::string a;
    std::string b;
    const size_t la = rng.Uniform(10);
    const size_t lb = rng.Uniform(10);
    for (size_t i = 0; i < la; ++i) a.push_back(alphabet[rng.Uniform(4)]);
    for (size_t i = 0; i < lb; ++i) b.push_back(alphabet[rng.Uniform(4)]);
    const size_t exact = LevenshteinDistance(a, b);
    for (size_t bound : {0u, 1u, 2u, 5u, 12u}) {
      const size_t got = LevenshteinDistanceBounded(a, b, bound);
      if (exact <= bound) {
        EXPECT_EQ(got, exact) << a << " vs " << b << " bound " << bound;
      } else {
        EXPECT_GT(got, bound) << a << " vs " << b << " bound " << bound;
      }
    }
  }
}

TEST(LevenshteinTest, BoundZeroBoundary) {
  // bound = 0: only exact equality may return 0; anything else must
  // report "exceeds bound" as exactly bound + 1.
  EXPECT_EQ(LevenshteinDistanceBounded("", "", 0), 0u);
  EXPECT_EQ(LevenshteinDistanceBounded("abc", "abc", 0), 0u);
  EXPECT_EQ(LevenshteinDistanceBounded("abc", "abd", 0), 1u);
  EXPECT_EQ(LevenshteinDistanceBounded("abc", "abcd", 0), 1u);
  EXPECT_EQ(LevenshteinDistanceBounded("abc", "xyz", 0), 1u);
}

TEST(LevenshteinTest, EqualStringsAtEveryBound) {
  const std::string s = "interactive debugging of entity matching";
  for (size_t bound : {size_t{0}, size_t{1}, size_t{7}, s.size()}) {
    EXPECT_EQ(LevenshteinDistanceBounded(s, s, bound), 0u) << bound;
    EXPECT_EQ(LevenshteinDistanceBoundedScalar(s, s, bound), 0u) << bound;
  }
}

TEST(LevenshteinTest, BandExactlyExhausted) {
  // distance == bound: the band is used up exactly and must still report
  // the true distance, while bound - 1 must clamp to bound.
  const std::string a = "abcdefgh";
  const std::string b = "abxdefgh";   // distance 1
  const std::string c = "xxcdefgh";   // distance 2
  EXPECT_EQ(LevenshteinDistanceBounded(a, b, 1), 1u);
  EXPECT_EQ(LevenshteinDistanceBounded(a, c, 2), 2u);
  EXPECT_EQ(LevenshteinDistanceBounded(a, c, 1), 2u);  // bound + 1
  // Pure length difference equal to the bound.
  EXPECT_EQ(LevenshteinDistanceBounded("abc", "abcxy", 2), 2u);
  EXPECT_EQ(LevenshteinDistanceBounded("abc", "abcxyz", 2), 3u);  // bound + 1
  // Scalar reference agrees on the same boundaries.
  EXPECT_EQ(LevenshteinDistanceBoundedScalar(a, c, 2), 2u);
  EXPECT_EQ(LevenshteinDistanceBoundedScalar(a, c, 1), 2u);
  EXPECT_EQ(LevenshteinDistanceBoundedScalar("abc", "abcxy", 2), 2u);
}

TEST(LevenshteinTest, BitParallelMatchesScalarAcrossBlockBoundaries) {
  // Random strings whose lengths straddle the 64/128/192/256-char block
  // boundaries of the bit-parallel kernel.
  Rng rng(6);
  const std::string alphabet = "abcde";
  const size_t lengths[] = {0, 1, 31, 63, 64, 65, 100, 127, 128,
                            129, 191, 192, 193, 255, 256, 300};
  for (size_t la : lengths) {
    for (size_t lb : {la, la + 1, la / 2, la + 40}) {
      std::string a;
      std::string b;
      for (size_t i = 0; i < la; ++i) a.push_back(alphabet[rng.Uniform(5)]);
      for (size_t i = 0; i < lb; ++i) b.push_back(alphabet[rng.Uniform(5)]);
      const size_t scalar = LevenshteinDistanceScalar(a, b);
      EXPECT_EQ(LevenshteinDistance(a, b), scalar)
          << "lengths " << la << " x " << lb;
      for (size_t bound : {size_t{0}, size_t{2}, size_t{10}, size_t{64},
                           la + lb}) {
        const size_t got = LevenshteinDistanceBounded(a, b, bound);
        const size_t want = std::min(scalar, bound + 1);
        EXPECT_EQ(got, want)
            << "lengths " << la << " x " << lb << " bound " << bound;
        EXPECT_EQ(LevenshteinDistanceBoundedScalar(a, b, bound), want)
            << "lengths " << la << " x " << lb << " bound " << bound;
      }
    }
  }
}

TEST(LevenshteinTest, BitParallelHandlesHighBytes) {
  // UTF-8 multi-byte sequences are compared byte-by-byte; the Peq table
  // must index bytes >= 128 correctly.
  const std::string a = "caf\xc3\xa9";         // "café"
  const std::string b = "caf\xc3\xa8";         // "cafè"
  EXPECT_EQ(LevenshteinDistance(a, b), LevenshteinDistanceScalar(a, b));
  EXPECT_EQ(LevenshteinDistance(a, a), 0u);
  std::string long_a;
  std::string long_b;
  for (int i = 0; i < 40; ++i) {
    long_a += "\xe6\x9d\xb1\xe4\xba\xac";  // 東京
    long_b += i % 3 ? "\xe6\x9d\xb1\xe4\xba\xac" : "x";
  }
  EXPECT_EQ(LevenshteinDistance(long_a, long_b),
            LevenshteinDistanceScalar(long_a, long_b));
}

TEST(LevenshteinTest, TriangleInequalityProperty) {
  Rng rng(4);
  const std::string alphabet = "ab";
  for (int trial = 0; trial < 100; ++trial) {
    std::string s[3];
    for (auto& str : s) {
      const size_t len = rng.Uniform(8);
      for (size_t i = 0; i < len; ++i) {
        str.push_back(alphabet[rng.Uniform(2)]);
      }
    }
    const size_t ab = LevenshteinDistance(s[0], s[1]);
    const size_t bc = LevenshteinDistance(s[1], s[2]);
    const size_t ac = LevenshteinDistance(s[0], s[2]);
    EXPECT_LE(ac, ab + bc);
  }
}

TEST(LevenshteinTest, SimilarityWithinUnitInterval) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    std::string a;
    std::string b;
    for (size_t i = 0; i < rng.Uniform(12); ++i) {
      a.push_back(static_cast<char>('a' + rng.Uniform(26)));
    }
    for (size_t i = 0; i < rng.Uniform(12); ++i) {
      b.push_back(static_cast<char>('a' + rng.Uniform(26)));
    }
    const double sim = LevenshteinSimilarity(a, b);
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0);
  }
}

}  // namespace
}  // namespace emdbg
