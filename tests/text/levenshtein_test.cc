#include "src/text/levenshtein.h"

#include <string>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace emdbg {
namespace {

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
}

TEST(LevenshteinTest, Symmetric) {
  EXPECT_EQ(LevenshteinDistance("sunday", "saturday"),
            LevenshteinDistance("saturday", "sunday"));
}

TEST(LevenshteinTest, SingleEdits) {
  EXPECT_EQ(LevenshteinDistance("cat", "cut"), 1u);   // substitute
  EXPECT_EQ(LevenshteinDistance("cat", "cats"), 1u);  // insert
  EXPECT_EQ(LevenshteinDistance("cat", "at"), 1u);    // delete
}

TEST(LevenshteinTest, SimilarityRange) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abcd", "abce"), 0.75);
}

TEST(LevenshteinTest, BoundedMatchesExactWithinBound) {
  Rng rng(3);
  const std::string alphabet = "abcd";
  for (int trial = 0; trial < 200; ++trial) {
    std::string a;
    std::string b;
    const size_t la = rng.Uniform(10);
    const size_t lb = rng.Uniform(10);
    for (size_t i = 0; i < la; ++i) a.push_back(alphabet[rng.Uniform(4)]);
    for (size_t i = 0; i < lb; ++i) b.push_back(alphabet[rng.Uniform(4)]);
    const size_t exact = LevenshteinDistance(a, b);
    for (size_t bound : {0u, 1u, 2u, 5u, 12u}) {
      const size_t got = LevenshteinDistanceBounded(a, b, bound);
      if (exact <= bound) {
        EXPECT_EQ(got, exact) << a << " vs " << b << " bound " << bound;
      } else {
        EXPECT_GT(got, bound) << a << " vs " << b << " bound " << bound;
      }
    }
  }
}

TEST(LevenshteinTest, TriangleInequalityProperty) {
  Rng rng(4);
  const std::string alphabet = "ab";
  for (int trial = 0; trial < 100; ++trial) {
    std::string s[3];
    for (auto& str : s) {
      const size_t len = rng.Uniform(8);
      for (size_t i = 0; i < len; ++i) {
        str.push_back(alphabet[rng.Uniform(2)]);
      }
    }
    const size_t ab = LevenshteinDistance(s[0], s[1]);
    const size_t bc = LevenshteinDistance(s[1], s[2]);
    const size_t ac = LevenshteinDistance(s[0], s[2]);
    EXPECT_LE(ac, ab + bc);
  }
}

TEST(LevenshteinTest, SimilarityWithinUnitInterval) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    std::string a;
    std::string b;
    for (size_t i = 0; i < rng.Uniform(12); ++i) {
      a.push_back(static_cast<char>('a' + rng.Uniform(26)));
    }
    for (size_t i = 0; i < rng.Uniform(12); ++i) {
      b.push_back(static_cast<char>('a' + rng.Uniform(26)));
    }
    const double sim = LevenshteinSimilarity(a, b);
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0);
  }
}

}  // namespace
}  // namespace emdbg
