// Randomized differential tests for the interned-id fast path: every id
// kernel must return *bit-identical* doubles to its string counterpart,
// and PairContext with interning on must agree bit-for-bit with interning
// off for all 16 similarity functions — across empty values, unicode
// bytes, and duplicate-heavy token lists.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/pair_context.h"
#include "src/data/table.h"
#include "src/text/cosine.h"
#include "src/text/id_kernels.h"
#include "src/text/monge_elkan.h"
#include "src/text/set_similarity.h"
#include "src/text/similarity_registry.h"
#include "src/text/soft_tfidf.h"
#include "src/text/tfidf.h"
#include "src/text/token_interner.h"
#include "src/text/tokenizer.h"
#include "src/util/random.h"
#include "src/util/thread_pool.h"

namespace emdbg {
namespace {

// A vocabulary mixing plain words, numbers, and multi-byte UTF-8 (the
// tokenizer treats >127 bytes as separators for word tokens but q-grams
// keep the raw bytes — both paths must agree either way).
const char* const kVocab[] = {
    "acme",   "turbo", "x200",  "pro",   "max",     "12",     "2024",
    "café",   "münchén", "東京", "naïve", "blender", "mixer",  "deluxe",
    "silver", "black", "a",     "bb",    "ccc",     "dddd",   "eeeee",
};
constexpr size_t kVocabSize = sizeof(kVocab) / sizeof(kVocab[0]);

std::string RandomText(Rng& rng) {
  const uint64_t shape = rng.Uniform(10);
  if (shape == 0) return "";  // empty value
  std::string text;
  const size_t tokens = 1 + rng.Uniform(8);
  for (size_t i = 0; i < tokens; ++i) {
    if (!text.empty()) text.push_back(' ');
    if (shape == 1 && i > 0) {
      // Duplicate-heavy: repeat the first token.
      const size_t cut = text.find(' ');
      text += text.substr(0, cut == std::string::npos ? text.size() : cut);
    } else {
      text += kVocab[rng.Uniform(kVocabSize)];
    }
  }
  return text;
}

TokenIds MakeIds(const TokenList& tokens, TokenInterner& interner) {
  TokenIds ids;
  ids.doc = InternDocIds(tokens, interner);
  ids.sorted = SortedUniqueIds(ids.doc);
  return ids;
}

TEST(IdKernelsDifferentialTest, SetKernelsBitIdentical) {
  Rng rng(20170321);
  TokenInterner interner;
  for (int trial = 0; trial < 1500; ++trial) {
    const TokenList a = AlnumTokenize(RandomText(rng));
    const TokenList b = AlnumTokenize(RandomText(rng));
    const TokenIds ia = MakeIds(a, interner);
    const TokenIds ib = MakeIds(b, interner);
    EXPECT_EQ(IdJaccard(ia.sorted, ib.sorted), JaccardSimilarity(a, b));
    EXPECT_EQ(IdDice(ia.sorted, ib.sorted), DiceSimilarity(a, b));
    EXPECT_EQ(IdOverlap(ia.sorted, ib.sorted), OverlapCoefficient(a, b));
    EXPECT_EQ(IdIntersectionSize(ia.sorted, ib.sorted),
              IntersectionSize(a, b));
  }
}

TEST(IdKernelsDifferentialTest, QGramKernelsBitIdentical) {
  Rng rng(42);
  TokenInterner interner;
  for (int trial = 0; trial < 1200; ++trial) {
    const std::string sa = RandomText(rng);
    const std::string sb = RandomText(rng);
    const TokenList a = QGramTokenize(sa, 3);
    const TokenList b = QGramTokenize(sb, 3);
    const TokenIds ia = MakeIds(a, interner);
    const TokenIds ib = MakeIds(b, interner);
    EXPECT_EQ(IdJaccard(ia.sorted, ib.sorted), TrigramSimilarity(sa, sb));
  }
}

TEST(IdKernelsDifferentialTest, SkewedIntersectionsHitGallopPath) {
  Rng rng(11);
  TokenInterner interner;
  // One tiny set against one huge set: exercises the galloping branch.
  for (int trial = 0; trial < 200; ++trial) {
    TokenList small;
    for (size_t i = 0; i < 1 + rng.Uniform(3); ++i) {
      small.push_back("tok" + std::to_string(rng.Uniform(4000)));
    }
    TokenList large;
    for (size_t i = 0; i < 500 + rng.Uniform(500); ++i) {
      large.push_back("tok" + std::to_string(rng.Uniform(4000)));
    }
    const TokenIds is = MakeIds(small, interner);
    const TokenIds il = MakeIds(large, interner);
    EXPECT_EQ(IdIntersectionSize(is.sorted, il.sorted),
              IntersectionSize(small, large));
    EXPECT_EQ(IdJaccard(is.sorted, il.sorted),
              JaccardSimilarity(small, large));
  }
}

TEST(IdKernelsDifferentialTest, CosineTfBitIdentical) {
  Rng rng(7);
  TokenInterner interner;
  for (int trial = 0; trial < 1200; ++trial) {
    const TokenList a = AlnumTokenize(RandomText(rng));
    const TokenList b = AlnumTokenize(RandomText(rng));
    const TokenIds ia = MakeIds(a, interner);
    const TokenIds ib = MakeIds(b, interner);
    const auto ranks = interner.LexRanks();
    const IdTfVector ta = MakeIdTfVector(ia.doc, *ranks);
    const IdTfVector tb = MakeIdTfVector(ib.doc, *ranks);
    EXPECT_EQ(IdCosineTf(ta, tb, *ranks), CosineSimilarity(a, b));
  }
}

TEST(IdKernelsDifferentialTest, TfIdfFamilyBitIdentical) {
  Rng rng(13);
  TokenInterner interner;
  // Corpus-backed model shared by both paths.
  TfIdfModel model;
  std::vector<TokenList> docs;
  for (int d = 0; d < 60; ++d) {
    docs.push_back(AlnumTokenize(RandomText(rng)));
    model.AddDocument(docs.back());
  }
  for (int trial = 0; trial < 1000; ++trial) {
    const TokenList& a = docs[rng.Uniform(docs.size())];
    const TokenList& b = docs[rng.Uniform(docs.size())];
    TokenIds ia = MakeIds(a, interner);
    TokenIds ib = MakeIds(b, interner);
    const auto ranks = interner.LexRanks();
    std::vector<double> idf_by_id;
    idf_by_id.reserve(interner.size());
    for (uint32_t id = 0; id < interner.size(); ++id) {
      idf_by_id.push_back(model.Idf(std::string(interner.Text(id))));
    }
    const IdWeightVector wa =
        MakeIdWeightVector(MakeIdTfVector(ia.doc, *ranks), idf_by_id);
    const IdWeightVector wb =
        MakeIdWeightVector(MakeIdTfVector(ib.doc, *ranks), idf_by_id);
    EXPECT_EQ(IdTfIdfCosine(wa, wb, *ranks), model.Similarity(a, b));
    EXPECT_EQ(IdSoftTfIdf(wa, wb, *ranks, interner),
              SoftTfIdfSimilarity(model, a, b));
  }
}

TEST(IdKernelsDifferentialTest, MongeElkanBitIdentical) {
  Rng rng(17);
  TokenInterner interner;
  for (int trial = 0; trial < 1000; ++trial) {
    const TokenList a = AlnumTokenize(RandomText(rng));
    const TokenList b = AlnumTokenize(RandomText(rng));
    const TokenIds ia = MakeIds(a, interner);
    const TokenIds ib = MakeIds(b, interner);
    EXPECT_EQ(IdMongeElkan(a, b, ia, ib), MongeElkanSimilarity(a, b));
    EXPECT_EQ(IdMongeElkanDirected(a, ia, b, ib), MongeElkanDirected(a, b));
  }
}

// End-to-end: PairContext with interning on agrees bit-for-bit with
// interning off for all 16 similarity functions over >= 1000 random pairs.
class PairContextDifferentialTest : public ::testing::Test {
 protected:
  PairContextDifferentialTest() {
    Rng rng(20250806);
    a_ = Table("A", Schema({"text"}));
    b_ = Table("B", Schema({"text"}));
    for (int i = 0; i < 40; ++i) {
      (void)a_.AppendRow({RandomText(rng)});
      (void)b_.AppendRow({RandomText(rng)});
    }
    catalog_ = FeatureCatalog(a_.schema(), b_.schema());
    for (const SimFunction fn : AllSimFunctions()) {
      features_.push_back(*catalog_.InternByName(fn, "text", "text"));
    }
  }

  Table a_;
  Table b_;
  FeatureCatalog catalog_;
  std::vector<FeatureId> features_;
};

TEST_F(PairContextDifferentialTest, AllSixteenFunctionsBitIdentical) {
  PairContext with_ids(a_, b_, catalog_);
  PairContext without_ids(
      a_, b_, catalog_,
      PairContext::Options{.cache_tokens = true, .intern_tokens = false});
  for (const FeatureId f : features_) {
    for (uint32_t i = 0; i < a_.num_rows(); ++i) {
      for (uint32_t j = 0; j < b_.num_rows(); ++j) {
        EXPECT_EQ(with_ids.ComputeFeature(f, {i, j}),
                  without_ids.ComputeFeature(f, {i, j}))
            << catalog_.Name(f) << " on pair (" << i << "," << j << ")";
      }
    }
  }
}

TEST_F(PairContextDifferentialTest, PrewarmedParallelBuildBitIdentical) {
  // Prewarm with a pool (parallel id-array construction), then compare
  // against the lazily built string path.
  ThreadPool pool(4);
  PairContext with_ids(a_, b_, catalog_);
  with_ids.Prewarm(features_, &pool);
  PairContext without_ids(
      a_, b_, catalog_,
      PairContext::Options{.cache_tokens = true, .intern_tokens = false});
  for (const FeatureId f : features_) {
    for (uint32_t i = 0; i < a_.num_rows(); ++i) {
      for (uint32_t j = 0; j < b_.num_rows(); ++j) {
        EXPECT_EQ(with_ids.ComputeFeature(f, {i, j}),
                  without_ids.ComputeFeature(f, {i, j}))
            << catalog_.Name(f) << " on pair (" << i << "," << j << ")";
      }
    }
  }
  EXPECT_GT(with_ids.IdCacheBytes(), 0u);
  ASSERT_NE(with_ids.interner(), nullptr);
  EXPECT_GT(with_ids.interner()->ArenaBytes(), 0u);
  EXPECT_EQ(without_ids.interner(), nullptr);
  EXPECT_EQ(without_ids.IdCacheBytes(), 0u);
}

TEST_F(PairContextDifferentialTest, ClearTokenCachesKeepsValues) {
  PairContext ctx(a_, b_, catalog_);
  std::vector<double> before;
  for (const FeatureId f : features_) {
    before.push_back(ctx.ComputeFeature(f, {3, 5}));
  }
  ctx.ClearTokenCaches();
  for (size_t k = 0; k < features_.size(); ++k) {
    EXPECT_EQ(ctx.ComputeFeature(features_[k], {3, 5}), before[k]);
  }
}

}  // namespace
}  // namespace emdbg
