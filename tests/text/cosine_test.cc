#include "src/text/cosine.h"

#include <cmath>

#include <gtest/gtest.h>

namespace emdbg {
namespace {

TEST(CosineTest, IdenticalIsOne) {
  EXPECT_NEAR(CosineSimilarity({"a", "b"}, {"a", "b"}), 1.0, 1e-12);
}

TEST(CosineTest, DisjointIsZero) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({"a"}, {"b"}), 0.0);
}

TEST(CosineTest, EmptyConventions) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({"a"}, {}), 0.0);
}

TEST(CosineTest, TermFrequencyWeighting) {
  // {"a","a"} vs {"a"}: vectors (2) and (1) point the same way -> 1.0.
  EXPECT_NEAR(CosineSimilarity({"a", "a"}, {"a"}), 1.0, 1e-12);
  // {"a","a","b"} vs {"a","b","b"}: dot=2+2=4, norms sqrt(5) each -> 0.8.
  EXPECT_NEAR(CosineSimilarity({"a", "a", "b"}, {"a", "b", "b"}), 0.8,
              1e-12);
}

TEST(CosineTest, HalfOverlap) {
  // {"a","b"} vs {"b","c"}: dot=1, norms sqrt(2) -> 0.5.
  EXPECT_NEAR(CosineSimilarity({"a", "b"}, {"b", "c"}), 0.5, 1e-12);
}

TEST(CosineSetTest, IgnoresDuplicates) {
  EXPECT_NEAR(CosineSetSimilarity({"a", "a", "b"}, {"a", "b", "b"}), 1.0,
              1e-12);
}

TEST(CosineSetTest, Formula) {
  // |{a}| ∩ |{a,b,c,d}| = 1; sqrt(1*4) = 2 -> 0.5.
  EXPECT_NEAR(CosineSetSimilarity({"a"}, {"a", "b", "c", "d"}), 0.5, 1e-12);
}

TEST(CosineTest, SymmetricAndBounded) {
  const TokenList x{"p", "q", "q", "r"};
  const TokenList y{"q", "r", "s"};
  const double xy = CosineSimilarity(x, y);
  EXPECT_DOUBLE_EQ(xy, CosineSimilarity(y, x));
  EXPECT_GT(xy, 0.0);
  EXPECT_LT(xy, 1.0);
}

}  // namespace
}  // namespace emdbg
