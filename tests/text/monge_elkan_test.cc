#include "src/text/monge_elkan.h"

#include <gtest/gtest.h>

namespace emdbg {
namespace {

TEST(MongeElkanTest, IdenticalTokensScoreOne) {
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({"john", "smith"},
                                        {"john", "smith"}),
                   1.0);
}

TEST(MongeElkanTest, OrderInsensitive) {
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({"john", "smith"},
                                        {"smith", "john"}),
                   1.0);
}

TEST(MongeElkanTest, EmptyConventions) {
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({"a"}, {}), 0.0);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({}, {"a"}), 0.0);
}

TEST(MongeElkanTest, FuzzyTokensScoreHigh) {
  // Token-level typos barely dent the score.
  const double sim =
      MongeElkanSimilarity({"jonathan", "smith"}, {"jonathon", "smyth"});
  EXPECT_GT(sim, 0.85);
  EXPECT_LT(sim, 1.0);
}

TEST(MongeElkanTest, DirectedAsymmetry) {
  // {"a"} vs {"a","zzz"}: forward direction is perfect, backward is not.
  const TokenList small{"alpha"};
  const TokenList big{"alpha", "zzzzz"};
  EXPECT_DOUBLE_EQ(MongeElkanDirected(small, big), 1.0);
  EXPECT_LT(MongeElkanDirected(big, small), 1.0);
}

TEST(MongeElkanTest, SymmetricCombination) {
  const TokenList x{"sony", "camera"};
  const TokenList y{"camera", "bag", "sony"};
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity(x, y), MongeElkanSimilarity(y, x));
  EXPECT_NEAR(MongeElkanSimilarity(x, y),
              (MongeElkanDirected(x, y) + MongeElkanDirected(y, x)) / 2.0,
              1e-12);
}

TEST(MongeElkanTest, DisjointScoresLow) {
  EXPECT_LT(MongeElkanSimilarity({"aaa"}, {"zzz"}), 0.5);
}

}  // namespace
}  // namespace emdbg
