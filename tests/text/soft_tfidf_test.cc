#include "src/text/soft_tfidf.h"

#include <gtest/gtest.h>

namespace emdbg {
namespace {

TfIdfModel NameModel() {
  return TfIdfModel::Build({
      {"jonathan", "smith"},
      {"jonathon", "smith"},
      {"mary", "jones"},
      {"robert", "brown"},
  });
}

TEST(SoftTfIdfTest, ExactMatchScoresLikeTfIdf) {
  const TfIdfModel model = NameModel();
  EXPECT_NEAR(
      SoftTfIdfSimilarity(model, {"mary", "jones"}, {"mary", "jones"}), 1.0,
      1e-9);
}

TEST(SoftTfIdfTest, FuzzyTokenMatchCounts) {
  const TfIdfModel model = NameModel();
  // "jonathan" vs "jonathon" are within Jaro-Winkler 0.9 of each other, so
  // soft TF-IDF sees them as (weighted) matches while hard TF-IDF scores
  // only the shared "smith".
  const double soft = SoftTfIdfSimilarity(model, {"jonathan", "smith"},
                                          {"jonathon", "smith"});
  const double hard =
      model.Similarity({"jonathan", "smith"}, {"jonathon", "smith"});
  EXPECT_GT(soft, hard);
  EXPECT_GT(soft, 0.9);
}

TEST(SoftTfIdfTest, ThresholdGatesFuzzyMatches) {
  const TfIdfModel model = NameModel();
  // With an impossible threshold, only exact token matches contribute.
  const double strict = SoftTfIdfSimilarity(model, {"jonathan", "smith"},
                                            {"jonathon", "smith"},
                                            /*threshold=*/1.0);
  const double loose = SoftTfIdfSimilarity(model, {"jonathan", "smith"},
                                           {"jonathon", "smith"},
                                           /*threshold=*/0.85);
  EXPECT_LT(strict, loose);
}

TEST(SoftTfIdfTest, DisjointScoresZero) {
  const TfIdfModel model = NameModel();
  EXPECT_DOUBLE_EQ(
      SoftTfIdfSimilarity(model, {"mary"}, {"robert"}), 0.0);
}

TEST(SoftTfIdfTest, EmptyConventions) {
  const TfIdfModel model = NameModel();
  EXPECT_DOUBLE_EQ(SoftTfIdfSimilarity(model, {}, {}), 1.0);
  EXPECT_DOUBLE_EQ(SoftTfIdfSimilarity(model, {"mary"}, {}), 0.0);
  EXPECT_DOUBLE_EQ(SoftTfIdfSimilarity(model, {}, {"mary"}), 0.0);
}

TEST(SoftTfIdfTest, BoundedByOne) {
  const TfIdfModel model = NameModel();
  const double sim = SoftTfIdfSimilarity(
      model, {"jonathan", "jonathon", "smith"}, {"jonathan", "smith"});
  EXPECT_LE(sim, 1.0);
  EXPECT_GE(sim, 0.0);
}

}  // namespace
}  // namespace emdbg
