#include "src/text/tokenizer.h"

#include <gtest/gtest.h>

namespace emdbg {
namespace {

TEST(TokenizerTest, WhitespaceBasic) {
  EXPECT_EQ(WhitespaceTokenize("Sony DSC-W800 camera"),
            (TokenList{"Sony", "DSC-W800", "camera"}));
  EXPECT_TRUE(WhitespaceTokenize("").empty());
  EXPECT_TRUE(WhitespaceTokenize("   \t ").empty());
}

TEST(TokenizerTest, AlnumLowercasesAndSplitsOnPunctuation) {
  EXPECT_EQ(AlnumTokenize("Sony DSC-W800"),
            (TokenList{"sony", "dsc", "w800"}));
  EXPECT_EQ(AlnumTokenize("a.b,c"), (TokenList{"a", "b", "c"}));
  EXPECT_TRUE(AlnumTokenize("!!!").empty());
  EXPECT_TRUE(AlnumTokenize("").empty());
}

TEST(TokenizerTest, QGramPadding) {
  // "ab" with q=3: padded "##ab##" -> 4 grams.
  EXPECT_EQ(QGramTokenize("ab", 3),
            (TokenList{"##a", "#ab", "ab#", "b##"}));
}

TEST(TokenizerTest, QGramLowercases) {
  EXPECT_EQ(QGramTokenize("AB", 3), QGramTokenize("ab", 3));
}

TEST(TokenizerTest, QGramEdgeCases) {
  EXPECT_TRUE(QGramTokenize("", 3).empty());
  EXPECT_TRUE(QGramTokenize("abc", 0).empty());
  // q=1 over "ab" is just the characters.
  EXPECT_EQ(QGramTokenize("ab", 1), (TokenList{"a", "b"}));
}

TEST(TokenizerTest, QGramCountIsLengthPlusQMinusOne) {
  const TokenList grams = QGramTokenize("abcdef", 3);
  EXPECT_EQ(grams.size(), 6u + 3 - 1);
}

TEST(TokenizerTest, DispatchMatchesDirectCalls) {
  const std::string s = "Hello, World 42";
  EXPECT_EQ(Tokenize(TokenizerKind::kWhitespace, s), WhitespaceTokenize(s));
  EXPECT_EQ(Tokenize(TokenizerKind::kAlnum, s), AlnumTokenize(s));
  EXPECT_EQ(Tokenize(TokenizerKind::kQGram3, s), QGramTokenize(s, 3));
}

TEST(TokenizerTest, ToSortedUnique) {
  EXPECT_EQ(ToSortedUnique({"b", "a", "b", "c", "a"}),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(ToSortedUnique({}).empty());
}

TEST(TokenizerTest, KindNames) {
  EXPECT_STREQ(TokenizerKindName(TokenizerKind::kWhitespace), "whitespace");
  EXPECT_STREQ(TokenizerKindName(TokenizerKind::kQGram3), "qgram3");
}

}  // namespace
}  // namespace emdbg
