#include "src/text/jaro.h"

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace emdbg {
namespace {

TEST(JaroTest, ClassicTextbookValues) {
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("DIXON", "DICKSONX"), 0.766667, 1e-5);
  EXPECT_NEAR(JaroSimilarity("JELLYFISH", "SMELLYFISH"), 0.896296, 1e-5);
}

TEST(JaroTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", "a"), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroTest, Symmetric) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("DWAYNE", "DUANE"),
                   JaroSimilarity("DUANE", "DWAYNE"));
}

TEST(JaroWinklerTest, ClassicValues) {
  EXPECT_NEAR(JaroWinklerSimilarity("MARTHA", "MARHTA"), 0.961111, 1e-5);
  EXPECT_NEAR(JaroWinklerSimilarity("DIXON", "DICKSONX"), 0.813333, 1e-5);
}

TEST(JaroWinklerTest, PrefixBoostsScore) {
  const double jaro = JaroSimilarity("prefixed", "prefixes");
  const double jw = JaroWinklerSimilarity("prefixed", "prefixes");
  EXPECT_GT(jw, jaro);
}

TEST(JaroWinklerTest, NoCommonPrefixEqualsJaro) {
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abcd", "xbcd"),
                   JaroSimilarity("abcd", "xbcd"));
}

TEST(JaroWinklerTest, PrefixCappedAtFour) {
  // Identical 4-char and longer shared prefixes get the same boost factor.
  const double base = JaroSimilarity("abcdefgh", "abcdxyzw");
  const double jw = JaroWinklerSimilarity("abcdefgh", "abcdxyzw");
  EXPECT_NEAR(jw, base + 4 * 0.1 * (1 - base), 1e-12);
}

TEST(JaroWinklerTest, AlwaysInUnitInterval) {
  Rng rng(6);
  for (int trial = 0; trial < 300; ++trial) {
    std::string a;
    std::string b;
    for (size_t i = 0; i < rng.Uniform(10); ++i) {
      a.push_back(static_cast<char>('a' + rng.Uniform(3)));
    }
    for (size_t i = 0; i < rng.Uniform(10); ++i) {
      b.push_back(static_cast<char>('a' + rng.Uniform(3)));
    }
    const double sim = JaroWinklerSimilarity(a, b);
    EXPECT_GE(sim, 0.0) << a << " vs " << b;
    EXPECT_LE(sim, 1.0) << a << " vs " << b;
    EXPECT_GE(sim, JaroSimilarity(a, b) - 1e-12);
  }
}

TEST(JaroWinklerTest, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("same", "same"), 1.0);
}

}  // namespace
}  // namespace emdbg
