#include "src/text/similarity_registry.h"

#include <gtest/gtest.h>

namespace emdbg {
namespace {

TEST(RegistryTest, AllFunctionsHaveMetadata) {
  EXPECT_EQ(AllSimFunctions().size(), static_cast<size_t>(kNumSimFunctions));
  for (const SimFunction fn : AllSimFunctions()) {
    const SimFunctionInfo& info = GetSimFunctionInfo(fn);
    EXPECT_EQ(info.fn, fn);
    EXPECT_NE(info.name, nullptr);
    EXPECT_GT(info.cost_hint, 0.0);
  }
}

TEST(RegistryTest, NameLookup) {
  auto fn = SimFunctionFromName("jaccard");
  ASSERT_TRUE(fn.ok());
  EXPECT_EQ(*fn, SimFunction::kJaccard);
}

TEST(RegistryTest, NameLookupNormalizesSeparatorsAndCase) {
  for (const char* name :
       {"jaro_winkler", "Jaro Winkler", "JARO-WINKLER", "jarowinkler"}) {
    auto fn = SimFunctionFromName(name);
    ASSERT_TRUE(fn.ok()) << name;
    EXPECT_EQ(*fn, SimFunction::kJaroWinkler) << name;
  }
  auto tfidf = SimFunctionFromName("TF-IDF");
  ASSERT_TRUE(tfidf.ok());
  EXPECT_EQ(*tfidf, SimFunction::kTfIdf);
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  EXPECT_EQ(SimFunctionFromName("bogus").status().code(),
            StatusCode::kNotFound);
}

TEST(RegistryTest, RoundTripAllNames) {
  for (const SimFunction fn : AllSimFunctions()) {
    auto parsed = SimFunctionFromName(GetSimFunctionInfo(fn).name);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, fn);
  }
}

TEST(ComputeSimilarityTest, StringOverloadBasics) {
  EXPECT_DOUBLE_EQ(ComputeSimilarity(SimFunction::kExactMatch, "a", "a"),
                   1.0);
  EXPECT_DOUBLE_EQ(ComputeSimilarity(SimFunction::kExactMatch, "a", "b"),
                   0.0);
  EXPECT_DOUBLE_EQ(
      ComputeSimilarity(SimFunction::kJaccard, "red apple", "apple red"),
      1.0);
  EXPECT_GT(ComputeSimilarity(SimFunction::kTrigram, "walmart", "walmort"),
            0.0);
  EXPECT_DOUBLE_EQ(ComputeSimilarity(SimFunction::kNumeric, "50", "100"),
                   0.5);
}

TEST(ComputeSimilarityTest, PrecomputedTokensMatchOnTheFly) {
  const std::string a = "Sony DSC Camera";
  const std::string b = "sony camera dsc-w800";
  const TokenList wa = AlnumTokenize(a);
  const TokenList wb = AlnumTokenize(b);
  const TokenList qa = QGramTokenize(a, 3);
  const TokenList qb = QGramTokenize(b, 3);
  for (const SimFunction fn :
       {SimFunction::kJaccard, SimFunction::kCosine, SimFunction::kDice,
        SimFunction::kOverlap, SimFunction::kTrigram}) {
    const double lazy = ComputeSimilarity(fn, a, b);
    const double pre = ComputeSimilarity(fn, SimArg{a, &wa, &qa},
                                         SimArg{b, &wb, &qb});
    EXPECT_DOUBLE_EQ(lazy, pre) << GetSimFunctionInfo(fn).name;
  }
}

TEST(ComputeSimilarityTest, TfIdfRequiresModel) {
  // Missing model is a defensive 0.0, not a crash.
  EXPECT_DOUBLE_EQ(ComputeSimilarity(SimFunction::kTfIdf, "a b", "a b"),
                   0.0);
  const TfIdfModel model = TfIdfModel::Build({{"a", "b"}, {"c"}});
  EXPECT_NEAR(
      ComputeSimilarity(SimFunction::kTfIdf, "a b", "a b", &model), 1.0,
      1e-12);
  EXPECT_GT(ComputeSimilarity(SimFunction::kSoftTfIdf, "a b", "a b", &model),
            0.9);
}

TEST(ComputeSimilarityTest, AllFunctionsStayInUnitInterval) {
  const TfIdfModel model =
      TfIdfModel::Build({{"sony", "camera"}, {"nikon", "lens"}});
  const char* samples[][2] = {
      {"", ""},
      {"a", ""},
      {"Sony DSC-W800", "sony dsc w800"},
      {"John Smith", "Jon Smyth"},
      {"12.5", "13.0"},
  };
  for (const SimFunction fn : AllSimFunctions()) {
    for (const auto& s : samples) {
      const double v = ComputeSimilarity(fn, s[0], s[1], &model);
      EXPECT_GE(v, 0.0) << GetSimFunctionInfo(fn).name << " on '" << s[0]
                        << "','" << s[1] << "'";
      EXPECT_LE(v, 1.0) << GetSimFunctionInfo(fn).name << " on '" << s[0]
                        << "','" << s[1] << "'";
    }
  }
}

}  // namespace
}  // namespace emdbg
