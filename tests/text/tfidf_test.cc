#include "src/text/tfidf.h"

#include <cmath>

#include <gtest/gtest.h>

namespace emdbg {
namespace {

TfIdfModel ThreeDocModel() {
  return TfIdfModel::Build({
      {"apple", "red", "fruit"},
      {"banana", "yellow", "fruit"},
      {"cherry", "red", "fruit"},
  });
}

TEST(TfIdfModelTest, CorpusStats) {
  const TfIdfModel model = ThreeDocModel();
  EXPECT_EQ(model.document_count(), 3u);
  EXPECT_EQ(model.vocabulary_size(), 6u);
}

TEST(TfIdfModelTest, IdfOrdering) {
  const TfIdfModel model = ThreeDocModel();
  // "fruit" in all docs, "red" in 2, "apple" in 1, unseen in 0.
  EXPECT_LT(model.Idf("fruit"), model.Idf("red"));
  EXPECT_LT(model.Idf("red"), model.Idf("apple"));
  EXPECT_LT(model.Idf("apple"), model.Idf("unseen_term"));
}

TEST(TfIdfModelTest, IdfFormula) {
  const TfIdfModel model = ThreeDocModel();
  EXPECT_NEAR(model.Idf("fruit"), std::log(4.0 / 4.0) + 1.0, 1e-12);
  EXPECT_NEAR(model.Idf("apple"), std::log(4.0 / 2.0) + 1.0, 1e-12);
}

TEST(TfIdfModelTest, DuplicateTermsCountOncePerDocument) {
  TfIdfModel model;
  model.AddDocument({"x", "x", "x"});
  model.AddDocument({"y"});
  // df(x) = 1 despite three occurrences.
  EXPECT_NEAR(model.Idf("x"), std::log(3.0 / 2.0) + 1.0, 1e-12);
}

TEST(TfIdfVectorTest, UnitNorm) {
  const TfIdfModel model = ThreeDocModel();
  const TfIdfVector v = model.Vectorize({"apple", "red", "red"});
  double norm = 0.0;
  for (const auto& [_, w] : v.entries) norm += w * w;
  EXPECT_NEAR(norm, 1.0, 1e-12);
}

TEST(TfIdfVectorTest, EmptyVector) {
  const TfIdfModel model = ThreeDocModel();
  EXPECT_TRUE(model.Vectorize({}).empty());
}

TEST(TfIdfSimilarityTest, IdenticalDocsScoreOne) {
  const TfIdfModel model = ThreeDocModel();
  EXPECT_NEAR(model.Similarity({"apple", "red"}, {"apple", "red"}), 1.0,
              1e-12);
}

TEST(TfIdfSimilarityTest, DisjointDocsScoreZero) {
  const TfIdfModel model = ThreeDocModel();
  EXPECT_DOUBLE_EQ(model.Similarity({"apple"}, {"banana"}), 0.0);
}

TEST(TfIdfSimilarityTest, EmptyConventions) {
  const TfIdfModel model = ThreeDocModel();
  EXPECT_DOUBLE_EQ(model.Similarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(model.Similarity({"apple"}, {}), 0.0);
}

TEST(TfIdfSimilarityTest, RareSharedTermScoresHigherThanCommon) {
  const TfIdfModel model = ThreeDocModel();
  // Sharing the rare "apple" is worth more than sharing the common
  // "fruit", given equal-sized docs with one distinct term each.
  const double rare =
      model.Similarity({"apple", "red"}, {"apple", "yellow"});
  const double common =
      model.Similarity({"fruit", "red"}, {"fruit", "yellow"});
  EXPECT_GT(rare, common);
}

TEST(TfIdfSimilarityTest, SymmetricAndBounded) {
  const TfIdfModel model = ThreeDocModel();
  const TokenList a{"apple", "fruit", "fruit"};
  const TokenList b{"fruit", "cherry"};
  const double ab = model.Similarity(a, b);
  EXPECT_DOUBLE_EQ(ab, model.Similarity(b, a));
  EXPECT_GT(ab, 0.0);
  EXPECT_LT(ab, 1.0);
}

}  // namespace
}  // namespace emdbg
