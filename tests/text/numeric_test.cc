#include "src/text/numeric.h"

#include <gtest/gtest.h>

namespace emdbg {
namespace {

TEST(NumericSimilarityTest, EqualValues) {
  EXPECT_DOUBLE_EQ(NumericSimilarity("5", "5"), 1.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity("5.0", "5"), 1.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity("0", "0"), 1.0);
}

TEST(NumericSimilarityTest, RelativeDistance) {
  EXPECT_DOUBLE_EQ(NumericSimilarity("50", "100"), 0.5);
  EXPECT_DOUBLE_EQ(NumericSimilarity("100", "50"), 0.5);
  EXPECT_DOUBLE_EQ(NumericSimilarity("90", "100"), 0.9);
}

TEST(NumericSimilarityTest, OppositeSignsClampToZero) {
  EXPECT_DOUBLE_EQ(NumericSimilarity("-10", "10"), 0.0);
}

TEST(NumericSimilarityTest, NonNumericIsZero) {
  EXPECT_DOUBLE_EQ(NumericSimilarity("abc", "5"), 0.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity("", ""), 0.0);
  EXPECT_DOUBLE_EQ(NumericSimilarity("5", ""), 0.0);
}

TEST(NumericAbsoluteTest, WithinTolerance) {
  EXPECT_DOUBLE_EQ(NumericAbsoluteSimilarity("100", "105", 10.0), 0.5);
  EXPECT_DOUBLE_EQ(NumericAbsoluteSimilarity("100", "100", 10.0), 1.0);
}

TEST(NumericAbsoluteTest, BeyondToleranceIsZero) {
  EXPECT_DOUBLE_EQ(NumericAbsoluteSimilarity("100", "200", 10.0), 0.0);
}

TEST(NumericAbsoluteTest, ZeroToleranceIsExactMatch) {
  EXPECT_DOUBLE_EQ(NumericAbsoluteSimilarity("7", "7", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(NumericAbsoluteSimilarity("7", "7.1", 0.0), 0.0);
}

}  // namespace
}  // namespace emdbg
