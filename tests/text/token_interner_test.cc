#include "src/text/token_interner.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace emdbg {
namespace {

TEST(TokenInternerTest, AssignsDenseFirstSeenIds) {
  TokenInterner interner;
  EXPECT_EQ(interner.Intern("zebra"), 0u);
  EXPECT_EQ(interner.Intern("apple"), 1u);
  EXPECT_EQ(interner.Intern("zebra"), 0u);  // dedup
  EXPECT_EQ(interner.Intern("mango"), 2u);
  EXPECT_EQ(interner.size(), 3u);
}

TEST(TokenInternerTest, TextRoundTrip) {
  TokenInterner interner;
  const TokenId id = interner.Intern("hello");
  EXPECT_EQ(interner.Text(id), "hello");
  EXPECT_EQ(interner.Find("hello"), id);
  EXPECT_EQ(interner.Find("absent"), kInvalidTokenId);
}

TEST(TokenInternerTest, HandlesEmptyAndBinaryTokens) {
  TokenInterner interner;
  const TokenId empty = interner.Intern("");
  const TokenId nul = interner.Intern(std::string_view("a\0b", 3));
  EXPECT_NE(empty, nul);
  EXPECT_EQ(interner.Text(empty), "");
  EXPECT_EQ(interner.Text(nul), std::string_view("a\0b", 3));
  EXPECT_EQ(interner.Intern(std::string_view("a\0b", 3)), nul);
}

TEST(TokenInternerTest, LexRanksMatchSortedOrder) {
  TokenInterner interner;
  const std::vector<std::string> words = {"pear", "apple", "fig", "banana"};
  for (const auto& w : words) interner.Intern(w);
  const auto ranks = interner.LexRanks();
  // apple < banana < fig < pear
  EXPECT_EQ((*ranks)[interner.Find("apple")], 0u);
  EXPECT_EQ((*ranks)[interner.Find("banana")], 1u);
  EXPECT_EQ((*ranks)[interner.Find("fig")], 2u);
  EXPECT_EQ((*ranks)[interner.Find("pear")], 3u);
}

TEST(TokenInternerTest, GrowthPreservesRelativeRankOrder) {
  TokenInterner interner;
  Rng rng(7);
  auto random_word = [&rng] {
    std::string w;
    const size_t len = 1 + rng.Uniform(10);
    for (size_t i = 0; i < len; ++i) {
      w.push_back(static_cast<char>('a' + rng.Uniform(26)));
    }
    return w;
  };
  std::vector<TokenId> first_batch;
  for (int i = 0; i < 200; ++i) first_batch.push_back(interner.Intern(random_word()));
  const auto ranks_before = interner.LexRanks();
  for (int i = 0; i < 200; ++i) interner.Intern(random_word());
  const auto ranks_after = interner.LexRanks();
  // The invariant cached id arrays rely on: interning new tokens never
  // swaps the relative order of existing ones.
  for (size_t i = 0; i < first_batch.size(); ++i) {
    for (size_t j = i + 1; j < first_batch.size(); ++j) {
      const TokenId x = first_batch[i];
      const TokenId y = first_batch[j];
      if (x == y) continue;
      EXPECT_EQ((*ranks_before)[x] < (*ranks_before)[y],
                (*ranks_after)[x] < (*ranks_after)[y]);
    }
  }
}

TEST(TokenInternerTest, ArenaSurvivesManyChunks) {
  TokenInterner interner;
  // ~200k distinct tokens x ~8 bytes >> one 64 KB chunk: forces chunk
  // growth; all earlier views must stay valid.
  std::vector<TokenId> ids;
  for (int i = 0; i < 200000; ++i) {
    ids.push_back(interner.Intern("token_" + std::to_string(i)));
  }
  EXPECT_EQ(interner.size(), 200000u);
  EXPECT_EQ(interner.Text(ids[0]), "token_0");
  EXPECT_EQ(interner.Text(ids[123456]), "token_123456");
  EXPECT_GT(interner.ArenaBytes(), size_t{200000 * 6});
  EXPECT_GT(interner.DictionaryBytes(), size_t{200000 * sizeof(void*)});
}

TEST(TokenInternerTest, OversizedTokenGetsOwnChunk) {
  TokenInterner interner;
  const std::string big(1 << 20, 'x');  // 1 MB > chunk size
  const TokenId small = interner.Intern("small");
  const TokenId huge = interner.Intern(big);
  EXPECT_EQ(interner.Text(huge).size(), big.size());
  EXPECT_EQ(interner.Text(huge), big);
  EXPECT_EQ(interner.Text(small), "small");
  EXPECT_GE(interner.ArenaBytes(), big.size());
}

}  // namespace
}  // namespace emdbg
