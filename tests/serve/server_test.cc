#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/edit_log.h"
#include "src/serve/client.h"
#include "src/serve/server.h"
#include "src/util/fault_injection.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

/// In-process server tests: a real Server on an ephemeral loopback port,
/// driven through the real ServeClient — nothing is mocked, so these
/// exercise the same poll loop / worker / wire path production uses.
class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratedDataset ds = testing::SmallProducts();
    a_ = std::make_shared<const Table>(std::move(ds.a));
    b_ = std::make_shared<const Table>(std::move(ds.b));
    pairs_ = std::make_shared<const CandidateSet>(std::move(ds.candidates));
  }

  ServerTest()
      : dir_(::testing::TempDir() + "/emdbg_server_" +
             ::testing::UnitTest::GetInstance()
                 ->current_test_info()
                 ->name()) {
    std::filesystem::remove_all(dir_);
    FaultInjection::DisarmAll();
  }

  ~ServerTest() override {
    if (server_) server_->Shutdown();
    FaultInjection::DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  Server::Options BaseOptions() {
    Server::Options o;
    o.num_workers = 2;
    o.durability_root = dir_;
    return o;
  }

  void StartServer(const Server::Options& options) {
    server_ = std::make_unique<Server>(a_, b_, pairs_, options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  ServeClient Connect() {
    Result<ServeClient> c = ServeClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(c.ok()) << c.status().message();
    return c.ok() ? std::move(*c) : ServeClient();
  }

  static std::shared_ptr<const Table> a_;
  static std::shared_ptr<const Table> b_;
  static std::shared_ptr<const CandidateSet> pairs_;

  std::string dir_;
  std::unique_ptr<Server> server_;
};

std::shared_ptr<const Table> ServerTest::a_;
std::shared_ptr<const Table> ServerTest::b_;
std::shared_ptr<const CandidateSet> ServerTest::pairs_;

TEST_F(ServerTest, PingAndStatsWorkWithoutASession) {
  StartServer(BaseOptions());
  ServeClient c = Connect();
  Result<std::string> pong = c.Call("ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(*pong, "pong");
  Result<std::string> stats = c.Call("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("sessions=0"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("conns=1"), std::string::npos) << *stats;
}

TEST_F(ServerTest, OpenEditRunCloseLifecycle) {
  StartServer(BaseOptions());
  ServeClient c = Connect();

  Result<std::string> open = c.Call("open");
  ASSERT_TRUE(open.ok()) << open.status().message();
  EXPECT_NE(open->find("token="), std::string::npos);

  Result<std::string> add =
      c.Call("add_rule r1: jaccard(title, title) >= 0.5");
  ASSERT_TRUE(add.ok()) << add.status().message();
  EXPECT_NE(add->find("rule=r1"), std::string::npos);
  EXPECT_NE(add->find("pos=0"), std::string::npos);

  Result<std::string> run = c.Call("run");
  ASSERT_TRUE(run.ok()) << run.status().message();
  EXPECT_NE(run->find("matches="), std::string::npos);
  EXPECT_NE(run->find("pairs="), std::string::npos);

  // Edits after a run report the refreshed match count inline.
  Result<std::string> tweak = c.Call("set_threshold 0 0 0.7");
  ASSERT_TRUE(tweak.ok()) << tweak.status().message();
  EXPECT_NE(tweak->find("matches="), std::string::npos);

  Result<std::string> undo = c.Call("undo");
  ASSERT_TRUE(undo.ok()) << undo.status().message();

  Result<std::string> rules = c.Call("rules");
  ASSERT_TRUE(rules.ok());
  EXPECT_NE(rules->find("rules=1"), std::string::npos);

  Result<std::string> digest = c.Call("digest");
  ASSERT_TRUE(digest.ok());
  EXPECT_NE(digest->find("digest="), std::string::npos);

  Result<std::string> close = c.Call("close");
  ASSERT_TRUE(close.ok());
  EXPECT_EQ(*close, "closed");

  // The session is gone; further commands on this connection fail.
  EXPECT_EQ(c.Call("run").status().code(), StatusCode::kNotFound);
}

TEST_F(ServerTest, CommandsWithoutASessionAreRefused) {
  StartServer(BaseOptions());
  ServeClient c = Connect();
  EXPECT_EQ(c.Call("run").status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(c.Call("add_rule r1: jaccard(title, title) >= 0.5").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ServerTest, MalformedRequestsGetExplicitErrors) {
  StartServer(BaseOptions());
  ServeClient c = Connect();
  ASSERT_TRUE(c.Call("open").ok());
  EXPECT_EQ(c.Call("no_such_verb").status().code(), StatusCode::kParseError);
  EXPECT_EQ(c.Call("add_rule").status().code(), StatusCode::kParseError);
  EXPECT_EQ(c.Call("remove_rule notanumber").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(c.Call("remove_rule 99").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(c.Call("set_threshold 0 0 nope").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(c.Call("attach no-such-token").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(c.Call("open token=bad token!").status().code(), StatusCode::kParseError);
}

TEST_F(ServerTest, SessionTableIsBounded) {
  Server::Options o = BaseOptions();
  o.max_sessions = 2;
  StartServer(o);
  ServeClient c1 = Connect();
  ServeClient c2 = Connect();
  ServeClient c3 = Connect();
  ASSERT_TRUE(c1.Call("open").ok());
  ASSERT_TRUE(c2.Call("open").ok());
  Result<std::string> third = c3.Call("open");
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(third.status().message().find("session table full"),
            std::string::npos);

  // Closing one frees the slot: shedding is load-dependent, not sticky.
  ASSERT_TRUE(c1.Call("close").ok());
  EXPECT_TRUE(c3.Call("open").ok());
}

TEST_F(ServerTest, ConnectionCountIsBounded) {
  Server::Options o = BaseOptions();
  o.max_connections = 1;
  StartServer(o);
  ServeClient c1 = Connect();
  ASSERT_TRUE(c1.Call("ping").ok());
  // The second connection is accepted at the TCP level, answered with an
  // explicit shed error, and closed.
  ServeClient c2 = Connect();
  Result<std::string> resp = c2.ReadResponse();
  ASSERT_TRUE(resp.ok()) << resp.status().message();
  EXPECT_NE(resp->find("err ResourceExhausted"), std::string::npos) << *resp;
  // After the error frame the server hangs up.
  EXPECT_EQ(c2.ReadResponse().status().code(), StatusCode::kIoError);
}

TEST_F(ServerTest, PerSessionQueueSheds) {
  Server::Options o = BaseOptions();
  o.num_workers = 1;
  o.max_queue_per_session = 2;
  StartServer(o);
  // Stall the single worker so the queue can actually fill.
  FaultInjection::Plan slow;
  slow.every = 1;
  FaultInjection::Arm("serve.slow_task", slow);

  ServeClient c = Connect();
  ASSERT_TRUE(c.Call("open").ok());
  const int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(c.Send("rules").ok());
  }
  int ok = 0;
  int shed = 0;
  for (int i = 0; i < kBurst; ++i) {
    Result<std::string> resp = c.ReadResponse();
    ASSERT_TRUE(resp.ok()) << resp.status().message();
    if (resp->find("err ResourceExhausted") != std::string::npos) {
      ++shed;
    } else {
      ++ok;
    }
  }
  EXPECT_GT(ok, 0) << "admitted requests must still be answered";
  EXPECT_GT(shed, 0) << "a full queue must shed, not grow unboundedly";
  EXPECT_GE(server_->stats().requests_shed,
            static_cast<uint64_t>(shed));
}

TEST_F(ServerTest, QueuedRequestsHonorDeadlines) {
  Server::Options o = BaseOptions();
  o.num_workers = 1;
  o.default_deadline_ms = 1;  // every request expires behind the stall
  StartServer(o);
  FaultInjection::Plan slow;  // 50 ms stall per request
  slow.every = 1;
  FaultInjection::Arm("serve.slow_task", slow);

  ServeClient c = Connect();
  ASSERT_TRUE(c.Call("open").ok());
  const int kBurst = 4;
  for (int i = 0; i < kBurst; ++i) {
    ASSERT_TRUE(c.Send("rules").ok());
  }
  int expired = 0;
  for (int i = 0; i < kBurst; ++i) {
    Result<std::string> resp = c.ReadResponse();
    ASSERT_TRUE(resp.ok());
    if (resp->find("err DeadlineExceeded") != std::string::npos) ++expired;
  }
  EXPECT_GT(expired, 0);
  // The stats counter is bumped after the response is written; give the
  // worker a beat to finish its bookkeeping.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_GE(server_->stats().requests_expired,
            static_cast<uint64_t>(expired));
}

TEST_F(ServerTest, AttachMovesASessionBetweenConnections) {
  StartServer(BaseOptions());
  ServeClient c1 = Connect();
  Result<std::string> open = c1.Call("open token=mine");
  ASSERT_TRUE(open.ok());
  ASSERT_TRUE(c1.Call("add_rule r1: jaccard(title, title) >= 0.5").ok());

  // A second live connection cannot steal an attached session.
  ServeClient c2 = Connect();
  EXPECT_EQ(c2.Call("attach mine").status().code(), StatusCode::kFailedPrecondition);

  // After the first connection drops, attach succeeds and the rules are
  // still there — the session outlives its connection.
  c1.Close();
  Result<std::string> attach = Status::Internal("not attempted");
  for (int i = 0; i < 100; ++i) {  // the poll loop reaps the dead conn async
    attach = c2.Call("attach mine");
    if (attach.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(attach.ok()) << attach.status().message();
  Result<std::string> rules = c2.Call("rules");
  ASSERT_TRUE(rules.ok());
  EXPECT_NE(rules->find("rules=1"), std::string::npos);
}

TEST_F(ServerTest, DurableSessionSurvivesAbortViaResume) {
  StartServer(BaseOptions());
  std::string digest_before;
  {
    ServeClient c = Connect();
    ASSERT_TRUE(c.Call("open durable token=t1").ok());
    ASSERT_TRUE(c.Call("add_rule r1: jaccard(title, title) >= 0.5").ok());
    ASSERT_TRUE(c.Call("run").ok());  // first run enables durability
    ASSERT_TRUE(c.Call("set_threshold 0 0 0.62").ok());
    ASSERT_TRUE(
        c.Call("add_rule r2: jaccard(brand, brand) >= 0.7").ok());
    Result<std::string> d = c.Call("digest");
    ASSERT_TRUE(d.ok());
    digest_before = *d;
  }

  server_->Abort();  // simulated kill -9: no drain, no checkpoints
  server_.reset();

  StartServer(BaseOptions());
  ServeClient c = Connect();
  Result<std::string> resume = c.Call("resume t1");
  ASSERT_TRUE(resume.ok()) << resume.status().message();
  EXPECT_NE(resume->find("token=t1"), std::string::npos);
  Result<std::string> d = c.Call("digest");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, digest_before)
      << "recovered session must be bit-identical to the acked state";
}

TEST_F(ServerTest, JournalFaultDegradesSessionUntilResumed) {
  StartServer(BaseOptions());
  ServeClient c = Connect();
  ASSERT_TRUE(c.Call("open durable token=t2").ok());
  ASSERT_TRUE(c.Call("add_rule r1: jaccard(title, title) >= 0.5").ok());
  ASSERT_TRUE(c.Call("run").ok());
  ASSERT_TRUE(c.Call("set_threshold 0 0 0.60").ok());

  // Fail the next journal write: the edit is rejected and the session
  // degrades (disk is authoritative, live state dropped).
  FaultInjection::Arm("journal.write", FaultInjection::Plan{});
  Result<std::string> bad = c.Call("set_threshold 0 0 0.99");
  EXPECT_EQ(bad.status().code(), StatusCode::kIoError);
  EXPECT_NE(bad.status().message().find("degraded"), std::string::npos)
      << bad.status().message();

  // Until resumed the session refuses work, explicitly.
  Result<std::string> refused = c.Call("rules");
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(refused.status().message().find("resume"), std::string::npos);

  // The worker that degraded the session may still be finishing its
  // bookkeeping ("session busy"); resume is designed to be retried.
  Result<std::string> resume = Status::Internal("not attempted");
  for (int i = 0; i < 100 && !resume.ok(); ++i) {
    resume = c.Call("resume t2");
    if (!resume.ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_TRUE(resume.ok()) << resume.status().message();
  // The failed edit never committed: the acked threshold survived.
  Result<std::string> after = c.Call("rules");
  ASSERT_TRUE(after.ok());
  // The DSL prints doubles at full precision: 0.60 comes back as
  // ">= 0.59999999999999998".
  EXPECT_NE(after->find(">= 0.59999"), std::string::npos) << *after;
  EXPECT_EQ(after->find("0.99"), std::string::npos) << *after;
  EXPECT_GE(server_->stats().sessions_degraded, 1u);

  // And the session is fully live again.
  EXPECT_TRUE(c.Call("set_threshold 0 0 0.65").ok());
}

TEST_F(ServerTest, ShutdownChecksDurableSessionsAndRefusesNewWork) {
  Server::Options o = BaseOptions();
  o.checkpoint_every = 1000;  // no cadence checkpoint: shutdown must do it
  StartServer(o);
  {
    ServeClient c = Connect();
    ASSERT_TRUE(c.Call("open durable token=t3").ok());
    ASSERT_TRUE(c.Call("add_rule r1: jaccard(title, title) >= 0.5").ok());
    ASSERT_TRUE(c.Call("run").ok());
    ASSERT_TRUE(c.Call("set_threshold 0 0 0.58").ok());
    auto journal = EditJournal::Read(dir_ + "/t3/journal.log");
    ASSERT_TRUE(journal.ok());
    EXPECT_EQ(journal->records.size(), 1u) << "edit journaled, no checkpoint";
  }

  server_->Shutdown();
  server_->Shutdown();  // idempotent

  // Graceful shutdown checkpointed the session: the journal was folded
  // into a fresh checkpoint epoch and truncated.
  auto journal = EditJournal::Read(dir_ + "/t3/journal.log");
  ASSERT_TRUE(journal.ok());
  EXPECT_TRUE(journal->records.empty());
  EXPECT_GT(journal->epoch, 1u);

  // The listener is gone: new connections are refused outright.
  EXPECT_FALSE(ServeClient::Connect("127.0.0.1", server_->port()).ok());
}

TEST_F(ServerTest, OpenDurableWithoutRootIsRefused) {
  Server::Options o = BaseOptions();
  o.durability_root.clear();
  StartServer(o);
  ServeClient c = Connect();
  EXPECT_EQ(c.Call("open durable").status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(c.Call("resume t9").status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(c.Call("open").ok()) << "ephemeral sessions still work";
}

TEST_F(ServerTest, DuplicateTokenIsAlreadyExists) {
  StartServer(BaseOptions());
  ServeClient c1 = Connect();
  ServeClient c2 = Connect();
  ASSERT_TRUE(c1.Call("open token=dup").ok());
  EXPECT_EQ(c2.Call("open token=dup").status().code(), StatusCode::kAlreadyExists);
}

TEST_F(ServerTest, InjectedSessionAllocationFailureSheds) {
  StartServer(BaseOptions());
  FaultInjection::Arm("serve.session", FaultInjection::Plan{});
  ServeClient c = Connect();
  Result<std::string> open = c.Call("open");
  EXPECT_EQ(open.status().code(), StatusCode::kResourceExhausted);
  // The very next attempt succeeds: shedding one admission is not fatal.
  EXPECT_TRUE(c.Call("open").ok());
}

}  // namespace
}  // namespace emdbg
