#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/serve/client.h"
#include "src/serve/server.h"
#include "src/serve/session_digest.h"
#include "src/util/fault_injection.h"
#include "src/util/string_util.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

/// In-process soak: N concurrent durable sessions hammer one server while
/// deterministic faults fail journal fsyncs, drop connections mid-read,
/// and stall workers; the server is crashed (Abort == kill -9: no drain,
/// no checkpoints) and restarted between rounds.
///
/// The invariant under test is the ISSUE's acceptance criterion: ZERO
/// lost acknowledged edits. Each client thread tracks exactly which of
/// its edits were acknowledged; after every fault and every crash the
/// recovered session's digest must be bit-identical to a fault-free
/// serial replay of that edit list on a fresh local session over the
/// same shared corpus.
///
/// A journal-fsync fault makes one edit *indeterminate* (the record may
/// be on disk even though the client got an error). The client resolves
/// the ambiguity the only honest way: recover, then compare the server's
/// digest against BOTH candidates — replay(acked) and replay(acked +
/// the in-doubt edit) — and adopt whichever matches. Matching neither is
/// a lost or invented edit and fails the test.
class SoakTest : public ::testing::Test {
 protected:
  static constexpr int kSessions = 8;       // ISSUE floor: N >= 8
  static constexpr int kEditsPerCycle = 12;
  static constexpr int kCycles = 2;
  static constexpr char kBaseRule[] = "base: jaccard(title, title) >= 0.55";

  static void SetUpTestSuite() {
    GeneratedDataset ds = testing::SmallProducts();
    a_ = std::make_shared<const Table>(std::move(ds.a));
    b_ = std::make_shared<const Table>(std::move(ds.b));
    pairs_ = std::make_shared<const CandidateSet>(std::move(ds.candidates));
  }

  // Per-test-name root: ctest runs each test as its own process, possibly
  // in parallel, and a shared directory would let one test's cleanup
  // delete another's live durable state.
  SoakTest()
      : dir_(::testing::TempDir() + "/emdbg_soak_" +
             ::testing::UnitTest::GetInstance()
                 ->current_test_info()
                 ->name()) {
    std::filesystem::remove_all(dir_);
    FaultInjection::DisarmAll();
  }

  ~SoakTest() override {
    if (server_) server_->Shutdown();
    FaultInjection::DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  void StartServer() {
    Server::Options o;
    o.num_workers = 4;
    o.durability_root = dir_;
    o.max_sessions = kSessions * 2;
    server_ = std::make_unique<Server>(a_, b_, pairs_, o);
    ASSERT_TRUE(server_->Start().ok());
  }

  /// The deterministic per-session edit script. Values are distinct per
  /// step so every command string is unique within its session.
  static std::string EditCommand(int session, int step) {
    const double v =
        0.30 + 0.005 * ((session * 131 + step * 53) % 90);
    if (step % 3 == 2) {
      return StrFormat("add_rule a%d_%d: jaccard(brand, brand) >= %.4f",
                       session, step, v);
    }
    return StrFormat("set_threshold 0 0 %.4f", v);
  }

  /// Fault-free serial replay of (base rule + edits) on a fresh local
  /// session over the very same shared corpus — the ground truth the
  /// recovered server-side session must match bit for bit.
  static std::string ReplayDigest(const std::vector<std::string>& edits) {
    DebugSession s(a_, b_, pairs_, DebugSession::Options{});
    EXPECT_TRUE(s.AddRuleText(kBaseRule).ok());
    for (const std::string& cmd : edits) {
      if (StartsWith(cmd, "add_rule ")) {
        EXPECT_TRUE(s.AddRuleText(cmd.substr(9)).ok()) << cmd;
      } else {
        // "set_threshold 0 0 <v>": same parse the server applies.
        const double v = std::stod(cmd.substr(cmd.rfind(' ') + 1));
        const Rule& r0 = s.function().rule(0);
        EXPECT_TRUE(s.SetThreshold(r0.id(), r0.predicate(0).id, v).ok())
            << cmd;
      }
    }
    return StrFormat("%08x", SessionStateDigest(s));
  }

  static std::string ExtractDigest(const std::string& resp) {
    const size_t pos = resp.find("digest=");
    return pos == std::string::npos ? std::string()
                                    : resp.substr(pos + 7, 8);
  }

  /// Retry budget: generous wall-clock deadlines, not iteration counts —
  /// under TSan (10-20x slower) plus ctest -j CPU contention a resume can
  /// legitimately take seconds, and a count-based loop with fast continue
  /// paths burns its budget spinning.
  static std::chrono::steady_clock::time_point RetryDeadline() {
    return std::chrono::steady_clock::now() + std::chrono::seconds(60);
  }

  bool EnsureConnected(ServeClient& client) {
    if (client.connected()) return true;
    const auto deadline = RetryDeadline();
    while (std::chrono::steady_clock::now() < deadline) {
      Result<ServeClient> c =
          ServeClient::Connect("127.0.0.1", server_->port());
      if (c.ok()) {
        client = std::move(*c);
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ADD_FAILURE() << "could not reconnect";
    return false;
  }

  /// Re-establishes `token` (attach if live, resume if degraded or gone)
  /// and verifies the server digest against the replay of `applied` —
  /// plus, when `pending` is set, the replay including the in-doubt edit,
  /// adopting it into `applied` if that is the state the journal holds.
  bool Resync(ServeClient& client, const std::string& token,
              std::vector<std::string>& applied, const std::string* pending) {
    const auto deadline = RetryDeadline();
    for (bool first = true; std::chrono::steady_clock::now() < deadline;
         first = false) {
      if (!first) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      if (!EnsureConnected(client)) return false;

      // attach first: cheap, and tells us whether the session is live.
      Result<std::string> r = client.Call("attach " + token);
      if (r.ok() && r->find("degraded=1") == std::string::npos) {
        // live and healthy
      } else {
        const StatusCode code = r.status().code();
        if (!r.ok() && code == StatusCode::kIoError) {
          client.Close();
          continue;
        }
        if (!r.ok() && code != StatusCode::kNotFound &&
            code != StatusCode::kFailedPrecondition) {
          ADD_FAILURE() << token << " attach: " << r.status().message();
          return false;
        }
        Result<std::string> res = client.Call("resume " + token);
        if (!res.ok()) {
          const StatusCode rc = res.status().code();
          if (rc == StatusCode::kIoError) {
            client.Close();
            continue;
          }
          // busy / attached-elsewhere races resolve with a short wait
          if (rc == StatusCode::kFailedPrecondition ||
              rc == StatusCode::kResourceExhausted) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            continue;
          }
          ADD_FAILURE() << token << " resume: " << res.status().message();
          return false;
        }
      }

      Result<std::string> d = client.Call("digest");
      if (!d.ok()) {
        if (d.status().code() == StatusCode::kIoError) client.Close();
        continue;
      }
      const std::string got = ExtractDigest(*d);
      if (got == ReplayDigest(applied)) return true;
      if (pending != nullptr) {
        std::vector<std::string> with = applied;
        with.push_back(*pending);
        if (got == ReplayDigest(with)) {
          applied.push_back(*pending);
          return true;
        }
      }
      ADD_FAILURE()
          << token << ": recovered digest " << got
          << " matches no legal replay of the acknowledged edits ("
          << applied.size() << " acked"
          << (pending ? ", 1 in doubt" : "") << ")";
      return false;
    }
    ADD_FAILURE() << token << ": resync did not converge";
    return false;
  }

  /// First-time setup of a durable session: open (or re-attach), install
  /// the base rule, complete the first run so durability engages.
  bool OpenSession(ServeClient& client, const std::string& token) {
    const auto deadline = RetryDeadline();
    for (bool first = true; std::chrono::steady_clock::now() < deadline;
         first = false) {
      if (!first) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      if (!EnsureConnected(client)) return false;
      Result<std::string> r = client.Call("attach " + token);
      if (!r.ok()) {
        if (r.status().code() == StatusCode::kIoError) {
          client.Close();
          continue;
        }
        r = client.Call("open durable token=" + token);
        if (!r.ok()) {
          if (r.status().code() == StatusCode::kIoError) client.Close();
          continue;  // AlreadyExists loops back into attach
        }
      }
      Result<std::string> rules = client.Call("rules");
      if (!rules.ok()) {
        if (rules.status().code() == StatusCode::kIoError) client.Close();
        continue;
      }
      if (rules->find("rules=0") != std::string::npos) {
        Result<std::string> add =
            client.Call(std::string("add_rule ") + kBaseRule);
        if (!add.ok()) {
          // Indeterminate or refused: loop re-reads `rules` and only
          // re-adds if the rule really is absent.
          if (add.status().code() == StatusCode::kIoError) client.Close();
          continue;
        }
      }
      Result<std::string> run = client.Call("run");
      if (run.ok()) return true;
      if (run.status().code() == StatusCode::kIoError) client.Close();
      // run is idempotent: any failure just retries
    }
    ADD_FAILURE() << token << ": open did not converge";
    return false;
  }

  /// One edit, driven to a *settled* outcome: acknowledged (and recorded
  /// in `applied`) or proven never-applied. Returns false only on an
  /// invariant violation.
  bool RobustEdit(ServeClient& client, const std::string& token,
                  std::vector<std::string>& applied,
                  const std::string& cmd) {
    const auto deadline = RetryDeadline();
    for (bool first = true; std::chrono::steady_clock::now() < deadline;
         first = false) {
      if (!first) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      if (!EnsureConnected(client)) return false;
      Result<std::string> r = client.Call(cmd);
      if (r.ok()) {
        applied.push_back(cmd);
        return true;
      }
      switch (r.status().code()) {
        case StatusCode::kIoError: {
          // Journal failure (session degraded, edit in doubt) or the
          // connection died mid-call (ditto). Resolve via digest.
          client.Close();
          if (!Resync(client, token, applied, &cmd)) return false;
          if (!applied.empty() && applied.back() == cmd) return true;
          break;  // proven not applied: retry
        }
        case StatusCode::kFailedPrecondition: {
          // Degraded by an earlier failure, or attach lost in a race.
          if (!Resync(client, token, applied, nullptr)) return false;
          break;
        }
        case StatusCode::kResourceExhausted:
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          break;
        default:
          ADD_FAILURE() << token << ": " << cmd << " -> "
                        << r.status().message();
          return false;
      }
    }
    ADD_FAILURE() << token << ": edit did not settle: " << cmd;
    return false;
  }

  static std::shared_ptr<const Table> a_;
  static std::shared_ptr<const Table> b_;
  static std::shared_ptr<const CandidateSet> pairs_;

  std::string dir_;
  std::unique_ptr<Server> server_;
};

std::shared_ptr<const Table> SoakTest::a_;
std::shared_ptr<const Table> SoakTest::b_;
std::shared_ptr<const CandidateSet> SoakTest::pairs_;
constexpr char SoakTest::kBaseRule[];

TEST_F(SoakTest, NoAcknowledgedEditLostUnderFaultsAndCrashes) {
  // Deterministic hostile environment: every 7th journal fsync fails,
  // ~3% of connection reads drop the connection (fixed seed), every 9th
  // request stalls its worker.
  FaultInjection::Plan fsync;
  fsync.every = 7;
  FaultInjection::Arm("journal.fsync", fsync);
  FaultInjection::Plan drop;
  drop.probability = 0.03;
  drop.seed = 11;
  FaultInjection::Arm("serve.read", drop);
  FaultInjection::Plan slow;
  slow.every = 9;
  FaultInjection::Arm("serve.slow_task", slow);

  StartServer();
  std::vector<std::vector<std::string>> applied(kSessions);

  for (int cycle = 0; cycle < kCycles; ++cycle) {
    std::vector<std::thread> threads;
    std::atomic<int> failed{0};
    for (int i = 0; i < kSessions; ++i) {
      threads.emplace_back([&, i] {
        const std::string token = "soak" + std::to_string(i);
        ServeClient client;
        const bool up = cycle == 0
                            ? OpenSession(client, token)
                            : Resync(client, token, applied[i], nullptr);
        if (!up) {
          failed.fetch_add(1);
          return;
        }
        for (int k = 0; k < kEditsPerCycle; ++k) {
          const std::string cmd =
              EditCommand(i, cycle * kEditsPerCycle + k);
          if (!RobustEdit(client, token, applied[i], cmd)) {
            failed.fetch_add(1);
            return;
          }
        }
        client.Close();
      });
    }
    for (std::thread& t : threads) t.join();
    ASSERT_EQ(failed.load(), 0) << "cycle " << cycle;

    // kill -9: no drain, no checkpoints. Acked edits are fsync'd.
    server_->Abort();
    server_.reset();
    StartServer();
  }

  // Final reckoning: every session recovered from the crash must be
  // bit-identical to the fault-free serial replay of its acked edits.
  for (int i = 0; i < kSessions; ++i) {
    const std::string token = "soak" + std::to_string(i);
    ServeClient client;
    EXPECT_TRUE(Resync(client, token, applied[i], nullptr)) << token;
    EXPECT_GT(applied[i].size(), 0u) << token << " made no progress";
  }

  // The hostile environment actually fired: otherwise this proves little.
  EXPECT_GT(FaultInjection::Failures("journal.fsync"), 0u);
  const Server::Stats stats = server_->stats();
  EXPECT_GT(stats.sessions_resumed, 0u);
  server_->Shutdown();
}

TEST_F(SoakTest, OverloadShedsButNeverWedges) {
  // Admission-control soak: more clients than the session table allows.
  // Every open must get a definite answer — a token or an explicit
  // ResourceExhausted — and the survivors must stay fully functional.
  Server::Options tight;
  tight.num_workers = 2;
  tight.max_sessions = 3;
  tight.durability_root = dir_;
  server_ = std::make_unique<Server>(a_, b_, pairs_, tight);
  ASSERT_TRUE(server_->Start().ok());

  constexpr int kClients = 10;
  std::atomic<int> opened{0};
  std::atomic<int> shed{0};
  std::atomic<int> odd{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Result<ServeClient> c =
          ServeClient::Connect("127.0.0.1", server_->port());
      if (!c.ok()) {
        odd.fetch_add(1);
        return;
      }
      Result<std::string> r =
          c->Call("open token=ov" + std::to_string(i));
      if (r.ok()) {
        opened.fetch_add(1);
        // An admitted session must still do real work under overload.
        if (!c->Call("add_rule r: jaccard(title, title) >= 0.5").ok() ||
            !c->Call("run").ok()) {
          odd.fetch_add(1);
        }
      } else if (r.status().code() == StatusCode::kResourceExhausted) {
        shed.fetch_add(1);
      } else {
        odd.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(odd.load(), 0);
  EXPECT_EQ(opened.load(), 3) << "exactly max_sessions admitted";
  EXPECT_EQ(shed.load(), kClients - 3);
  EXPECT_GE(server_->stats().requests_shed, static_cast<uint64_t>(7));
  // And the server shuts down cleanly with sessions still open.
  server_->Shutdown();
}

}  // namespace
}  // namespace emdbg
