#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "src/serve/session_digest.h"
#include "src/serve/wire.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

// ---------------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------------

TEST(WireTest, EncodeFrameRoundTripsThroughExtract) {
  std::string buffer;
  EncodeFrame("set_threshold 0 1 0.8", &buffer);
  EncodeFrame("run", &buffer);
  EncodeFrame("", &buffer);  // empty payloads are legal frames

  std::string payload;
  bool error = false;
  ASSERT_TRUE(ExtractFrame(&buffer, &payload, kMaxFrameBytes, &error));
  EXPECT_EQ(payload, "set_threshold 0 1 0.8");
  ASSERT_TRUE(ExtractFrame(&buffer, &payload, kMaxFrameBytes, &error));
  EXPECT_EQ(payload, "run");
  ASSERT_TRUE(ExtractFrame(&buffer, &payload, kMaxFrameBytes, &error));
  EXPECT_EQ(payload, "");
  EXPECT_FALSE(ExtractFrame(&buffer, &payload, kMaxFrameBytes, &error));
  EXPECT_FALSE(error);
  EXPECT_TRUE(buffer.empty());
}

TEST(WireTest, DecodeFrameLengthIsLittleEndian) {
  const char header[4] = {0x15, 0x00, 0x00, 0x00};
  EXPECT_EQ(DecodeFrameLength(header), 0x15u);
  const char big[4] = {0x01, 0x02, 0x03, 0x04};
  EXPECT_EQ(DecodeFrameLength(big), 0x04030201u);
}

TEST(WireTest, ExtractFrameWaitsForCompleteHeader) {
  std::string buffer;
  EncodeFrame("ping", &buffer);
  const std::string whole = buffer;

  std::string payload;
  bool error = false;
  // Feed byte by byte: no frame until the last byte arrives.
  buffer.clear();
  for (size_t i = 0; i < whole.size(); ++i) {
    buffer.push_back(whole[i]);
    const bool got = ExtractFrame(&buffer, &payload, kMaxFrameBytes, &error);
    EXPECT_FALSE(error);
    if (i + 1 < whole.size()) {
      EXPECT_FALSE(got) << "frame surfaced " << (whole.size() - i - 1)
                        << " bytes early";
    } else {
      EXPECT_TRUE(got);
      EXPECT_EQ(payload, "ping");
    }
  }
}

TEST(WireTest, ExtractFrameRejectsOversizedLength) {
  std::string buffer;
  EncodeFrame("this payload is longer than the cap", &buffer);
  std::string payload;
  bool error = false;
  EXPECT_FALSE(ExtractFrame(&buffer, &payload, /*max_frame=*/8, &error));
  EXPECT_TRUE(error) << "an oversized header is fatal for the connection";
}

TEST(WireTest, ExtractFrameLeavesFollowingBytesIntact) {
  std::string buffer;
  EncodeFrame("first", &buffer);
  buffer += "trailing-partial";
  std::string payload;
  bool error = false;
  ASSERT_TRUE(ExtractFrame(&buffer, &payload, kMaxFrameBytes, &error));
  EXPECT_EQ(payload, "first");
  EXPECT_EQ(buffer, "trailing-partial");
}

// ---------------------------------------------------------------------------
// Blocking fd IO (over a pipe; sockets go through the same code path).
// ---------------------------------------------------------------------------

class WireFdTest : public ::testing::Test {
 protected:
  WireFdTest() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::pipe(fds), 0);
    read_fd_ = fds[0];
    write_fd_ = fds[1];
  }
  ~WireFdTest() override {
    if (read_fd_ >= 0) ::close(read_fd_);
    if (write_fd_ >= 0) ::close(write_fd_);
  }
  int read_fd_ = -1;
  int write_fd_ = -1;
};

TEST_F(WireFdTest, WriteThenReadRoundTrips) {
  ASSERT_TRUE(WriteFrameFd(write_fd_, "hello frame").ok());
  ASSERT_TRUE(WriteFrameFd(write_fd_, "").ok());
  std::string payload;
  ASSERT_TRUE(ReadFrameFd(read_fd_, &payload).ok());
  EXPECT_EQ(payload, "hello frame");
  ASSERT_TRUE(ReadFrameFd(read_fd_, &payload).ok());
  EXPECT_EQ(payload, "");
}

TEST_F(WireFdTest, CleanEofIsIoError) {
  ::close(write_fd_);
  write_fd_ = -1;
  std::string payload;
  EXPECT_EQ(ReadFrameFd(read_fd_, &payload).code(), StatusCode::kIoError);
}

TEST_F(WireFdTest, EofMidFrameIsIoError) {
  // Header promising 100 bytes, then the peer dies after 3.
  const char header[4] = {100, 0, 0, 0};
  ASSERT_EQ(::write(write_fd_, header, 4), 4);
  ASSERT_EQ(::write(write_fd_, "abc", 3), 3);
  ::close(write_fd_);
  write_fd_ = -1;
  std::string payload;
  EXPECT_EQ(ReadFrameFd(read_fd_, &payload).code(), StatusCode::kIoError);
}

TEST_F(WireFdTest, OversizedLengthIsParseError) {
  const uint32_t huge = kMaxFrameBytes + 1;
  char header[4];
  std::memcpy(header, &huge, 4);
  ASSERT_EQ(::write(write_fd_, header, 4), 4);
  std::string payload;
  EXPECT_EQ(ReadFrameFd(read_fd_, &payload).code(), StatusCode::kParseError);
}

TEST_F(WireFdTest, LargePayloadSurvivesPipeBuffering) {
  // Bigger than a default pipe buffer (64 KiB), so the writer must block
  // and resume: exercises the partial-write loop in WriteFrameFd.
  const std::string big(300 * 1024, 'x');
  std::thread writer(
      [&] { EXPECT_TRUE(WriteFrameFd(write_fd_, big).ok()); });
  std::string payload;
  ASSERT_TRUE(ReadFrameFd(read_fd_, &payload).ok());
  EXPECT_EQ(payload, big);
  writer.join();
}

// ---------------------------------------------------------------------------
// Session state digest.
// ---------------------------------------------------------------------------

class SessionDigestTest : public ::testing::Test {
 protected:
  static std::unique_ptr<DebugSession> NewSession() {
    GeneratedDataset ds = testing::SmallProducts();
    return std::make_unique<DebugSession>(
        std::move(ds.a), std::move(ds.b), std::move(ds.candidates));
  }
};

TEST_F(SessionDigestTest, IdenticalHistoriesGiveIdenticalDigests) {
  auto s1 = NewSession();
  auto s2 = NewSession();
  for (DebugSession* s : {s1.get(), s2.get()}) {
    ASSERT_TRUE(s->AddRuleText("r1: jaccard(title, title) >= 0.5").ok());
    ASSERT_TRUE(s->AddRuleText("r2: jaccard(brand, brand) >= 0.7").ok());
  }
  EXPECT_EQ(SessionStateDigest(*s1), SessionStateDigest(*s2));
}

TEST_F(SessionDigestTest, DigestSeesRuleAndThresholdChanges) {
  auto s1 = NewSession();
  auto s2 = NewSession();
  for (DebugSession* s : {s1.get(), s2.get()}) {
    ASSERT_TRUE(s->AddRuleText("r1: jaccard(title, title) >= 0.5").ok());
  }
  const uint32_t same = SessionStateDigest(*s1);
  ASSERT_EQ(same, SessionStateDigest(*s2));

  // A threshold nudge too small to change any match decision must still
  // change the digest: the rule text is part of the fingerprint.
  const Rule& r1 = s2->function().rule(0);
  ASSERT_TRUE(s2->SetThreshold(r1.id(), r1.predicate(0).id, 0.5001).ok());
  EXPECT_NE(SessionStateDigest(*s2), same);
}

TEST_F(SessionDigestTest, DigestForcesARun) {
  auto s = NewSession();
  ASSERT_TRUE(s->AddRuleText("r1: jaccard(title, title) >= 0.5").ok());
  EXPECT_FALSE(s->has_run());
  (void)SessionStateDigest(*s);
  EXPECT_TRUE(s->has_run()) << "the digest covers match decisions, so it "
                               "must bring the session up to date first";
}

TEST_F(SessionDigestTest, EmptyRuleSetHasAStableDigest) {
  auto s1 = NewSession();
  auto s2 = NewSession();
  EXPECT_EQ(SessionStateDigest(*s1), SessionStateDigest(*s2));
  ASSERT_TRUE(s2->AddRuleText("r1: jaccard(title, title) >= 0.5").ok());
  EXPECT_NE(SessionStateDigest(*s1), SessionStateDigest(*s2));
}

}  // namespace
}  // namespace emdbg
