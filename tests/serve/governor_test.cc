#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/serve/client.h"
#include "src/serve/retrying_client.h"
#include "src/serve/server.h"
#include "src/util/fault_injection.h"
#include "tests/test_util.h"

namespace emdbg {
namespace {

/// Resource-governor serve tests: admission under a memory budget,
/// per-session quotas, idempotency-key replay, the watchdog, governor
/// stats, connect timeouts, and the retrying client's exactly-once
/// behaviour under injected lost acknowledgements. Same in-process
/// real-socket setup as server_test.cc.
class GovernorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratedDataset ds = testing::SmallProducts();
    a_ = std::make_shared<const Table>(std::move(ds.a));
    b_ = std::make_shared<const Table>(std::move(ds.b));
    pairs_ = std::make_shared<const CandidateSet>(std::move(ds.candidates));
  }

  GovernorTest()
      : dir_(::testing::TempDir() + "/emdbg_governor_" +
             ::testing::UnitTest::GetInstance()
                 ->current_test_info()
                 ->name()) {
    std::filesystem::remove_all(dir_);
    FaultInjection::DisarmAll();
  }

  ~GovernorTest() override {
    if (server_) server_->Shutdown();
    FaultInjection::DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  Server::Options BaseOptions() {
    Server::Options o;
    o.num_workers = 2;
    o.durability_root = dir_;
    return o;
  }

  void StartServer(const Server::Options& options) {
    server_ = std::make_unique<Server>(a_, b_, pairs_, options);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  ServeClient Connect() {
    Result<ServeClient> c = ServeClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(c.ok()) << c.status().message();
    return c.ok() ? std::move(*c) : ServeClient();
  }

  /// Pulls "<key>=<N>" out of a stats/response body (-1 when absent).
  static long StatValue(const std::string& body, const std::string& key) {
    const size_t pos = body.find(key + "=");
    if (pos == std::string::npos) return -1;
    return std::atol(body.c_str() + pos + key.size() + 1);
  }

  static std::shared_ptr<const Table> a_;
  static std::shared_ptr<const Table> b_;
  static std::shared_ptr<const CandidateSet> pairs_;

  std::string dir_;
  std::unique_ptr<Server> server_;
};

std::shared_ptr<const Table> GovernorTest::a_;
std::shared_ptr<const Table> GovernorTest::b_;
std::shared_ptr<const CandidateSet> GovernorTest::pairs_;

// ---------------------------------------------------------------------------
// Satellite: Connect with a timeout against a socket that never accepts.
// ---------------------------------------------------------------------------

TEST_F(GovernorTest, ConnectTimesOutAgainstANonAcceptingSocket) {
  // A listener with a minimal backlog that never calls accept(): once the
  // accept queue is full the kernel stops completing handshakes, and a
  // blocking connect would hang on SYN retransmits. The bounded Connect
  // must give up with DeadlineExceeded instead.
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(lfd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(::listen(lfd, 1), 0);
  socklen_t alen = sizeof(addr);
  ASSERT_EQ(::getsockname(lfd, reinterpret_cast<sockaddr*>(&addr), &alen), 0);
  const uint16_t port = ntohs(addr.sin_port);

  // Fill the accept queue with throwaway connections until a bounded
  // connect starts timing out.
  std::vector<ServeClient> filler;
  bool timed_out = false;
  Status last = Status::Ok();
  for (int i = 0; i < 64 && !timed_out; ++i) {
    Result<ServeClient> c = ServeClient::Connect("127.0.0.1", port, 250);
    if (c.ok()) {
      filler.push_back(std::move(*c));
      continue;
    }
    last = c.status();
    timed_out = last.code() == StatusCode::kDeadlineExceeded;
  }
  ::close(lfd);
  if (!timed_out && last.ok()) {
    // Some kernels keep completing handshakes far past the backlog; the
    // timeout path is then unreachable from userspace.
    GTEST_SKIP() << "kernel kept accepting past the backlog";
  }
  EXPECT_TRUE(timed_out) << last.message();
  EXPECT_NE(last.message().find("timed out"), std::string::npos)
      << last.message();
}

TEST_F(GovernorTest, BoundedConnectStillReachesALiveServer) {
  StartServer(BaseOptions());
  Result<ServeClient> c =
      ServeClient::Connect("127.0.0.1", server_->port(), 2000);
  ASSERT_TRUE(c.ok()) << c.status().message();
  Result<std::string> pong = c->Call("ping");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(*pong, "pong");
}

// ---------------------------------------------------------------------------
// Idempotency keys.
// ---------------------------------------------------------------------------

TEST_F(GovernorTest, IdempotentRetryReplaysInsteadOfReapplying) {
  StartServer(BaseOptions());
  ServeClient c = Connect();
  ASSERT_TRUE(c.Call("open").ok());

  const std::string cmd = "idem=k1 add_rule r1: jaccard(title, title) >= 0.5";
  Result<std::string> first = c.Call(cmd);
  ASSERT_TRUE(first.ok()) << first.status().message();
  // A client that never saw the ack re-sends the identical frame; the
  // server must answer from the window, not run the edit again.
  Result<std::string> second = c.Call(cmd);
  ASSERT_TRUE(second.ok()) << second.status().message();
  EXPECT_EQ(*first, *second);

  Result<std::string> rules = c.Call("rules");
  ASSERT_TRUE(rules.ok());
  EXPECT_NE(rules->find("rules=1"), std::string::npos) << *rules;

  // A different key is a different request.
  ASSERT_TRUE(
      c.Call("idem=k2 add_rule r2: jaccard(brand, brand) >= 0.4").ok());
  rules = c.Call("rules");
  ASSERT_TRUE(rules.ok());
  EXPECT_NE(rules->find("rules=2"), std::string::npos) << *rules;

  Result<std::string> stats = c.Call("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(StatValue(*stats, "replays"), 1) << *stats;
}

TEST_F(GovernorTest, ErrorsAreNotRecordedInTheIdempotencyWindow) {
  StartServer(BaseOptions());
  ServeClient c = Connect();
  ASSERT_TRUE(c.Call("open").ok());
  // The first attempt fails (bad DSL reference); a retry under the same
  // key must re-execute — replaying a stored error would wedge a client
  // retrying a transient failure forever.
  Result<std::string> bad = c.Call("idem=k1 remove_rule 7");
  EXPECT_FALSE(bad.ok());
  Result<std::string> again = c.Call("idem=k1 remove_rule 7");
  EXPECT_FALSE(again.ok());
  Result<std::string> stats = c.Call("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(StatValue(*stats, "replays"), 0) << *stats;
}

TEST_F(GovernorTest, MalformedIdemKeyIsRejectedUpFront) {
  StartServer(BaseOptions());
  ServeClient c = Connect();
  ASSERT_TRUE(c.Call("open").ok());
  Result<std::string> r = c.Call("idem= add_rule r1: jaccard(title, title) >= 0.5");
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  r = c.Call("idem=" + std::string(65, 'x') + " rules");
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

// ---------------------------------------------------------------------------
// Budget / quota admission and denial.
// ---------------------------------------------------------------------------

TEST_F(GovernorTest, HopelessBudgetDeniesRunsWithARetryHint) {
  Server::Options o = BaseOptions();
  // The run's memo matrix alone needs pairs × features × 4 bytes (3600
  // here); cache layers degrade gracefully below that, but the memo
  // reservation is load-bearing and must surface as a denial.
  o.mem_budget_bytes = 2048;
  o.retry_after_ms = 75;
  StartServer(o);
  ServeClient c = Connect();
  ASSERT_TRUE(c.Call("open").ok());
  ASSERT_TRUE(c.Call("add_rule r1: jaccard(title, title) >= 0.5").ok());
  Result<std::string> run = c.Call("run");
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted)
      << run.status().message();
  // The shed response carries the server's configured backoff hint.
  EXPECT_NE(run.status().message().find("retry_after_ms=75"),
            std::string::npos)
      << run.status().message();

  Result<std::string> stats = c.Call("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(StatValue(*stats, "mem_limit"), 2048) << *stats;
  EXPECT_GE(StatValue(*stats, "mem_denials"), 1) << *stats;

  // The denial committed nothing: the session still edits fine.
  EXPECT_TRUE(c.Call("add_rule r2: jaccard(brand, brand) >= 0.9").ok());
}

TEST_F(GovernorTest, SessionQuotaDenialNamesTheSessionAndSparesNeighbours) {
  Server::Options o = BaseOptions();
  o.session_quota_bytes = 2048;  // unlimited root, starved children
  StartServer(o);
  ServeClient c1 = Connect();
  ASSERT_TRUE(c1.Call("open").ok());
  ASSERT_TRUE(c1.Call("add_rule r1: jaccard(title, title) >= 0.5").ok());
  Result<std::string> run = c1.Call("run");
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kResourceExhausted);
  // The message points at the session's own quota, not the server budget.
  EXPECT_NE(run.status().message().find("session/"), std::string::npos)
      << run.status().message();

  // A neighbour is wholly unaffected by session 1 hitting its quota.
  ServeClient c2 = Connect();
  ASSERT_TRUE(c2.Call("open").ok());
  ASSERT_TRUE(c2.Call("add_rule q1: jaccard(title, title) >= 0.9").ok());
  Result<std::string> rules = c2.Call("rules");
  ASSERT_TRUE(rules.ok());
  EXPECT_NE(rules->find("rules=1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Governor stats & watchdog.
// ---------------------------------------------------------------------------

TEST_F(GovernorTest, StatsExposeGovernorByteCounts) {
  Server::Options o = BaseOptions();
  o.mem_budget_bytes = 256u << 20;
  StartServer(o);
  ServeClient c = Connect();
  ASSERT_TRUE(c.Call("open").ok());
  ASSERT_TRUE(c.Call("add_rule r1: jaccard(title, title) >= 0.5").ok());
  ASSERT_TRUE(c.Call("run").ok());
  // The per-consumer byte counts only cover idle sessions; the run's
  // worker clears the running flag just after acknowledging, so poll
  // briefly.
  long memo = -1;
  std::string body;
  for (int i = 0; i < 100 && memo <= 0; ++i) {
    Result<std::string> stats = c.Call("stats");
    ASSERT_TRUE(stats.ok());
    body = *stats;
    memo = StatValue(body, "memo_bytes");
    if (memo <= 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(memo, 0) << body;
  EXPECT_GT(StatValue(body, "mem_used"), 0) << body;
  EXPECT_EQ(StatValue(body, "mem_limit"), long{256} << 20) << body;
  EXPECT_GE(StatValue(body, "interner_bytes"), 0) << body;
  EXPECT_GE(StatValue(body, "token_bytes"), 0) << body;
  EXPECT_GE(StatValue(body, "id_bytes"), 0) << body;
  // Releasing the session drains its billing from the shared budget.
  ASSERT_TRUE(c.Call("close").ok());
  long used = -1;
  for (int i = 0; i < 100 && used != 0; ++i) {
    Result<std::string> stats = c.Call("stats");
    ASSERT_TRUE(stats.ok());
    body = *stats;
    used = StatValue(body, "mem_used");
    if (used != 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(used, 0) << body;
}

TEST_F(GovernorTest, WatchdogFlagsTasksStuckPastTheThreshold) {
  Server::Options o = BaseOptions();
  o.watchdog_interval_ms = 5;
  o.stuck_task_ms = 1;
  StartServer(o);
  ServeClient c = Connect();
  ASSERT_TRUE(c.Call("open").ok());
  // serve.slow_task stalls the worker inside ExecuteRequest long enough
  // for several watchdog sweeps to see it running.
  FaultInjection::Plan plan;
  plan.every = 1;
  FaultInjection::Arm("serve.slow_task", plan);
  ASSERT_TRUE(c.Call("add_rule r1: jaccard(title, title) >= 0.5").ok());
  FaultInjection::DisarmAll();
  Result<std::string> stats = c.Call("stats");
  ASSERT_TRUE(stats.ok());
  // Flagged once per stuck task, not once per sweep.
  EXPECT_EQ(StatValue(*stats, "stuck"), 1) << *stats;
}

// ---------------------------------------------------------------------------
// RetryingClient: exactly-once under lost acknowledgements.
// ---------------------------------------------------------------------------

TEST_F(GovernorTest, RetryingClientReplaysLostAcksWithoutReapplying) {
  StartServer(BaseOptions());
  RetryPolicy policy;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 10;
  RetryingClient rc("127.0.0.1", server_->port(), policy);
  ASSERT_TRUE(rc.Open(false).ok());
  ASSERT_FALSE(rc.token().empty());

  // Eat the next acknowledgement client-side: the server applied the
  // edit and answered, but the client never saw it.
  FaultInjection::Plan plan;
  plan.every = 0;  // exactly once
  FaultInjection::Arm("serve.retry", plan);
  Result<std::string> add =
      rc.Call("add_rule r1: jaccard(title, title) >= 0.5");
  FaultInjection::DisarmAll();
  ASSERT_TRUE(add.ok()) << add.status().message();
  EXPECT_GE(rc.retries(), 1u);

  Result<std::string> rules = rc.Call("rules");
  ASSERT_TRUE(rules.ok());
  EXPECT_NE(rules->find("rules=1"), std::string::npos) << *rules;

  Result<std::string> stats = rc.Call("stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(StatValue(*stats, "replays"), 1) << *stats;
}

TEST_F(GovernorTest, RetryingClientBacksOffThroughSheddingAndSucceeds) {
  Server::Options o = BaseOptions();
  o.retry_after_ms = 1;
  StartServer(o);
  RetryPolicy policy;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 5;
  policy.max_attempts = 8;
  RetryingClient rc("127.0.0.1", server_->port(), policy);
  // The first few session allocations fail with an injected shed; the
  // retry loop must ride through the ResourceExhausted responses.
  FaultInjection::Plan plan;
  plan.every = 1;
  plan.max_failures = 3;
  FaultInjection::Arm("serve.session", plan);
  Status open = rc.Open(false);
  FaultInjection::DisarmAll();
  ASSERT_TRUE(open.ok()) << open.message();
  EXPECT_GE(rc.retries(), 3u);
  ASSERT_TRUE(rc.Call("add_rule r1: jaccard(title, title) >= 0.5").ok());
  Result<std::string> rules = rc.Call("rules");
  ASSERT_TRUE(rules.ok());
  EXPECT_NE(rules->find("rules=1"), std::string::npos);
}

TEST_F(GovernorTest, RetryingClientResumesADurableSessionAfterACrash) {
  Server::Options o = BaseOptions();
  StartServer(o);
  const uint16_t port = server_->port();
  RetryPolicy policy;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 20;
  policy.max_attempts = 8;
  auto rc = std::make_unique<RetryingClient>("127.0.0.1", port, policy);
  ASSERT_TRUE(rc->Open(true).ok());
  const std::string token = rc->token();
  ASSERT_TRUE(rc->Call("add_rule r1: jaccard(title, title) >= 0.5").ok());
  // The first run snapshots the session and switches the journal on;
  // only acknowledged state after this point survives a crash.
  ASSERT_TRUE(rc->Call("run").ok());

  // kill -9 equivalent: acknowledged edits are on disk, the live session
  // is gone.
  server_->Abort();
  server_.reset();
  Server::Options o2 = BaseOptions();
  o2.port = port;
  server_ = std::make_unique<Server>(a_, b_, pairs_, o2);
  Status started = Status::Ok();
  for (int i = 0; i < 50; ++i) {
    started = server_->Start();
    if (started.ok()) break;
    // The old listener may linger in TIME_WAIT briefly.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    server_ = std::make_unique<Server>(a_, b_, pairs_, o2);
  }
  ASSERT_TRUE(started.ok()) << started.message();

  // The next call reconnects, finds the session missing, and resumes it
  // from the journal without the caller doing anything.
  Result<std::string> rules = rc->Call("rules");
  ASSERT_TRUE(rules.ok()) << rules.status().message();
  EXPECT_NE(rules->find("rules=1"), std::string::npos) << *rules;
  EXPECT_EQ(rc->token(), token);
}

}  // namespace
}  // namespace emdbg
