/// Regenerates Fig. 3C: DM+EE matching run time versus rule-set size under
/// three orderings — random, Algorithm 5 (greedy expected cost), and
/// Algorithm 6 (greedy expected reduction). Cost model estimated on a 1%
/// sample (Sec. 7.3). Optimizer time is reported separately so the
/// matching-time comparison is apples to apples.
///
/// Expected shape: both greedy orders beat random; Algorithm 6 is the
/// fastest, with the gap narrowing as the rule count grows (most features
/// end up computed anyway).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/memo_matcher.h"
#include "src/core/ordering.h"
#include "src/util/stopwatch.h"

namespace emdbg::bench {
namespace {

struct Timing {
  double match_ms = 0.0;
  double optimize_ms = 0.0;
};

Timing TimeOrdered(const BenchEnv& env, MatchingFunction fn,
                   OrderingStrategy strategy, const CostModel& model,
                   Rng* rng) {
  Timing t;
  Stopwatch opt_timer;
  ApplyOrdering(fn, strategy, model, rng);
  t.optimize_ms = opt_timer.ElapsedMillis();
  MemoMatcher matcher(MemoMatcher::Options{.check_cache_first = true});
  Stopwatch timer;
  matcher.Run(fn, env.ds.candidates, *env.ctx);
  t.match_ms = timer.ElapsedMillis();
  return t;
}

void Run(const BenchOptions& opts) {
  const BenchEnv env = BenchEnv::Make(opts);
  PrintHeader("Figure 3C: DM+EE run time (ms) under rule orderings", opts,
              env);
  const std::vector<size_t> rule_counts{5, 10, 20, 40, 80, 160, 240};
  std::printf("%6s %12s %12s %12s %14s %14s\n", "rules", "random", "alg5",
              "alg6", "alg5_opt_ms", "alg6_opt_ms");
  Rng rng(77);
  for (const size_t n : rule_counts) {
    if (n > opts.rules) break;
    Timing random_t;
    Timing alg5_t;
    Timing alg6_t;
    for (size_t rep = 0; rep < opts.reps; ++rep) {
      const MatchingFunction fn = env.RuleSubset(n, 2000 + rep);
      const CostModel model =
          CostModel::EstimateForFunction(fn, *env.ctx, env.sample);
      const Timing r =
          TimeOrdered(env, fn, OrderingStrategy::kRandom, model, &rng);
      const Timing a5 =
          TimeOrdered(env, fn, OrderingStrategy::kGreedyCost, model, &rng);
      const Timing a6 = TimeOrdered(
          env, fn, OrderingStrategy::kGreedyReduction, model, &rng);
      random_t.match_ms += r.match_ms;
      alg5_t.match_ms += a5.match_ms;
      alg5_t.optimize_ms += a5.optimize_ms;
      alg6_t.match_ms += a6.match_ms;
      alg6_t.optimize_ms += a6.optimize_ms;
    }
    const double reps = static_cast<double>(opts.reps);
    std::printf("%6zu %12.1f %12.1f %12.1f %14.1f %14.1f\n", n,
                random_t.match_ms / reps, alg5_t.match_ms / reps,
                alg6_t.match_ms / reps, alg5_t.optimize_ms / reps,
                alg6_t.optimize_ms / reps);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace emdbg::bench

int main(int argc, char** argv) {
  emdbg::bench::Run(emdbg::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
