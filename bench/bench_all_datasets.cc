/// Cross-dataset sweep (Sec. 7.1: "Experiments with the remaining five
/// data sets show similar results"). For each of the six Table 2
/// datasets, runs DM+EE under random and Algorithm 6 orderings plus one
/// incremental add-rule edit, and reports the speedups. The paper's
/// qualitative claims should hold on every dataset, not just Products.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/incremental.h"
#include "src/core/memo_matcher.h"
#include "src/core/ordering.h"
#include "src/util/stopwatch.h"

namespace emdbg::bench {
namespace {

void Run(const BenchOptions& opts) {
  std::printf("## All six datasets: ordering + incremental speedups\n");
  std::printf("# scale=%.3g rules=%zu\n", opts.scale, opts.rules);
  std::printf("%-12s %9s | %9s %9s %9s %8s | %10s %12s\n", "dataset",
              "pairs", "rand_ms", "alg5_ms", "alg6_ms", "speedup",
              "addrule_ms", "full_run_ms");
  for (int i = 0; i < kNumDatasets; ++i) {
    BenchOptions local = opts;
    local.dataset = static_cast<DatasetId>(i);
    const BenchEnv env = BenchEnv::Make(local);
    MatchingFunction fn = env.RuleSubset(opts.rules, 31000 + i);
    const CostModel model =
        CostModel::EstimateForFunction(fn, *env.ctx, env.sample);

    // Random (averaged over reps draws) vs greedy orderings.
    Rng rng(3);
    MemoMatcher matcher;
    double random_ms = 0.0;
    for (size_t rep = 0; rep < opts.reps; ++rep) {
      MatchingFunction random_fn = fn;
      ApplyOrdering(random_fn, OrderingStrategy::kRandom, model, &rng);
      Stopwatch t1;
      matcher.Run(random_fn, env.ds.candidates, *env.ctx);
      random_ms += t1.ElapsedMillis();
    }
    random_ms /= static_cast<double>(opts.reps);

    auto time_greedy = [&](OrderingStrategy strategy) {
      MatchingFunction ordered = fn;
      ApplyOrdering(ordered, strategy, model, nullptr);
      double total = 0.0;
      for (size_t rep = 0; rep < opts.reps; ++rep) {
        Stopwatch timer;
        matcher.Run(ordered, env.ds.candidates, *env.ctx);
        total += timer.ElapsedMillis();
      }
      return total / static_cast<double>(opts.reps);
    };
    const double alg5_ms = time_greedy(OrderingStrategy::kGreedyCost);
    const double alg6_ms = time_greedy(OrderingStrategy::kGreedyReduction);

    MatchingFunction alg6_fn = fn;
    ApplyOrdering(alg6_fn, OrderingStrategy::kGreedyReduction, model,
                  nullptr);

    // Incremental add-rule vs the full run that built the state.
    IncrementalMatcher inc(*env.ctx, env.ds.candidates);
    Stopwatch t3;
    inc.FullRun(alg6_fn);
    const double full_ms = t3.ElapsedMillis();
    Rng edit_rng(4);
    auto stats = inc.AddRule(env.generator->GenerateRule(edit_rng));
    const double add_ms = stats.ok() ? stats->elapsed_ms : -1.0;

    const double best_greedy = std::min(alg5_ms, alg6_ms);
    std::printf("%-12s %9zu | %9.1f %9.1f %9.1f %8.2f | %10.2f %12.1f\n",
                env.profile.name.c_str(), env.ds.candidates.size(),
                random_ms, alg5_ms, alg6_ms,
                best_greedy > 0 ? random_ms / best_greedy : 0.0, add_ms,
                full_ms);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace emdbg::bench

int main(int argc, char** argv) {
  emdbg::bench::Run(emdbg::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
