/// Regenerates Fig. 6: average incremental run time per type of matching-
/// function change — add predicate, tighten threshold, relax threshold,
/// remove predicate, remove rule, add rule — each averaged over random
/// edits against the full rule set (paper: 100 random edits per type).
///
/// Expected shape (paper): edits that make the function stricter (add
/// predicate, tighten, remove rule) cost single-digit milliseconds, while
/// relaxing edits (relax, remove predicate, add rule) cost more because
/// they may compute fresh features for previously-rejected pairs.
///
/// Methodology matches the paper: each trial applies the measured edit to
/// a fully materialized state, then reverts it (unmeasured) so every trial
/// starts from the same function.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/incremental.h"
#include "src/util/stats.h"

namespace emdbg::bench {
namespace {

struct EditStats {
  RunningStats add_predicate;
  RunningStats tighten;
  RunningStats relax;
  RunningStats remove_predicate;
  RunningStats remove_rule;
  RunningStats add_rule;
};

/// Picks a random (rule position, predicate position) in fn.
std::pair<size_t, size_t> PickPredicate(const MatchingFunction& fn,
                                        Rng& rng) {
  while (true) {
    const size_t rpos = static_cast<size_t>(rng.Uniform(fn.num_rules()));
    const Rule& r = fn.rule(rpos);
    if (r.empty()) continue;
    return {rpos, static_cast<size_t>(rng.Uniform(r.size()))};
  }
}

void Run(const BenchOptions& opts) {
  const BenchEnv env = BenchEnv::Make(opts);
  PrintHeader("Figure 6: avg incremental time per change type (ms)", opts,
              env);
  const size_t kTrials = 100;

  IncrementalMatcher inc(*env.ctx, env.ds.candidates);
  inc.FullRun(env.RuleSubset(opts.rules, 5000));
  Rng rng(8);
  EditStats stats;

  for (size_t trial = 0; trial < kTrials; ++trial) {
    // --- add predicate (measured), then remove it (unmeasured). ---
    {
      const auto [rpos, _] = PickPredicate(inc.function(), rng);
      const RuleId rid = inc.function().rule(rpos).id();
      const Rule donor = env.generator->GenerateRule(rng);
      auto s = inc.AddPredicate(rid, donor.predicate(0));
      if (s.ok()) {
        stats.add_predicate.Add(s->elapsed_ms);
        (void)inc.RemovePredicate(rid, inc.last_added_predicate_id());
      }
    }
    // --- tighten threshold (measured), revert (unmeasured). ---
    {
      const auto [rpos, ppos] = PickPredicate(inc.function(), rng);
      const Rule& r = inc.function().rule(rpos);
      const Predicate p = r.predicate(ppos);
      const double delta = 0.1 * static_cast<double>(rng.UniformInt(1, 5));
      const double t =
          IsLowerBound(p.op)
              ? std::min(1.0, p.threshold + delta)
              : std::max(0.0, p.threshold - delta);
      auto s = inc.SetThreshold(r.id(), p.id, t);
      if (s.ok()) {
        stats.tighten.Add(s->elapsed_ms);
        (void)inc.SetThreshold(r.id(), p.id, p.threshold);
      }
    }
    // --- relax threshold (measured), revert (unmeasured). ---
    {
      const auto [rpos, ppos] = PickPredicate(inc.function(), rng);
      const Rule& r = inc.function().rule(rpos);
      const Predicate p = r.predicate(ppos);
      const double delta = 0.1 * static_cast<double>(rng.UniformInt(1, 5));
      const double t =
          IsLowerBound(p.op)
              ? std::max(0.0, p.threshold - delta)
              : std::min(1.0, p.threshold + delta);
      auto s = inc.SetThreshold(r.id(), p.id, t);
      if (s.ok()) {
        stats.relax.Add(s->elapsed_ms);
        (void)inc.SetThreshold(r.id(), p.id, p.threshold);
      }
    }
    // --- remove predicate (measured), add it back (unmeasured). ---
    {
      const auto [rpos, ppos] = PickPredicate(inc.function(), rng);
      const Rule& r = inc.function().rule(rpos);
      if (r.size() >= 2) {
        const Predicate p = r.predicate(ppos);
        auto s = inc.RemovePredicate(r.id(), p.id);
        if (s.ok()) {
          stats.remove_predicate.Add(s->elapsed_ms);
          (void)inc.AddPredicate(r.id(), p);
        }
      }
    }
    // --- remove rule (measured), add it back (unmeasured). ---
    {
      const size_t rpos =
          static_cast<size_t>(rng.Uniform(inc.function().num_rules()));
      const Rule rule = inc.function().rule(rpos);  // copy before removal
      auto s = inc.RemoveRule(rule.id());
      if (s.ok()) {
        stats.remove_rule.Add(s->elapsed_ms);
        (void)inc.AddRule(rule);
      }
    }
    // --- add rule (measured), remove it (unmeasured). ---
    {
      const Rule rule = env.generator->GenerateRule(rng);
      auto s = inc.AddRule(rule);
      if (s.ok()) {
        stats.add_rule.Add(s->elapsed_ms);
        (void)inc.RemoveRule(inc.last_added_rule_id());
      }
    }
  }

  auto print_row = [](const char* name, const RunningStats& s) {
    std::printf("%-18s %10.3f %10.3f %10.3f %8zu\n", name, s.mean(),
                s.min(), s.max(), s.count());
  };
  std::printf("%-18s %10s %10s %10s %8s\n", "change", "mean_ms", "min_ms",
              "max_ms", "trials");
  print_row("add_predicate", stats.add_predicate);
  print_row("tighten", stats.tighten);
  print_row("remove_rule", stats.remove_rule);
  print_row("relax", stats.relax);
  print_row("remove_predicate", stats.remove_predicate);
  print_row("add_rule", stats.add_rule);
  std::printf("\n");
}

}  // namespace
}  // namespace emdbg::bench

int main(int argc, char** argv) {
  emdbg::bench::Run(emdbg::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
