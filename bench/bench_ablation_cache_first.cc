/// Ablation (Sec. 5.4.3): the check-cache-first runtime optimization. For
/// rule sets of increasing size, runs DM+EE with and without per-pair
/// re-partitioning of predicates by memo presence, and reports feature
/// computations and run time. Check-cache-first can only reduce
/// computations; this quantifies by how much.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/memo_matcher.h"
#include "src/core/ordering.h"

namespace emdbg::bench {
namespace {

void Run(const BenchOptions& opts) {
  const BenchEnv env = BenchEnv::Make(opts);
  PrintHeader("Ablation: check-cache-first (Sec. 5.4.3)", opts, env);
  const std::vector<size_t> rule_counts{10, 40, 160, 240};
  std::printf("%6s %14s %14s %12s %12s\n", "rules", "comp_off", "comp_on",
              "ms_off", "ms_on");
  for (const size_t n : rule_counts) {
    if (n > opts.rules) break;
    size_t comp_off = 0;
    size_t comp_on = 0;
    double ms_off = 0.0;
    double ms_on = 0.0;
    for (size_t rep = 0; rep < opts.reps; ++rep) {
      MatchingFunction fn = env.RuleSubset(n, 6000 + rep);
      const CostModel model =
          CostModel::EstimateForFunction(fn, *env.ctx, env.sample);
      ApplyOrdering(fn, OrderingStrategy::kGreedyReduction, model, nullptr);
      MemoMatcher off(MemoMatcher::Options{.check_cache_first = false});
      MemoMatcher on(MemoMatcher::Options{.check_cache_first = true});
      const MatchResult ro = off.Run(fn, env.ds.candidates, *env.ctx);
      const MatchResult rn = on.Run(fn, env.ds.candidates, *env.ctx);
      comp_off += ro.stats.feature_computations;
      comp_on += rn.stats.feature_computations;
      ms_off += ro.stats.elapsed_ms;
      ms_on += rn.stats.elapsed_ms;
    }
    const double reps = static_cast<double>(opts.reps);
    std::printf("%6zu %14.0f %14.0f %12.1f %12.1f\n", n,
                static_cast<double>(comp_off) / reps,
                static_cast<double>(comp_on) / reps, ms_off / reps,
                ms_on / reps);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace emdbg::bench

int main(int argc, char** argv) {
  emdbg::bench::Run(emdbg::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
