/// Extension bench: the interned-id kernel layer versus the string
/// kernels it replaces.
///
/// Three sections, written to BENCH_kernels.json:
///   * per-kernel microbenchmarks over real candidate pairs — the string
///     path re-derives sorted/weighted token structures per call (as the
///     pre-interning evaluator did), the id path reads the prebuilt
///     per-record arrays that PairContext now caches;
///   * scalar vs bit-parallel (Myers) Levenshtein at 32..256 chars;
///   * end-to-end MemoMatcher wall clock with interning off vs on, for two
///     Table 2 dataset profiles (context construction + matching, so the
///     id path pays its own build cost), each with an estimated per-stage
///     breakdown: context build / feature kernels / memo-probe + rule
///     evaluation (warm re-run) — the decomposition that motivated the
///     columnar block engine (see bench_block.cc).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/memo.h"
#include "src/core/memo_matcher.h"
#include "src/text/cosine.h"
#include "src/text/id_kernels.h"
#include "src/text/levenshtein.h"
#include "src/text/monge_elkan.h"
#include "src/text/set_similarity.h"
#include "src/text/soft_tfidf.h"
#include "src/text/tfidf.h"
#include "src/text/token_interner.h"
#include "src/text/tokenizer.h"
#include "src/util/random.h"
#include "src/util/stopwatch.h"

namespace emdbg::bench {
namespace {

struct KernelPoint {
  std::string name;
  double string_ns = 0.0;  // per pair
  double id_ns = 0.0;
  double speedup = 0.0;
};

struct LevPoint {
  size_t length = 0;
  double scalar_ns = 0.0;  // per pair
  double myers_ns = 0.0;
  double speedup = 0.0;
};

/// Estimated per-stage wall-time decomposition of one end-to-end run:
/// context construction (tokenize + intern + cache build), cold matching
/// (kernels + memo probes + predicate eval), warm matching (same run on
/// the now-full memo: probes + predicates + orchestration only), and the
/// kernel share inferred as cold − warm.
struct E2eStages {
  double context_ms = 0.0;
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  double kernel_ms = 0.0;  // cold - warm
};

struct E2ePoint {
  std::string dataset;
  size_t candidates = 0;
  double string_ms = 0.0;  // context + cold, string kernels
  double id_ms = 0.0;      // context + cold, interned-id kernels
  double speedup = 0.0;
  E2eStages string_stages;
  E2eStages id_stages;
};

// Prebuilt per-record structures for one attribute column of both tables:
// what PairContext caches for the id path, plus the raw token lists the
// string path starts from.
struct Column {
  std::vector<TokenList> words_a, words_b;
  std::vector<TokenList> qgrams_a, qgrams_b;
  std::vector<TokenIds> ids_a, ids_b;          // words
  std::vector<TokenIds> qids_a, qids_b;        // q-grams
  std::vector<IdTfVector> tf_a, tf_b;
  std::vector<IdWeightVector> w_a, w_b;
  TfIdfModel model;
  std::shared_ptr<const std::vector<uint32_t>> ranks;
};

Column BuildColumn(const BenchEnv& env, AttrIndex attr,
                   TokenInterner& interner) {
  Column col;
  auto build_side = [&](const Table& t, std::vector<TokenList>& words,
                        std::vector<TokenList>& qgrams,
                        std::vector<TokenIds>& ids,
                        std::vector<TokenIds>& qids) {
    for (size_t r = 0; r < t.num_rows(); ++r) {
      words.push_back(AlnumTokenize(t.Value(r, attr)));
      qgrams.push_back(QGramTokenize(t.Value(r, attr), 3));
      TokenIds w;
      w.doc = InternDocIds(words.back(), interner);
      w.sorted = SortedUniqueIds(w.doc);
      ids.push_back(std::move(w));
      TokenIds q;
      q.doc = InternDocIds(qgrams.back(), interner);
      q.sorted = SortedUniqueIds(q.doc);
      qids.push_back(std::move(q));
    }
  };
  build_side(env.ds.a, col.words_a, col.qgrams_a, col.ids_a, col.qids_a);
  build_side(env.ds.b, col.words_b, col.qgrams_b, col.ids_b, col.qids_b);
  for (const TokenList& d : col.words_a) col.model.AddDocument(d);
  for (const TokenList& d : col.words_b) col.model.AddDocument(d);
  col.ranks = interner.LexRanks();
  std::vector<double> idf_by_id;
  idf_by_id.reserve(interner.size());
  for (uint32_t id = 0; id < interner.size(); ++id) {
    idf_by_id.push_back(col.model.Idf(std::string(interner.Text(id))));
  }
  auto build_tf = [&](const std::vector<TokenIds>& ids,
                      std::vector<IdTfVector>& tf,
                      std::vector<IdWeightVector>& w) {
    for (const TokenIds& d : ids) {
      tf.push_back(MakeIdTfVector(d.doc, *col.ranks));
      w.push_back(MakeIdWeightVector(tf.back(), idf_by_id));
    }
  };
  build_tf(col.ids_a, col.tf_a, col.w_a);
  build_tf(col.ids_b, col.tf_b, col.w_b);
  return col;
}

// Times `fn(pair)` over the pair sample, `reps` times; returns the best
// per-pair nanoseconds (min over reps, the usual microbench estimator).
template <typename Fn>
double TimePerPair(const std::vector<PairId>& pairs, size_t reps, Fn fn) {
  double best_ms = 1e300;
  double sink = 0.0;
  for (size_t rep = 0; rep < reps; ++rep) {
    Stopwatch timer;
    for (const PairId& p : pairs) sink += fn(p);
    best_ms = std::min(best_ms, timer.ElapsedMillis());
  }
  // Defeat dead-code elimination without touching the timing loop.
  if (sink == -1.0) std::printf("impossible\n");
  return best_ms * 1e6 / static_cast<double>(pairs.size());
}

std::vector<KernelPoint> BenchKernels(const BenchEnv& env, size_t reps,
                                      std::vector<PairId> pairs) {
  TokenInterner interner;
  const Column col = BuildColumn(env, 0, interner);
  const auto& ranks = *col.ranks;

  std::vector<KernelPoint> points;
  auto add = [&](const char* name, double string_ns, double id_ns) {
    points.push_back(
        {name, string_ns, id_ns, id_ns > 0.0 ? string_ns / id_ns : 0.0});
    std::printf("%-12s string %9.1f ns/pair   id %8.1f ns/pair   %5.2fx\n",
                name, string_ns, id_ns,
                id_ns > 0.0 ? string_ns / id_ns : 0.0);
  };

  add("jaccard",
      TimePerPair(pairs, reps,
                  [&](PairId p) {
                    return JaccardSimilarity(col.words_a[p.a],
                                             col.words_b[p.b]);
                  }),
      TimePerPair(pairs, reps, [&](PairId p) {
        return IdJaccard(col.ids_a[p.a].sorted, col.ids_b[p.b].sorted);
      }));
  add("dice",
      TimePerPair(pairs, reps,
                  [&](PairId p) {
                    return DiceSimilarity(col.words_a[p.a],
                                          col.words_b[p.b]);
                  }),
      TimePerPair(pairs, reps, [&](PairId p) {
        return IdDice(col.ids_a[p.a].sorted, col.ids_b[p.b].sorted);
      }));
  add("overlap",
      TimePerPair(pairs, reps,
                  [&](PairId p) {
                    return OverlapCoefficient(col.words_a[p.a],
                                              col.words_b[p.b]);
                  }),
      TimePerPair(pairs, reps, [&](PairId p) {
        return IdOverlap(col.ids_a[p.a].sorted, col.ids_b[p.b].sorted);
      }));
  add("trigram",
      TimePerPair(pairs, reps,
                  [&](PairId p) {
                    return JaccardSimilarity(col.qgrams_a[p.a],
                                             col.qgrams_b[p.b]);
                  }),
      TimePerPair(pairs, reps, [&](PairId p) {
        return IdJaccard(col.qids_a[p.a].sorted, col.qids_b[p.b].sorted);
      }));
  add("cosine",
      TimePerPair(pairs, reps,
                  [&](PairId p) {
                    return CosineSimilarity(col.words_a[p.a],
                                            col.words_b[p.b]);
                  }),
      TimePerPair(pairs, reps, [&](PairId p) {
        return IdCosineTf(col.tf_a[p.a], col.tf_b[p.b], ranks);
      }));
  add("tfidf",
      TimePerPair(pairs, reps,
                  [&](PairId p) {
                    return col.model.Similarity(col.words_a[p.a],
                                                col.words_b[p.b]);
                  }),
      TimePerPair(pairs, reps, [&](PairId p) {
        return IdTfIdfCosine(col.w_a[p.a], col.w_b[p.b], ranks);
      }));
  add("soft_tfidf",
      TimePerPair(pairs, reps,
                  [&](PairId p) {
                    return SoftTfIdfSimilarity(col.model, col.words_a[p.a],
                                               col.words_b[p.b]);
                  }),
      TimePerPair(pairs, reps, [&](PairId p) {
        return IdSoftTfIdf(col.w_a[p.a], col.w_b[p.b], ranks, interner);
      }));
  add("monge_elkan",
      TimePerPair(pairs, reps,
                  [&](PairId p) {
                    return MongeElkanSimilarity(col.words_a[p.a],
                                                col.words_b[p.b]);
                  }),
      TimePerPair(pairs, reps, [&](PairId p) {
        return IdMongeElkan(col.words_a[p.a], col.words_b[p.b],
                            col.ids_a[p.a], col.ids_b[p.b]);
      }));
  return points;
}

std::vector<LevPoint> BenchLevenshtein(size_t reps) {
  std::vector<LevPoint> points;
  Rng rng(99);
  const char* alphabet = "abcdefgh";
  for (const size_t len : {size_t{32}, size_t{64}, size_t{128},
                           size_t{256}}) {
    // 256 pairs per length; strings share a common prefix half the time
    // so the workload is not all-mismatch.
    std::vector<std::pair<std::string, std::string>> pairs;
    for (int i = 0; i < 256; ++i) {
      std::string a;
      std::string b;
      for (size_t k = 0; k < len; ++k) {
        a.push_back(alphabet[rng.Uniform(8)]);
        b.push_back(rng.Uniform(2) != 0u ? a.back()
                                         : alphabet[rng.Uniform(8)]);
      }
      pairs.emplace_back(std::move(a), std::move(b));
    }
    auto time_ns = [&](auto fn) {
      double best_ms = 1e300;
      size_t sink = 0;
      for (size_t rep = 0; rep < reps; ++rep) {
        Stopwatch timer;
        for (const auto& [a, b] : pairs) sink += fn(a, b);
        best_ms = std::min(best_ms, timer.ElapsedMillis());
      }
      if (sink == size_t(-1)) std::printf("impossible\n");
      return best_ms * 1e6 / static_cast<double>(pairs.size());
    };
    const double scalar = time_ns([](const std::string& a,
                                     const std::string& b) {
      return LevenshteinDistanceScalar(a, b);
    });
    const double myers = time_ns([](const std::string& a,
                                    const std::string& b) {
      return LevenshteinDistance(a, b);
    });
    points.push_back({len, scalar, myers, scalar / myers});
    std::printf(
        "levenshtein %3zu chars: scalar %9.1f ns   myers %8.1f ns   "
        "%5.2fx\n",
        len, scalar, myers, scalar / myers);
  }
  return points;
}

E2ePoint BenchEndToEnd(DatasetId dataset, const BenchOptions& opts) {
  BenchOptions local = opts;
  local.dataset = dataset;
  const BenchEnv env = BenchEnv::Make(local);
  const MatchingFunction fn =
      env.RuleSubset(std::min<size_t>(opts.rules, 80), 4242);
  // Per-stage timings, best-of-reps per stage. Fresh context per rep: the
  // id path pays interning + array construction inside its context stage,
  // same as the string path pays tokenization.
  auto run_stages = [&](bool intern) {
    E2eStages stages;
    for (size_t rep = 0; rep < opts.reps; ++rep) {
      Stopwatch build;
      PairContext ctx(env.ds.a, env.ds.b, env.catalog,
                      PairContext::Options{.cache_tokens = true,
                                           .intern_tokens = intern});
      const double context_ms = build.ElapsedMillis();
      DenseMemo memo(env.ds.candidates.size(), env.catalog.size());
      MemoMatcher matcher;
      Stopwatch cold;
      (void)matcher.RunWithMemo(fn, env.ds.candidates, ctx, memo);
      const double cold_ms = cold.ElapsedMillis();
      Stopwatch warm;
      (void)matcher.RunWithMemo(fn, env.ds.candidates, ctx, memo);
      const double warm_ms = warm.ElapsedMillis();
      if (rep == 0) {
        stages = {context_ms, cold_ms, warm_ms, 0.0};
      } else {
        stages.context_ms = std::min(stages.context_ms, context_ms);
        stages.cold_ms = std::min(stages.cold_ms, cold_ms);
        stages.warm_ms = std::min(stages.warm_ms, warm_ms);
      }
    }
    stages.kernel_ms = std::max(0.0, stages.cold_ms - stages.warm_ms);
    return stages;
  };
  E2ePoint point;
  point.dataset = env.profile.name;
  point.candidates = env.ds.candidates.size();
  point.string_stages = run_stages(false);
  point.id_stages = run_stages(true);
  point.string_ms =
      point.string_stages.context_ms + point.string_stages.cold_ms;
  point.id_ms = point.id_stages.context_ms + point.id_stages.cold_ms;
  point.speedup = point.id_ms > 0.0 ? point.string_ms / point.id_ms : 0.0;
  std::printf(
      "end-to-end %-12s %7zu pairs: strings %9.1f ms   ids %8.1f ms   "
      "%5.2fx\n",
      point.dataset.c_str(), point.candidates, point.string_ms,
      point.id_ms, point.speedup);
  std::printf(
      "  id stages: context %.1f ms  kernel %.1f ms  probe+rules %.1f ms\n",
      point.id_stages.context_ms, point.id_stages.kernel_ms,
      point.id_stages.warm_ms);
  return point;
}

void WriteJson(const BenchOptions& opts,
               const std::vector<KernelPoint>& kernels,
               const std::vector<LevPoint>& lev,
               const std::vector<E2ePoint>& e2e, const char* path) {
  const std::string tmp = std::string(path) + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", tmp.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"kernels\",\n");
  std::fprintf(f, "  \"scale\": %g,\n", opts.scale);
  std::fprintf(f, "  \"reps\": %zu,\n", opts.reps);
  std::fprintf(f, "  \"kernels\": [\n");
  for (size_t i = 0; i < kernels.size(); ++i) {
    const KernelPoint& p = kernels[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"string_ns_per_pair\": %.1f, "
                 "\"id_ns_per_pair\": %.1f, \"speedup\": %.2f}%s\n",
                 p.name.c_str(), p.string_ns, p.id_ns, p.speedup,
                 i + 1 == kernels.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"levenshtein\": [\n");
  for (size_t i = 0; i < lev.size(); ++i) {
    const LevPoint& p = lev[i];
    std::fprintf(f,
                 "    {\"length\": %zu, \"scalar_ns\": %.1f, "
                 "\"myers_ns\": %.1f, \"speedup\": %.2f}%s\n",
                 p.length, p.scalar_ns, p.myers_ns, p.speedup,
                 i + 1 == lev.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"end_to_end\": [\n");
  auto stage_json = [&](const char* key, const E2eStages& s,
                        const char* suffix) {
    std::fprintf(f,
                 "     \"%s\": {\"context_ms\": %.1f, \"cold_ms\": %.1f, "
                 "\"warm_ms\": %.1f, \"kernel_ms\": %.1f}%s\n",
                 key, s.context_ms, s.cold_ms, s.warm_ms, s.kernel_ms,
                 suffix);
  };
  for (size_t i = 0; i < e2e.size(); ++i) {
    const E2ePoint& p = e2e[i];
    std::fprintf(f,
                 "    {\"dataset\": \"%s\", \"candidates\": %zu, "
                 "\"string_ms\": %.1f, \"id_ms\": %.1f, "
                 "\"speedup\": %.2f,\n",
                 p.dataset.c_str(), p.candidates, p.string_ms, p.id_ms,
                 p.speedup);
    stage_json("string_stages", p.string_stages, ",");
    stage_json("id_stages", p.id_stages, "");
    std::fprintf(f, "    }%s\n", i + 1 == e2e.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  if (std::rename(tmp.c_str(), path) != 0) {
    std::fprintf(stderr, "cannot rename %s to %s\n", tmp.c_str(), path);
  }
}

void Run(const BenchOptions& opts) {
  const BenchEnv env = BenchEnv::Make(opts);
  PrintHeader("Extension: interned-id kernels vs string kernels", opts,
              env);

  std::vector<PairId> pairs = env.ds.candidates.pairs();
  if (pairs.size() > 20000) pairs.resize(20000);

  const std::vector<KernelPoint> kernels =
      BenchKernels(env, opts.reps + 1, pairs);
  const std::vector<LevPoint> lev = BenchLevenshtein(opts.reps + 1);
  std::vector<E2ePoint> e2e;
  e2e.push_back(BenchEndToEnd(DatasetId::kProducts, opts));
  e2e.push_back(BenchEndToEnd(DatasetId::kBooks, opts));

  WriteJson(opts, kernels, lev, e2e, "BENCH_kernels.json");
  std::printf("wrote BENCH_kernels.json\n");
}

}  // namespace
}  // namespace emdbg::bench

int main(int argc, char** argv) {
  emdbg::bench::Run(emdbg::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
