/// Regenerates Fig. 5B: DM+EE matching time versus number of candidate
/// pairs, with the full rule set. The paper's claim: cost grows linearly
/// in the number of pairs (each pair is independent), which is why the
/// optimization techniques matter more as data sets grow.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/memo_matcher.h"
#include "src/core/ordering.h"
#include "src/util/stopwatch.h"

namespace emdbg::bench {
namespace {

void Run(const BenchOptions& opts) {
  const BenchEnv env = BenchEnv::Make(opts);
  PrintHeader("Figure 5B: run time (ms) vs number of candidate pairs",
              opts, env);
  MatchingFunction fn = env.RuleSubset(opts.rules, 4000);
  const CostModel model =
      CostModel::EstimateForFunction(fn, *env.ctx, env.sample);
  ApplyOrdering(fn, OrderingStrategy::kGreedyReduction, model, nullptr);

  const size_t total = env.ds.candidates.size();
  std::printf("%12s %12s %14s\n", "pairs", "time_ms", "ms_per_1k_pairs");
  for (const double frac : {0.125, 0.25, 0.5, 0.75, 1.0}) {
    CandidateSet subset;
    const size_t n = static_cast<size_t>(frac * static_cast<double>(total));
    subset.Reserve(n);
    for (size_t i = 0; i < n; ++i) subset.Add(env.ds.candidates.pair(i));
    double ms = 0.0;
    for (size_t rep = 0; rep < opts.reps; ++rep) {
      // Fresh matcher + memo per rep; the shared token caches stay warm
      // (deliberate: we measure matching, not tokenization).
      MemoMatcher matcher;
      Stopwatch timer;
      matcher.Run(fn, subset, *env.ctx);
      ms += timer.ElapsedMillis();
    }
    ms /= static_cast<double>(opts.reps);
    std::printf("%12zu %12.1f %14.3f\n", n, ms,
                n == 0 ? 0.0 : ms * 1000.0 / static_cast<double>(n));
  }
  std::printf("# ms_per_1k_pairs should be roughly constant (linearity)\n\n");
}

}  // namespace
}  // namespace emdbg::bench

int main(int argc, char** argv) {
  emdbg::bench::Run(emdbg::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
