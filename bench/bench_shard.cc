/// Out-of-core sharded matching: streams a candidate set whose memo
/// footprint is >=10x the memory budget through ShardedMatchDriver and
/// checks the three contract points of DESIGN.md Sec. 12 — (1) the run
/// completes with peak RSS growth within budget + 10% (plus the
/// unbudgeted per-record text caches, reported separately), (2) results
/// are bit-identical to one monolithic in-RAM run, and (3) on a workload
/// that *fits* the budget, sharding costs at most ~1.3x the in-RAM
/// engine. Written to BENCH_shard.json; --assert-rss turns contract
/// violations into a nonzero exit for CI.

#include <sys/resource.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/core/block_matcher.h"
#include "src/core/shard_driver.h"
#include "src/util/memory_budget.h"
#include "src/util/stopwatch.h"

namespace emdbg::bench {
namespace {

size_t PeakRssBytes() {
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<size_t>(ru.ru_maxrss) * 1024;  // Linux: KiB
}

size_t ContextCacheBytes(const PairContext& ctx) {
  size_t bytes = ctx.IdCacheBytes() + ctx.TokenCacheBytes();
  if (const TokenInterner* interner = ctx.interner()) {
    bytes += interner->ArenaBytes() + interner->DictionaryBytes();
  }
  return bytes;
}

struct ShardBenchResult {
  size_t pairs = 0;
  size_t features = 0;
  size_t memo_bytes = 0;
  size_t budget_bytes = 0;
  size_t shards = 0;
  size_t shard_pairs = 0;
  size_t spilled_bytes = 0;
  double sharded_ms = 0.0;
  double inram_ms = 0.0;
  double fitting_ms = 0.0;
  size_t matches = 0;
  bool identical = false;
  size_t rss_delta_bytes = 0;
  size_t cache_bytes = 0;
  size_t rss_allowed_bytes = 0;
  bool rss_ok = false;
};

void WriteJson(const BenchOptions& opts, const ShardBenchResult& r,
               const char* path) {
  const std::string tmp = std::string(path) + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", tmp.c_str());
    return;
  }
  const double mb = 1048576.0;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"shard\",\n");
  std::fprintf(f, "  \"scale\": %g,\n", opts.scale);
  std::fprintf(f, "  \"rules\": %zu,\n", opts.rules);
  std::fprintf(f, "  \"pairs\": %zu,\n", r.pairs);
  std::fprintf(f, "  \"features\": %zu,\n", r.features);
  std::fprintf(f, "  \"memo_mb\": %.2f,\n", r.memo_bytes / mb);
  std::fprintf(f, "  \"budget_mb\": %.2f,\n", r.budget_bytes / mb);
  std::fprintf(f, "  \"footprint_over_budget\": %.1f,\n",
               static_cast<double>(r.memo_bytes) /
                   static_cast<double>(r.budget_bytes));
  std::fprintf(f, "  \"shards\": %zu,\n", r.shards);
  std::fprintf(f, "  \"shard_pairs\": %zu,\n", r.shard_pairs);
  std::fprintf(f, "  \"spilled_mb\": %.2f,\n", r.spilled_bytes / mb);
  std::fprintf(f, "  \"sharded_spilling_ms\": %.1f,\n", r.sharded_ms);
  std::fprintf(f, "  \"inram_ms\": %.1f,\n", r.inram_ms);
  std::fprintf(f, "  \"spilling_slowdown\": %.2f,\n",
               r.inram_ms > 0.0 ? r.sharded_ms / r.inram_ms : 0.0);
  std::fprintf(f, "  \"fitting_sharded_ms\": %.1f,\n", r.fitting_ms);
  std::fprintf(f, "  \"fitting_ratio\": %.2f,\n",
               r.inram_ms > 0.0 ? r.fitting_ms / r.inram_ms : 0.0);
  std::fprintf(f, "  \"matches\": %zu,\n", r.matches);
  std::fprintf(f, "  \"identical\": %s,\n", r.identical ? "true" : "false");
  std::fprintf(f, "  \"rss_delta_mb\": %.2f,\n", r.rss_delta_bytes / mb);
  std::fprintf(f, "  \"context_cache_mb\": %.2f,\n", r.cache_bytes / mb);
  std::fprintf(f, "  \"rss_allowed_mb\": %.2f,\n", r.rss_allowed_bytes / mb);
  std::fprintf(f, "  \"rss_ok\": %s\n", r.rss_ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  if (std::rename(tmp.c_str(), path) != 0) {
    std::fprintf(stderr, "cannot rename %s to %s\n", tmp.c_str(), path);
  }
}

int Run(const BenchOptions& opts, bool assert_rss) {
  const BenchEnv env = BenchEnv::Make(opts);
  PrintHeader("Out-of-core sharded matching under a memory budget", opts,
              env);
  const MatchingFunction fn = env.RuleSubset(opts.rules, 42);

  ShardBenchResult r;
  r.pairs = env.ds.candidates.size();
  r.features = env.catalog.size();
  r.memo_bytes = r.pairs * r.features * sizeof(float);
  // Budget at 1/12 of the monolithic memo: comfortably past the >=10x
  // acceptance bar, small enough to force dozens of shards.
  r.budget_bytes = std::max<size_t>(r.memo_bytes / 12, 256u << 10);

  const std::string spill_dir =
      "/tmp/bench_shard_" + std::to_string(getpid());
  ::mkdir(spill_dir.c_str(), 0755);

  // Phase B runs FIRST so the peak-RSS high-water mark is attributable
  // to the spilling run, not a previous monolithic memo.
  const size_t rss_before = PeakRssBytes();
  MatchResult sharded;
  MemoryBudget budget(r.budget_bytes, "bench-shard");
  {
    PairContext ctx(env.ds.a, env.ds.b, env.catalog);
    ShardedMatchDriver::Options o;
    o.spill_dir = spill_dir;
    o.budget = &budget;
    o.keep_state = true;
    ShardedMatchDriver driver(o);
    Stopwatch watch;
    sharded = driver.Run(fn, env.ds.candidates, ctx);
    r.sharded_ms = watch.ElapsedMillis();
    r.shards = driver.shards().size();
    r.shard_pairs = driver.shard_pairs();
    r.spilled_bytes = driver.spilled_bytes();
    r.cache_bytes = ContextCacheBytes(ctx);
    for (const auto& info : driver.shards()) {
      if (!info.state_path.empty()) std::remove(info.state_path.c_str());
    }
  }
  const size_t rss_after = PeakRssBytes();
  ::rmdir(spill_dir.c_str());
  r.rss_delta_bytes = rss_after > rss_before ? rss_after - rss_before : 0;
  // The ceiling: 110% of the budget, plus the per-record text caches the
  // budget deliberately does not govern (they are O(records), not
  // O(pairs), and are reported so regressions stay visible), plus a
  // fixed 2 MiB of allocator slack — glibc arenas keep freed shard
  // memos resident, so RSS never returns what the budget released.
  r.rss_allowed_bytes = r.budget_bytes + r.budget_bytes / 10 +
                        r.cache_bytes + (size_t{2} << 20);
  r.rss_ok = r.rss_delta_bytes <= r.rss_allowed_bytes;

  if (sharded.partial) {
    std::fprintf(stderr, "sharded run failed: %s\n",
                 sharded.status.ToString().c_str());
    return 1;
  }

  // In-RAM monolithic baseline: same engine family, no budget.
  MatchResult inram;
  {
    PairContext ctx(env.ds.a, env.ds.b, env.catalog);
    BlockMatcher matcher;
    Stopwatch watch;
    inram = matcher.Run(fn, env.ds.candidates, ctx);
    r.inram_ms = watch.ElapsedMillis();
  }
  r.matches = inram.MatchCount();
  r.identical =
      sharded.matches == inram.matches &&
      sharded.stats.feature_computations ==
          inram.stats.feature_computations &&
      sharded.stats.predicate_evaluations ==
          inram.stats.predicate_evaluations;

  // Budget-fitting workload: sharding overhead with no pressure (one
  // default-sized shard, no state spilling).
  {
    PairContext ctx(env.ds.a, env.ds.b, env.catalog);
    ShardedMatchDriver::Options o;
    o.keep_state = false;
    ShardedMatchDriver driver(o);
    Stopwatch watch;
    MatchResult fitting = driver.Run(fn, env.ds.candidates, ctx);
    r.fitting_ms = watch.ElapsedMillis();
    if (fitting.partial || !(fitting.matches == inram.matches)) {
      std::fprintf(stderr, "budget-fitting sharded run diverged\n");
      return 1;
    }
  }

  std::printf(
      "memo %.1f MB over %.2f MB budget (%.1fx): %zu shards x %zu pairs, "
      "spilled %.1f MB\n",
      r.memo_bytes / 1048576.0, r.budget_bytes / 1048576.0,
      static_cast<double>(r.memo_bytes) /
          static_cast<double>(r.budget_bytes),
      r.shards, r.shard_pairs, r.spilled_bytes / 1048576.0);
  std::printf(
      "spilling %.1f ms vs in-RAM %.1f ms (%.2fx); fitting %.1f ms "
      "(%.2fx); identical=%s\n",
      r.sharded_ms, r.inram_ms,
      r.inram_ms > 0.0 ? r.sharded_ms / r.inram_ms : 0.0, r.fitting_ms,
      r.inram_ms > 0.0 ? r.fitting_ms / r.inram_ms : 0.0,
      r.identical ? "yes" : "NO (BUG)");
  std::printf(
      "peak RSS growth %.1f MB vs allowed %.1f MB (budget %.2f MB + 10%% "
      "+ caches %.1f MB + 2 MB slack): %s\n",
      r.rss_delta_bytes / 1048576.0, r.rss_allowed_bytes / 1048576.0,
      r.budget_bytes / 1048576.0, r.cache_bytes / 1048576.0,
      r.rss_ok ? "ok" : "EXCEEDED");

  WriteJson(opts, r, "BENCH_shard.json");
  std::printf("wrote BENCH_shard.json\n");

  if (!r.identical) {
    std::fprintf(stderr, "FAIL: sharded result not bit-identical\n");
    return 1;
  }
  if (assert_rss && !r.rss_ok) {
    std::fprintf(stderr, "FAIL: --assert-rss: RSS ceiling exceeded\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace emdbg::bench

int main(int argc, char** argv) {
  bool assert_rss = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--assert-rss") assert_rss = true;
  }
  return emdbg::bench::Run(emdbg::bench::BenchOptions::Parse(argc, argv),
                           assert_rss);
}
