/// The headline claim (Sec. 1): with memoing + early exit + incremental
/// maintenance, the analyst's per-iteration idle time stays interactive —
/// under 1 second, ideally well under. This bench replays a simulated
/// 60-edit analyst session and reports the per-iteration latency
/// distribution for (a) the fully incremental engine and (b) the
/// rerun-everything-with-memo variation, at the configured dataset scale.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/incremental.h"
#include "src/core/memo_matcher.h"
#include "src/util/stats.h"
#include "src/util/stopwatch.h"

namespace emdbg::bench {
namespace {

/// One analyst session: alternating adds, threshold tweaks, predicate
/// edits, and removals, mirroring Fig. 1's refine loop.
void ReplaySession(const BenchEnv& env, bool incremental,
                   std::vector<double>& latencies_ms) {
  Rng rng(incremental ? 101 : 101);  // identical edit sequence for both
  IncrementalMatcher inc(*env.ctx, env.ds.candidates);
  MatchingFunction batch_fn;
  MatchState batch_state;
  MemoMatcher batch_matcher(
      MemoMatcher::Options{.check_cache_first = true});

  // Start from a 20-rule function (cold-start cost excluded: the paper's
  // interactivity target is the edit loop, not the first run).
  MatchingFunction initial = env.RuleSubset(20, 55);
  if (incremental) {
    inc.FullRun(initial);
  } else {
    batch_fn = initial;
    batch_matcher.RunWithState(batch_fn, env.ds.candidates, *env.ctx,
                               batch_state);
  }

  auto edit_and_time = [&](auto&& apply_inc, auto&& apply_batch) {
    Stopwatch timer;
    if (incremental) {
      apply_inc();
    } else {
      apply_batch();
      batch_matcher.RunWithState(batch_fn, env.ds.candidates, *env.ctx,
                                 batch_state);
    }
    latencies_ms.push_back(timer.ElapsedMillis());
  };

  for (int step = 0; step < 60; ++step) {
    const MatchingFunction& fn = incremental ? inc.function() : batch_fn;
    const uint64_t op = rng.Uniform(4);
    if (op == 0 || fn.num_rules() < 3) {
      const Rule rule = env.generator->GenerateRule(rng);
      edit_and_time([&] { (void)inc.AddRule(rule); },
                    [&] { batch_fn.AddRule(rule); });
    } else if (op == 1) {
      const Rule& rule = fn.rule(rng.Uniform(fn.num_rules()));
      const Predicate p = rule.predicate(rng.Uniform(rule.size()));
      const double t = rng.NextDouble();
      const RuleId rid = rule.id();
      edit_and_time(
          [&] { (void)inc.SetThreshold(rid, p.id, t); },
          [&] { (void)batch_fn.SetThreshold(rid, p.id, t); });
    } else if (op == 2) {
      const Rule& rule = fn.rule(rng.Uniform(fn.num_rules()));
      const Rule donor = env.generator->GenerateRule(rng);
      const RuleId rid = rule.id();
      edit_and_time(
          [&] { (void)inc.AddPredicate(rid, donor.predicate(0)); },
          [&] { (void)batch_fn.AddPredicate(rid, donor.predicate(0)); });
    } else {
      const RuleId rid = fn.rule(rng.Uniform(fn.num_rules())).id();
      edit_and_time([&] { (void)inc.RemoveRule(rid); },
                    [&] { (void)batch_fn.RemoveRule(rid); });
    }
  }
}

void Run(const BenchOptions& opts) {
  const BenchEnv env = BenchEnv::Make(opts);
  PrintHeader("Interactivity: per-edit latency over a 60-edit session",
              opts, env);
  std::printf("%-14s %9s %9s %9s %9s %9s\n", "variant", "p50_ms",
              "p90_ms", "p99_ms", "max_ms", "mean_ms");
  for (const bool incremental : {false, true}) {
    std::vector<double> latencies;
    ReplaySession(env, incremental, latencies);
    std::printf("%-14s %9.2f %9.2f %9.2f %9.2f %9.2f\n",
                incremental ? "incremental" : "rerun+memo",
                Quantile(latencies, 0.5), Quantile(latencies, 0.9),
                Quantile(latencies, 0.99),
                Quantile(latencies, 1.0), Mean(latencies));
  }
  std::printf(
      "# the paper's interactivity bar: < 1000 ms keeps the analyst's "
      "flow, < 100 ms feels instant\n\n");
}

}  // namespace
}  // namespace emdbg::bench

int main(int argc, char** argv) {
  emdbg::bench::Run(emdbg::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
