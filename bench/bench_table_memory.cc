/// Regenerates the Sec. 7.4 memory-consumption discussion: the size of the
/// dense memo (the paper's 2-D similarity array, 22 MB for Products) and
/// the per-rule / per-predicate bitmaps used for incremental matching (the
/// paper reports 542 MB for Java boolean arrays; packed bitmaps are 8x
/// smaller by construction). Also compares the dense memo against the
/// hash-map alternative at the observed fill rate.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/incremental.h"
#include "src/core/memo.h"

namespace emdbg::bench {
namespace {

void Run(const BenchOptions& opts) {
  const BenchEnv env = BenchEnv::Make(opts);
  PrintHeader("Sec. 7.4: memory consumption of materialized state", opts,
              env);

  const MatchingFunction fn = env.RuleSubset(opts.rules, 42);
  IncrementalMatcher inc(*env.ctx, env.ds.candidates);
  inc.FullRun(fn);
  const MatchState& state = inc.state();

  const size_t pairs = env.ds.candidates.size();
  const size_t features = env.catalog.size();
  std::printf("rules=%zu predicates=%zu pairs=%zu features=%zu\n",
              fn.num_rules(), fn.num_predicates(), pairs, features);
  std::printf("%s\n", state.MemoryReport().c_str());

  // The interned-token layer: dictionary + arena of the shared
  // TokenInterner and the per-record id/tf/weight arrays it feeds.
  if (const TokenInterner* interner = env.ctx->interner()) {
    std::printf(
        "token interner: %zu tokens, arena %.2f MB, dictionary %.2f MB; "
        "id caches %.2f MB (string token caches %.2f MB)\n",
        static_cast<size_t>(interner->size()),
        static_cast<double>(interner->ArenaBytes()) / 1048576.0,
        static_cast<double>(interner->DictionaryBytes()) / 1048576.0,
        static_cast<double>(env.ctx->IdCacheBytes()) / 1048576.0,
        static_cast<double>(env.ctx->TokenCacheBytes()) / 1048576.0);
  }

  // Dense-vs-hash trade-off at the observed fill rate (Sec. 7.4's
  // "consider a hash-map for larger data sets").
  const size_t filled = state.memo().FilledCount();
  const double fill_rate =
      static_cast<double>(filled) /
      static_cast<double>(pairs * features);
  HashMemo hash;
  // Model the hash memo at the same fill (keys don't affect size).
  for (size_t i = 0; i < filled; ++i) {
    hash.Store(i % pairs, static_cast<FeatureId>(i % features), 0.5f);
  }
  std::printf(
      "memo fill rate: %.1f%% -> dense %.2f MB vs hash-map approx %.2f MB\n",
      fill_rate * 100.0,
      static_cast<double>(state.memo().MemoryBytes()) / 1048576.0,
      static_cast<double>(hash.MemoryBytes()) / 1048576.0);

  // Paper-scale extrapolation (291,649 pairs, 33 features, 255 rules,
  // 1,688 predicates) without allocating at scale.
  const double memo_mb = 291649.0 * 33.0 * sizeof(float) / 1048576.0;
  const double bitmap_mb = (255.0 + 1688.0) * (291649.0 / 8.0) / 1048576.0;
  std::printf(
      "paper-scale extrapolation: memo %.1f MB, bitmaps %.1f MB "
      "(paper: 22 MB array + 542 MB Java boolean bitmaps)\n\n",
      memo_mb, bitmap_mb);
}

}  // namespace
}  // namespace emdbg::bench

int main(int argc, char** argv) {
  emdbg::bench::Run(emdbg::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
