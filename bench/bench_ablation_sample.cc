/// Ablation (Sec. 7.5): sensitivity of the cost model / optimizer to the
/// estimation sample size. The paper found a 1% sample sufficient —
/// larger samples "did not change the rule ordering in a major way". For
/// several sample fractions this bench reports the estimation time and
/// the actual DM+EE run time under the resulting Algorithm 6 ordering.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/memo_matcher.h"
#include "src/core/ordering.h"
#include "src/util/stopwatch.h"

namespace emdbg::bench {
namespace {

void Run(const BenchOptions& opts) {
  const BenchEnv env = BenchEnv::Make(opts);
  PrintHeader("Ablation: cost-model sample size (Sec. 7.5)", opts, env);
  const MatchingFunction base = env.RuleSubset(opts.rules, 8000);
  std::printf("%10s %10s %14s %12s %12s\n", "fraction", "sample",
              "estimate_ms", "match_ms", "model_ms");
  for (const double fraction : {0.002, 0.01, 0.05, 0.2}) {
    Rng rng(9);
    const CandidateSet sample =
        SamplePairs(env.ds.candidates, fraction, rng, 20);
    Stopwatch est_timer;
    const CostModel model =
        CostModel::EstimateForFunction(base, *env.ctx, sample);
    const double estimate_ms = est_timer.ElapsedMillis();

    MatchingFunction fn = base;
    ApplyOrdering(fn, OrderingStrategy::kGreedyReduction, model, nullptr);
    double match_ms = 0.0;
    for (size_t rep = 0; rep < opts.reps; ++rep) {
      MemoMatcher matcher;
      Stopwatch timer;
      matcher.Run(fn, env.ds.candidates, *env.ctx);
      match_ms += timer.ElapsedMillis();
    }
    match_ms /= static_cast<double>(opts.reps);
    const double model_ms = model.EstimateRuntimeMs(
        fn, env.ds.candidates.size(), /*with_memo=*/true);
    std::printf("%10.3f %10zu %14.1f %12.1f %12.1f\n", fraction,
                sample.size(), estimate_ms, match_ms, model_ms);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace emdbg::bench

int main(int argc, char** argv) {
  emdbg::bench::Run(emdbg::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
