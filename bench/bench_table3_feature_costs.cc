/// Regenerates the paper's Table 3: per-feature computation cost (µs) on
/// the Products data set, using Google Benchmark. One benchmark per
/// (similarity function, attribute pair) row of the table, evaluated over
/// a rotating sample of candidate pairs.
///
/// The paper's ordering (Exact Match cheapest ... Soft TF-IDF most
/// expensive, with cross-attribute modelno x title variants in between)
/// should reproduce; absolute µs depend on the machine.

#include <benchmark/benchmark.h>

#include <memory>

#include "src/core/feature.h"
#include "src/core/pair_context.h"
#include "src/core/sampler.h"
#include "src/data/datasets.h"

namespace emdbg {
namespace {

/// Shared environment, built once.
struct Table3Env {
  GeneratedDataset ds;
  FeatureCatalog catalog;
  std::unique_ptr<PairContext> ctx;
  CandidateSet pairs;

  Table3Env() {
    const DatasetProfile profile =
        ScaleProfile(PaperDatasetProfile(DatasetId::kProducts), 0.05);
    ds = GenerateDataset(profile);
    catalog = FeatureCatalog(ds.a.schema(), ds.b.schema());
    catalog.InternAllSameAttribute();
    ctx = std::make_unique<PairContext>(ds.a, ds.b, catalog);
    Rng rng(3);
    pairs = SamplePairs(ds.candidates, 0.2, rng, 500);
    // Warm the TF-IDF corpora so model building is not measured.
    for (SimFunction fn : {SimFunction::kTfIdf, SimFunction::kSoftTfIdf}) {
      for (const char* a : {"title", "modelno"}) {
        for (const char* b : {"title", "modelno"}) {
          auto id = catalog.InternByName(fn, a, b);
          if (id.ok()) ctx->ComputeFeature(*id, pairs.pair(0));
        }
      }
    }
  }
};

Table3Env& Env() {
  static Table3Env* env = new Table3Env();
  return *env;
}

void BM_Feature(benchmark::State& state, SimFunction fn, const char* attr_a,
                const char* attr_b) {
  Table3Env& env = Env();
  auto feature = env.catalog.InternByName(fn, attr_a, attr_b);
  if (!feature.ok()) {
    state.SkipWithError("feature not available");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    const PairId pair = env.pairs.pair(i);
    benchmark::DoNotOptimize(env.ctx->ComputeFeature(*feature, pair));
    i = (i + 1) % env.pairs.size();
  }
}

// The 13 rows of Table 3, same order as the paper (modelno = m,
// title = t).
#define TABLE3_ROW(name, fn, a, b) \
  BENCHMARK_CAPTURE(BM_Feature, name, fn, a, b)->Unit(benchmark::kMicrosecond)

TABLE3_ROW(exact_match_m_m, SimFunction::kExactMatch, "modelno", "modelno");
TABLE3_ROW(jaro_m_m, SimFunction::kJaro, "modelno", "modelno");
TABLE3_ROW(jaro_winkler_m_m, SimFunction::kJaroWinkler, "modelno",
           "modelno");
TABLE3_ROW(levenshtein_m_m, SimFunction::kLevenshtein, "modelno",
           "modelno");
TABLE3_ROW(cosine_m_t, SimFunction::kCosine, "modelno", "title");
TABLE3_ROW(trigram_m_m, SimFunction::kTrigram, "modelno", "modelno");
TABLE3_ROW(jaccard_m_t, SimFunction::kJaccard, "modelno", "title");
TABLE3_ROW(soundex_m_m, SimFunction::kSoundex, "modelno", "modelno");
TABLE3_ROW(jaccard_t_t, SimFunction::kJaccard, "title", "title");
TABLE3_ROW(tf_idf_m_t, SimFunction::kTfIdf, "modelno", "title");
TABLE3_ROW(tf_idf_t_t, SimFunction::kTfIdf, "title", "title");
TABLE3_ROW(soft_tf_idf_m_t, SimFunction::kSoftTfIdf, "modelno", "title");
TABLE3_ROW(soft_tf_idf_t_t, SimFunction::kSoftTfIdf, "title", "title");

#undef TABLE3_ROW

}  // namespace
}  // namespace emdbg

BENCHMARK_MAIN();
