/// Ablation: the Sec. 5.4.3 dynamic-reordering idea the paper left
/// unimplemented ("this incurs nontrivial overhead"). Compares static
/// greedy orderings (Algorithms 5/6, computed once up front) against
/// AdaptiveMemoMatcher, which re-scores every rule per pair using the
/// pair's actual memo contents. Reports both feature computations (the
/// quantity adaptivity can reduce) and wall time (where the per-pair
/// scoring overhead bites).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/adaptive_matcher.h"
#include "src/core/memo_matcher.h"
#include "src/core/ordering.h"

namespace emdbg::bench {
namespace {

void Run(const BenchOptions& opts) {
  const BenchEnv env = BenchEnv::Make(opts);
  PrintHeader("Ablation: static greedy vs per-pair adaptive ordering",
              opts, env);
  const std::vector<size_t> rule_counts{10, 40, 160, 240};
  std::printf("%6s | %10s %10s %10s | %9s %9s %9s\n", "rules",
              "comp_alg5", "comp_alg6", "comp_adpt", "ms_alg5", "ms_alg6",
              "ms_adpt");
  for (const size_t n : rule_counts) {
    if (n > opts.rules) break;
    size_t comp[3] = {0, 0, 0};
    double ms[3] = {0, 0, 0};
    for (size_t rep = 0; rep < opts.reps; ++rep) {
      MatchingFunction fn = env.RuleSubset(n, 14000 + rep);
      const CostModel model =
          CostModel::EstimateForFunction(fn, *env.ctx, env.sample);
      OrderAllRulePredicates(fn, model);

      MatchingFunction alg5 = fn;
      ApplyOrdering(alg5, OrderingStrategy::kGreedyCost, model, nullptr);
      MatchingFunction alg6 = fn;
      ApplyOrdering(alg6, OrderingStrategy::kGreedyReduction, model,
                    nullptr);

      MemoMatcher static_matcher(
          MemoMatcher::Options{.check_cache_first = true});
      AdaptiveMemoMatcher adaptive(model);
      const MatchResult r5 =
          static_matcher.Run(alg5, env.ds.candidates, *env.ctx);
      const MatchResult r6 =
          static_matcher.Run(alg6, env.ds.candidates, *env.ctx);
      const MatchResult ra = adaptive.Run(fn, env.ds.candidates, *env.ctx);
      comp[0] += r5.stats.feature_computations;
      comp[1] += r6.stats.feature_computations;
      comp[2] += ra.stats.feature_computations;
      ms[0] += r5.stats.elapsed_ms;
      ms[1] += r6.stats.elapsed_ms;
      ms[2] += ra.stats.elapsed_ms;
    }
    const double reps = static_cast<double>(opts.reps);
    std::printf("%6zu | %10.0f %10.0f %10.0f | %9.1f %9.1f %9.1f\n", n,
                comp[0] / reps, comp[1] / reps, comp[2] / reps,
                ms[0] / reps, ms[1] / reps, ms[2] / reps);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace emdbg::bench

int main(int argc, char** argv) {
  emdbg::bench::Run(emdbg::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
