/// Ablation (Sec. 7.4): dense 2-D array memo versus hash-map memo. The
/// dense memo has O(1) indexed lookups and pairs x features footprint; the
/// hash memo only stores what was computed but pays hashing per access.
/// Reports run time and memory for both on the same rule set.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/memo.h"
#include "src/core/memo_matcher.h"
#include "src/core/ordering.h"

namespace emdbg::bench {
namespace {

void Run(const BenchOptions& opts) {
  const BenchEnv env = BenchEnv::Make(opts);
  PrintHeader("Ablation: dense vs hash memo (Sec. 7.4)", opts, env);
  MatchingFunction fn = env.RuleSubset(opts.rules, 7000);
  const CostModel model =
      CostModel::EstimateForFunction(fn, *env.ctx, env.sample);
  ApplyOrdering(fn, OrderingStrategy::kGreedyReduction, model, nullptr);

  std::printf("%8s %10s %14s %12s %12s\n", "memo", "ms", "computations",
              "filled", "mem_MB");
  for (const bool dense : {true, false}) {
    double ms = 0.0;
    size_t computations = 0;
    size_t filled = 0;
    double mem_mb = 0.0;
    for (size_t rep = 0; rep < opts.reps; ++rep) {
      MemoMatcher matcher(
          MemoMatcher::Options{.check_cache_first = true});
      std::unique_ptr<Memo> memo;
      if (dense) {
        memo = std::make_unique<DenseMemo>(env.ds.candidates.size(),
                                           env.catalog.size());
      } else {
        memo = std::make_unique<HashMemo>();
      }
      const MatchResult r =
          matcher.RunWithMemo(fn, env.ds.candidates, *env.ctx, *memo);
      ms += r.stats.elapsed_ms;
      computations += r.stats.feature_computations;
      filled = memo->FilledCount();
      mem_mb = static_cast<double>(memo->MemoryBytes()) / 1048576.0;
    }
    const double reps = static_cast<double>(opts.reps);
    std::printf("%8s %10.1f %14.0f %12zu %12.2f\n",
                dense ? "dense" : "hash", ms / reps,
                static_cast<double>(computations) / reps, filled, mem_mb);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace emdbg::bench

int main(int argc, char** argv) {
  emdbg::bench::Run(emdbg::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
