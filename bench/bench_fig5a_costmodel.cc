/// Regenerates Fig. 5A: cost-model accuracy. For rule sets of increasing
/// size, compares the actual DM+EE run time against the run time predicted
/// by the Sec. 4.4.4 analytic model (alpha recursion over the 1% sample),
/// under both a random ordering and the Algorithm 6 ordering. The paper's
/// claim: the two curves follow each other closely.
///
/// We also print the exact sample-replay estimate (SimulatedCostWithMemo)
/// as a tighter reference.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/memo_matcher.h"
#include "src/core/ordering.h"
#include "src/util/stopwatch.h"

namespace emdbg::bench {
namespace {

struct Point {
  double actual_ms = 0.0;
  double model_ms = 0.0;
  double replay_ms = 0.0;
};

Point Measure(const BenchEnv& env, MatchingFunction fn,
              OrderingStrategy strategy, const CostModel& model, Rng* rng) {
  ApplyOrdering(fn, strategy, model, rng);
  Point p;
  p.model_ms = model.EstimateRuntimeMs(fn, env.ds.candidates.size(),
                                       /*with_memo=*/true);
  p.replay_ms = model.SimulatedCostWithMemo(fn) *
                static_cast<double>(env.ds.candidates.size()) / 1000.0;
  MemoMatcher matcher;
  Stopwatch timer;
  matcher.Run(fn, env.ds.candidates, *env.ctx);
  p.actual_ms = timer.ElapsedMillis();
  return p;
}

void Run(const BenchOptions& opts) {
  const BenchEnv env = BenchEnv::Make(opts);
  PrintHeader("Figure 5A: actual vs cost-model-estimated run time (ms)",
              opts, env);
  const std::vector<size_t> rule_counts{5, 10, 20, 40, 80, 160, 240};
  std::printf("%6s | %10s %10s %10s | %10s %10s %10s\n", "rules",
              "rand_act", "rand_model", "rand_replay", "alg6_act",
              "alg6_model", "alg6_replay");
  Rng rng(5);
  for (const size_t n : rule_counts) {
    if (n > opts.rules) break;
    Point random_avg;
    Point alg6_avg;
    for (size_t rep = 0; rep < opts.reps; ++rep) {
      const MatchingFunction fn = env.RuleSubset(n, 3000 + rep);
      const CostModel model =
          CostModel::EstimateForFunction(fn, *env.ctx, env.sample);
      const Point r =
          Measure(env, fn, OrderingStrategy::kRandom, model, &rng);
      const Point a = Measure(env, fn, OrderingStrategy::kGreedyReduction,
                              model, &rng);
      random_avg.actual_ms += r.actual_ms;
      random_avg.model_ms += r.model_ms;
      random_avg.replay_ms += r.replay_ms;
      alg6_avg.actual_ms += a.actual_ms;
      alg6_avg.model_ms += a.model_ms;
      alg6_avg.replay_ms += a.replay_ms;
    }
    const double reps = static_cast<double>(opts.reps);
    std::printf("%6zu | %10.1f %10.1f %10.1f | %10.1f %10.1f %10.1f\n", n,
                random_avg.actual_ms / reps, random_avg.model_ms / reps,
                random_avg.replay_ms / reps, alg6_avg.actual_ms / reps,
                alg6_avg.model_ms / reps, alg6_avg.replay_ms / reps);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace emdbg::bench

int main(int argc, char** argv) {
  emdbg::bench::Run(emdbg::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
