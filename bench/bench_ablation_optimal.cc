/// Ablation: how close do the greedy heuristics (Algorithms 5/6) come to
/// the exhaustive model-optimal rule order? The general problem is NP-hard
/// (Sec. 5.4), so the optimum is only computable for small rule sets; this
/// sweeps several small instances and reports the modeled per-pair cost of
/// random / Alg 5 / Alg 6 / optimal orderings plus the measured DM+EE run
/// time under each.

#include <cstdio>
#include <numeric>

#include "bench/bench_common.h"
#include "src/core/exhaustive_optimizer.h"
#include "src/core/greedy_cost_optimizer.h"
#include "src/core/greedy_reduction_optimizer.h"
#include "src/core/memo_matcher.h"
#include "src/core/ordering.h"
#include "src/util/stopwatch.h"

namespace emdbg::bench {
namespace {

double MeasureOrder(const BenchEnv& env, const MatchingFunction& fn,
                    const std::vector<size_t>& order) {
  MatchingFunction ordered = fn;
  ordered.PermuteRules(order);
  MemoMatcher matcher;
  Stopwatch timer;
  matcher.Run(ordered, env.ds.candidates, *env.ctx);
  return timer.ElapsedMillis();
}

void Run(const BenchOptions& opts) {
  const BenchEnv env = BenchEnv::Make(opts);
  PrintHeader("Ablation: greedy vs exhaustive-optimal ordering", opts,
              env);
  std::printf("%6s | %9s %9s %9s %9s | %8s %8s %8s %8s\n", "seed",
              "mc_rand", "mc_alg5", "mc_alg6", "mc_opt", "ms_rand",
              "ms_alg5", "ms_alg6", "ms_opt");
  const size_t kRules = 7;
  Rng rng(17);
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    MatchingFunction fn = env.RuleSubset(kRules, 9000 + seed);
    const CostModel model =
        CostModel::EstimateForFunction(fn, *env.ctx, env.sample);
    OrderAllRulePredicates(fn, model);

    std::vector<size_t> random_order(fn.num_rules());
    std::iota(random_order.begin(), random_order.end(), size_t{0});
    rng.Shuffle(random_order);
    const std::vector<size_t> alg5 = GreedyCostOrder(fn, model);
    const std::vector<size_t> alg6 = GreedyReductionOrder(fn, model);
    auto optimal = ExhaustiveOptimalOrder(fn, model);
    if (!optimal.ok()) {
      std::printf("exhaustive search failed: %s\n",
                  optimal.status().ToString().c_str());
      return;
    }
    std::printf(
        "%6zu | %9.2f %9.2f %9.2f %9.2f | %8.1f %8.1f %8.1f %8.1f\n",
        static_cast<size_t>(seed),
        OrderCostWithMemo(fn, model, random_order),
        OrderCostWithMemo(fn, model, alg5),
        OrderCostWithMemo(fn, model, alg6),
        OrderCostWithMemo(fn, model, *optimal),
        MeasureOrder(env, fn, random_order), MeasureOrder(env, fn, alg5),
        MeasureOrder(env, fn, alg6), MeasureOrder(env, fn, *optimal));
  }
  std::printf("# mc_* = modeled per-pair cost (us); ms_* = measured DM+EE"
              " run time\n\n");
}

}  // namespace
}  // namespace emdbg::bench

int main(int argc, char** argv) {
  emdbg::bench::Run(emdbg::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
