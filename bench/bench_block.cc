/// PR bench: columnar batch evaluation (BlockMatcher, one feature across
/// a whole block of pairs) versus the per-pair DM+EE matcher it
/// re-implements bit-identically.
///
/// For each dataset (products, books — the two Table 2 profiles the
/// kernel bench uses) and each strategy the harness reports an estimated
/// per-stage wall-time decomposition:
///   context_ms — PairContext construction (tokenize + intern + caches),
///                shared across strategies;
///   cold_ms    — end-to-end matching against an empty memo (feature
///                kernels + memo probes + predicate eval + combine);
///   warm_ms    — the same run repeated on the now-warm memo, so every
///                feature is a memo hit: probes + predicates + combine +
///                orchestration only;
///   kernel_ms  — cold_ms − warm_ms, the estimated feature-kernel share.
///
/// The gap the block engine closes is the warm component: the kernels
/// were vectorized in an earlier PR, but the per-pair evaluation loop
/// still paid virtual dispatch, scattered memo probes and branchy rule
/// logic per pair. Written to BENCH_block.json.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/block_matcher.h"
#include "src/core/memo.h"
#include "src/core/memo_matcher.h"
#include "src/core/ordering.h"
#include "src/util/stopwatch.h"

namespace emdbg::bench {
namespace {

struct StagePoint {
  std::string strategy;    // "per_pair", "block_auto", "block_1024"
  size_t block_size = 1;   // resolved pairs per block (1 = per-pair)
  double cold_ms = 0.0;
  double warm_ms = 0.0;
  double kernel_ms = 0.0;  // cold - warm (estimated kernel share)
  size_t matches = 0;
  size_t feature_computations = 0;
  size_t predicate_evaluations = 0;
  size_t memo_hits = 0;
};

struct DatasetPoint {
  std::string dataset;
  std::string scenario;  // "permissive" or "selective"
  size_t candidates = 0;
  size_t matches = 0;
  double context_ms = 0.0;
  std::vector<StagePoint> strategies;
  double speedup_cold = 0.0;  // per_pair cold / block_auto cold
  double speedup_warm = 0.0;  // per_pair warm / block_auto warm
  // per_pair / best block strategy (auto and fixed-1024 are the same
  // engine; on a noisy box the min across both is the stabler estimate).
  double speedup_cold_best = 0.0;
  double speedup_warm_best = 0.0;
  bool identical = true;      // all strategies agree bit-for-bit
};

// Times one strategy: best-of-reps cold run (fresh memo each rep), then
// best-of-reps warm run against a memo the last cold run filled.
template <typename MakeMatcher>
StagePoint RunStrategy(const char* name, size_t block_size,
                       const MatchingFunction& fn,
                       const CandidateSet& pairs, PairContext& ctx,
                       size_t num_features, size_t reps,
                       MakeMatcher make_matcher) {
  StagePoint point;
  point.strategy = name;
  point.block_size = block_size;
  MatchResult cold;
  std::unique_ptr<DenseMemo> memo;
  for (size_t rep = 0; rep < reps; ++rep) {
    memo = std::make_unique<DenseMemo>(pairs.size(), num_features);
    auto matcher = make_matcher();
    Stopwatch timer;
    cold = matcher->RunWithMemo(fn, pairs, ctx, *memo);
    point.cold_ms = rep == 0 ? timer.ElapsedMillis()
                             : std::min(point.cold_ms,
                                        timer.ElapsedMillis());
  }
  for (size_t rep = 0; rep < reps; ++rep) {
    auto matcher = make_matcher();
    Stopwatch timer;
    (void)matcher->RunWithMemo(fn, pairs, ctx, *memo);
    point.warm_ms = rep == 0 ? timer.ElapsedMillis()
                             : std::min(point.warm_ms,
                                        timer.ElapsedMillis());
  }
  point.kernel_ms = std::max(0.0, point.cold_ms - point.warm_ms);
  point.matches = cold.MatchCount();
  point.feature_computations = cold.stats.feature_computations;
  point.predicate_evaluations = cold.stats.predicate_evaluations;
  point.memo_hits = cold.stats.memo_hits;
  std::printf(
      "  %-10s block=%5zu cold %9.1f ms  warm %9.1f ms  kernel %9.1f ms "
      " (%zu matches, %zu computes)\n",
      name, point.block_size, point.cold_ms, point.warm_ms,
      point.kernel_ms, point.matches, point.feature_computations);
  return point;
}

// Two rule-set regimes per dataset. "permissive" is the generator's
// default (thresholds at mid quantiles): most candidate pairs match an
// early rule, so the DNF loop early-exits and feature kernels dominate.
// "selective" tightens every threshold to the 0.97–0.999 quantile — the
// realistic production-EM regime where matches are rare, non-matching
// pairs must try all rules, and per-pair orchestration (one memo probe +
// one branchy compare per (pair, rule)) is the bottleneck the columnar
// engine removes.
DatasetPoint BenchDataset(DatasetId dataset, bool selective,
                          const BenchOptions& opts) {
  BenchOptions local = opts;
  local.dataset = dataset;
  const BenchEnv env = BenchEnv::Make(local);
  // Default 255 rules: the paper's full Products rule-set size, which is
  // the probe-heavy regime the block engine targets (bench_kernels caps
  // its end-to-end section at 80 rules for time).
  const size_t num_rules = std::min<size_t>(opts.rules, 255);
  MatchingFunction fn;
  if (selective) {
    RuleGeneratorConfig config = env.generator->config();
    config.num_rules = num_rules;
    config.quantile_lo = 0.97;
    config.quantile_hi = 0.999;
    config.upper_bound_fraction = 0.0;
    config.seed = 4242;
    fn = RuleGenerator(*env.ctx, env.sample, config).Generate();
  } else {
    fn = env.RuleSubset(num_rules, 4242);
  }

  DatasetPoint point;
  point.dataset = env.profile.name;
  point.scenario = selective ? "selective" : "permissive";
  point.candidates = env.ds.candidates.size();
  std::printf("dataset %s (%s rules): %zu candidate pairs\n",
              point.dataset.c_str(), point.scenario.c_str(),
              point.candidates);

  // Shared evaluation context (the block engine reuses the per-pair
  // engine's context unchanged); its construction is the tokenize +
  // intern stage both strategies amortize.
  std::unique_ptr<PairContext> ctx;
  for (size_t rep = 0; rep < opts.reps; ++rep) {
    Stopwatch timer;
    ctx = std::make_unique<PairContext>(
        env.ds.a, env.ds.b, env.catalog,
        PairContext::Options{.cache_tokens = true, .intern_tokens = true});
    point.context_ms =
        rep == 0 ? timer.ElapsedMillis()
                 : std::min(point.context_ms, timer.ElapsedMillis());
  }
  const CostModel model =
      CostModel::EstimateForFunction(fn, *ctx, env.sample);
  ApplyOrdering(fn, OrderingStrategy::kGreedyReduction, model, nullptr);
  const size_t num_features = env.catalog.size();

  point.strategies.push_back(RunStrategy(
      "per_pair", 1, fn, env.ds.candidates, *ctx, num_features, opts.reps,
      [] { return std::make_unique<MemoMatcher>(); }));
  const size_t auto_block = BlockMatcher::ResolveBlockSize(
      BlockMatcher::Options{.block_size = 0, .cost_model = &model}, fn);
  point.strategies.push_back(RunStrategy(
      "block_auto", auto_block, fn, env.ds.candidates, *ctx, num_features,
      opts.reps, [&] {
        return std::make_unique<BlockMatcher>(BlockMatcher::Options{
            .block_size = 0, .cost_model = &model});
      }));
  point.strategies.push_back(RunStrategy(
      "block_1024", 1024, fn, env.ds.candidates, *ctx, num_features,
      opts.reps, [] {
        return std::make_unique<BlockMatcher>(
            BlockMatcher::Options{.block_size = 1024});
      }));

  const StagePoint& pp = point.strategies[0];
  const StagePoint& ba = point.strategies[1];
  point.matches = pp.matches;
  point.speedup_cold = ba.cold_ms > 0.0 ? pp.cold_ms / ba.cold_ms : 0.0;
  point.speedup_warm = ba.warm_ms > 0.0 ? pp.warm_ms / ba.warm_ms : 0.0;
  double best_cold = ba.cold_ms;
  double best_warm = ba.warm_ms;
  for (size_t j = 1; j < point.strategies.size(); ++j) {
    best_cold = std::min(best_cold, point.strategies[j].cold_ms);
    best_warm = std::min(best_warm, point.strategies[j].warm_ms);
  }
  point.speedup_cold_best = best_cold > 0.0 ? pp.cold_ms / best_cold : 0.0;
  point.speedup_warm_best = best_warm > 0.0 ? pp.warm_ms / best_warm : 0.0;
  for (const StagePoint& s : point.strategies) {
    if (s.matches != pp.matches ||
        s.feature_computations != pp.feature_computations ||
        s.predicate_evaluations != pp.predicate_evaluations) {
      point.identical = false;
    }
  }
  std::printf(
      "  speedup: cold %.2fx  warm %.2fx  (best block: cold %.2fx  "
      "warm %.2fx)  identical=%s\n",
      point.speedup_cold, point.speedup_warm, point.speedup_cold_best,
      point.speedup_warm_best, point.identical ? "yes" : "NO (BUG)");
  return point;
}

void WriteJson(const BenchOptions& opts,
               const std::vector<DatasetPoint>& datasets,
               const char* path) {
  const std::string tmp = std::string(path) + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", tmp.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"block\",\n");
  std::fprintf(f, "  \"scale\": %g,\n", opts.scale);
  std::fprintf(f, "  \"rules\": %zu,\n", opts.rules);
  std::fprintf(f, "  \"reps\": %zu,\n", opts.reps);
  std::fprintf(f, "  \"datasets\": [\n");
  for (size_t i = 0; i < datasets.size(); ++i) {
    const DatasetPoint& d = datasets[i];
    std::fprintf(f,
                 "    {\"dataset\": \"%s\", \"scenario\": \"%s\", "
                 "\"candidates\": %zu, \"matches\": %zu,\n",
                 d.dataset.c_str(), d.scenario.c_str(), d.candidates,
                 d.matches);
    std::fprintf(f, "     \"context_ms\": %.1f,\n", d.context_ms);
    std::fprintf(f, "     \"strategies\": [\n");
    for (size_t j = 0; j < d.strategies.size(); ++j) {
      const StagePoint& s = d.strategies[j];
      std::fprintf(
          f,
          "       {\"strategy\": \"%s\", \"block_size\": %zu, "
          "\"cold_ms\": %.1f, \"warm_ms\": %.1f, \"kernel_ms\": %.1f, "
          "\"matches\": %zu, \"feature_computations\": %zu, "
          "\"predicate_evaluations\": %zu, \"memo_hits\": %zu}%s\n",
          s.strategy.c_str(), s.block_size, s.cold_ms, s.warm_ms,
          s.kernel_ms, s.matches, s.feature_computations,
          s.predicate_evaluations, s.memo_hits,
          j + 1 == d.strategies.size() ? "" : ",");
    }
    std::fprintf(f, "     ],\n");
    std::fprintf(f,
                 "     \"speedup_cold\": %.2f, \"speedup_warm\": %.2f, "
                 "\"speedup_cold_best\": %.2f, "
                 "\"speedup_warm_best\": %.2f, "
                 "\"identical\": %s}%s\n",
                 d.speedup_cold, d.speedup_warm, d.speedup_cold_best,
                 d.speedup_warm_best, d.identical ? "true" : "false",
                 i + 1 == datasets.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  if (std::rename(tmp.c_str(), path) != 0) {
    std::fprintf(stderr, "cannot rename %s to %s\n", tmp.c_str(), path);
  }
}

void Run(const BenchOptions& opts) {
  std::printf("## Columnar batch evaluation vs per-pair DM+EE\n");
  std::vector<DatasetPoint> datasets;
  datasets.push_back(BenchDataset(DatasetId::kProducts, false, opts));
  datasets.push_back(BenchDataset(DatasetId::kProducts, true, opts));
  datasets.push_back(BenchDataset(DatasetId::kBooks, false, opts));
  datasets.push_back(BenchDataset(DatasetId::kBooks, true, opts));
  WriteJson(opts, datasets, "BENCH_block.json");
  std::printf("wrote BENCH_block.json\n");
}

}  // namespace
}  // namespace emdbg::bench

int main(int argc, char** argv) {
  emdbg::bench::Run(emdbg::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
