/// Extension bench: multi-threaded DM+EE speedup. Candidate pairs are
/// independent, so the pair loop parallelizes; this sweeps thread counts
/// and reports run time and scaling efficiency against the serial
/// MemoMatcher.

#include <cstdio>
#include <thread>

#include "bench/bench_common.h"
#include "src/core/memo_matcher.h"
#include "src/core/ordering.h"
#include "src/core/parallel_matcher.h"
#include "src/util/stopwatch.h"

namespace emdbg::bench {
namespace {

void Run(const BenchOptions& opts) {
  const BenchEnv env = BenchEnv::Make(opts);
  PrintHeader("Extension: parallel DM+EE scaling", opts, env);
  MatchingFunction fn = env.RuleSubset(opts.rules, 12000);
  const CostModel model =
      CostModel::EstimateForFunction(fn, *env.ctx, env.sample);
  ApplyOrdering(fn, OrderingStrategy::kGreedyReduction, model, nullptr);
  env.ctx->Prewarm(fn.UsedFeatures());

  double serial_ms = 0.0;
  for (size_t rep = 0; rep < opts.reps; ++rep) {
    MemoMatcher serial;
    Stopwatch timer;
    serial.Run(fn, env.ds.candidates, *env.ctx);
    serial_ms += timer.ElapsedMillis();
  }
  serial_ms /= static_cast<double>(opts.reps);
  std::printf("serial DM+EE: %.1f ms\n", serial_ms);

  const size_t hw = std::thread::hardware_concurrency();
  std::printf("%8s %10s %10s %12s\n", "threads", "ms", "speedup",
              "efficiency");
  for (size_t threads = 1; threads <= hw; threads *= 2) {
    double ms = 0.0;
    for (size_t rep = 0; rep < opts.reps; ++rep) {
      ParallelMemoMatcher parallel(
          ParallelMemoMatcher::Options{.num_threads = threads});
      Stopwatch timer;
      parallel.Run(fn, env.ds.candidates, *env.ctx);
      ms += timer.ElapsedMillis();
    }
    ms /= static_cast<double>(opts.reps);
    const double speedup = serial_ms / ms;
    std::printf("%8zu %10.1f %10.2f %12.2f\n", threads, ms, speedup,
                speedup / static_cast<double>(threads));
  }
  std::printf("\n");
}

}  // namespace
}  // namespace emdbg::bench

int main(int argc, char** argv) {
  emdbg::bench::Run(emdbg::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
