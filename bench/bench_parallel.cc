/// Extension bench: the work-stealing execution engine.
///
/// Grows scaling curves for the parallel DM+EE matcher over 1..N threads
/// on two workload shapes drawn from the same per-pair cost profile:
///
///   * uniform — the items are shuffled, so every static span holds
///     roughly the same total work (the scheduler-friendly case);
///   * skewed  — the same items sorted cheap→expensive, so a static
///     equal partition hands one worker nearly all the work. Early exit
///     makes this the realistic shape: matches stop at their first true
///     rule while non-matches evaluate every predicate.
///
/// For each (workload, threads) point both schedules are measured:
/// `static` (each worker drains only its own equal span — the
/// pre-work-stealing baseline) and `dynamic` (chunk claiming + stealing).
/// Reported per point: wall-clock, speedup vs. the serial MemoMatcher on
/// the same workload, the memo hit rate, and a *makespan model* — a
/// deterministic greedy simulation of the pool's chunk claiming over the
/// measured cost profile, i.e. the finish time of the slowest worker on
/// ideal hardware with one core per worker. Wall-clock shows the real
/// effect on multi-core machines; the makespan model isolates scheduling
/// quality independently of how many cores this machine happens to have
/// (on a single-core host, time-slicing makes every schedule's
/// wall-clock identical, so the model is the only meaningful scheduling
/// signal). Everything is also written as machine-readable JSON
/// (BENCH_parallel.json, atomically via a .tmp rename) so the perf
/// trajectory is recorded across PRs.

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/memo_matcher.h"
#include "src/core/ordering.h"
#include "src/core/parallel_matcher.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

namespace emdbg::bench {
namespace {

/// Per-pair cost profile: predicate evaluations under DM+EE early exit
/// (memoized within the pair, as the matcher would).
std::vector<uint32_t> ProfilePairCosts(const MatchingFunction& fn,
                                       const CandidateSet& pairs,
                                       PairContext& ctx) {
  std::vector<uint32_t> cost(pairs.size(), 0);
  DenseMemo memo(pairs.size(), ctx.catalog().size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    uint32_t evals = 0;
    for (const Rule& rule : fn.rules()) {
      if (rule.empty()) continue;
      bool rule_true = true;
      for (size_t k = 0; k < rule.size(); ++k) {
        const Predicate& p = rule.predicate(k);
        ++evals;
        double value = 0.0;
        if (!memo.Lookup(i, p.feature, &value)) {
          value = ctx.ComputeFeature(p.feature, pairs.pair(i));
          memo.Store(i, p.feature, value);
        }
        if (!p.Test(value)) {
          rule_true = false;
          break;
        }
      }
      if (rule_true) break;
    }
    cost[i] = evals;
  }
  return cost;
}

struct Workload {
  std::string name;
  CandidateSet pairs;
  /// Per-item cost (predicate evaluations), aligned with `pairs`.
  std::vector<uint64_t> cost;
};

/// Builds the uniform/skewed workload pair. Both hold the same item
/// multiset — 7/8 draws from the cheapest quartile, 1/8 from the most
/// expensive decile — so their serial cost is identical; only the index
/// order (shuffled vs. cost-ascending) differs. That isolates the
/// scheduler: any uniform-vs-skewed gap is load imbalance, not work.
std::vector<Workload> BuildWorkloads(const CandidateSet& pairs,
                                     const std::vector<uint32_t>& cost) {
  const size_t n = pairs.size();
  std::vector<size_t> by_cost(n);
  std::iota(by_cost.begin(), by_cost.end(), 0);
  std::stable_sort(by_cost.begin(), by_cost.end(),
                   [&](size_t x, size_t y) { return cost[x] < cost[y]; });

  Rng rng(4242);
  std::vector<size_t> items;
  items.reserve(n);
  const size_t cheap_pool = std::max<size_t>(1, n / 4);
  const size_t dear_pool = std::max<size_t>(1, n / 10);
  for (size_t i = 0; i < n; ++i) {
    if (i % 8 == 7) {  // expensive item: most expensive decile
      items.push_back(by_cost[n - 1 - rng.Uniform(dear_pool)]);
    } else {  // cheap item: cheapest quartile
      items.push_back(by_cost[rng.Uniform(cheap_pool)]);
    }
  }

  // Skewed: cheap→expensive, so the tail span concentrates the work.
  std::vector<size_t> sorted = items;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&](size_t x, size_t y) { return cost[x] < cost[y]; });
  // Uniform: the same items shuffled.
  std::vector<size_t> shuffled = items;
  rng.Shuffle(shuffled);

  std::vector<Workload> out;
  const std::pair<const char*, const std::vector<size_t>*> orders[] = {
      {"uniform", &shuffled}, {"skewed", &sorted}};
  for (const auto& [name, order] : orders) {
    Workload w;
    w.name = name;
    w.pairs.Reserve(n);
    w.cost.reserve(n);
    for (const size_t i : *order) {
      w.pairs.Add(pairs.pair(i));
      w.cost.push_back(cost[i]);
    }
    out.push_back(std::move(w));
  }
  return out;
}

struct Point {
  std::string workload;
  std::string schedule;
  size_t threads = 0;
  double ms = 0.0;
  double speedup_vs_serial = 0.0;
  double memo_hit_rate = 0.0;
  /// Modeled finish time of the slowest worker, in predicate
  /// evaluations, from the greedy chunk-claiming simulation below.
  uint64_t makespan = 0;
};

size_t RoundUpAlign(size_t v) {
  constexpr size_t a = ThreadPool::kIndexAlign;
  return (v + a - 1) / a * a;
}

/// Deterministic model of one ParallelFor over `cost`: replicates the
/// pool's span/cursor/grain layout, then greedily hands the next chunk
/// (own span first, then stealing, exactly like RunWorker) to the worker
/// with the smallest virtual time. Returns the makespan — the virtual
/// finish time of the slowest worker, i.e. the run's wall-clock on ideal
/// hardware with one core per worker.
uint64_t SimulateMakespan(const std::vector<uint64_t>& cost, size_t workers,
                          bool steal) {
  const size_t n = cost.size();
  const size_t k = std::max<size_t>(1, workers);
  const size_t grain =
      std::max<size_t>(ThreadPool::kIndexAlign, RoundUpAlign(n / (k * 16 + 1)));
  const size_t span =
      std::max(RoundUpAlign((n + k - 1) / k), ThreadPool::kIndexAlign);
  std::vector<size_t> next(k), end(k);
  for (size_t w = 0; w < k; ++w) {
    next[w] = std::min(w * span, n);
    end[w] = std::min((w + 1) * span, n);
  }
  std::vector<uint64_t> t(k, 0);
  auto chunk_cost = [&](size_t begin, size_t stop) {
    uint64_t c = 0;
    for (size_t i = begin; i < stop; ++i) c += cost[i];
    return c;
  };
  if (!steal) {
    // Static: each worker drains exactly its own span.
    for (size_t w = 0; w < k; ++w) t[w] = chunk_cost(next[w], end[w]);
    return *std::max_element(t.begin(), t.end());
  }
  while (true) {
    // The worker that would claim next is the one least busy so far.
    size_t w = 0;
    for (size_t v = 1; v < k; ++v) {
      if (t[v] < t[w]) w = v;
    }
    // Own span first, then one circular scan (mirrors RunWorker).
    bool claimed = false;
    for (size_t v = w; v < w + k && !claimed; ++v) {
      const size_t c = v % k;
      if (next[c] >= end[c]) continue;
      const size_t begin = next[c];
      next[c] = std::min(begin + grain, end[c]);
      t[w] += chunk_cost(begin, next[c]);
      claimed = true;
    }
    if (!claimed) break;
  }
  return *std::max_element(t.begin(), t.end());
}

double HitRate(const MatchStats& s) {
  const size_t lookups = s.memo_hits + s.feature_computations;
  return lookups == 0 ? 0.0
                      : static_cast<double>(s.memo_hits) /
                            static_cast<double>(lookups);
}

void WriteJson(const BenchOptions& opts, const BenchEnv& env, size_t hw,
               const std::vector<std::pair<std::string, double>>& serial,
               const std::vector<Point>& points, double improvement,
               double wallclock_improvement, double model_improvement,
               const char* improvement_metric, const char* path) {
  const std::string tmp = std::string(path) + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", tmp.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"parallel\",\n");
  std::fprintf(f, "  \"dataset\": \"%s\",\n", env.profile.name.c_str());
  std::fprintf(f, "  \"scale\": %g,\n", opts.scale);
  std::fprintf(f, "  \"candidates\": %zu,\n", env.ds.candidates.size());
  std::fprintf(f, "  \"rules\": %zu,\n", opts.rules);
  std::fprintf(f, "  \"reps\": %zu,\n", opts.reps);
  std::fprintf(f, "  \"hardware_threads\": %zu,\n", hw);
  if (hw < 2) {
    // On a single-core box the >1-thread wall-clock points measure
    // time-sliced threads, not parallel speedup; flag the run so readers
    // (and CI gates) lean on the makespan model instead.
    std::fprintf(f, "  \"wall_clock_unverified\": true,\n");
    std::fprintf(f,
                 "  \"wall_clock_caveat\": \"hardware_concurrency=%zu: "
                 "multi-thread wall-clock numbers are time-sliced, not "
                 "parallel; trust the makespan model columns\",\n",
                 hw);
  } else {
    // A real multi-core run: the stamp clears itself so a rerun on
    // capable hardware retires the caveat without a manual edit.
    std::fprintf(f, "  \"wall_clock_unverified\": false,\n");
  }
  std::fprintf(f, "  \"serial_ms\": {");
  for (size_t i = 0; i < serial.size(); ++i) {
    std::fprintf(f, "%s\"%s\": %.3f", i == 0 ? "" : ", ",
                 serial[i].first.c_str(), serial[i].second);
  }
  std::fprintf(f, "},\n");
  std::fprintf(f,
               "  \"skewed_dynamic_vs_static_improvement_8t\": %.3f,\n",
               improvement);
  std::fprintf(f, "  \"improvement_metric\": \"%s\",\n",
               improvement_metric);
  std::fprintf(f, "  \"skewed_improvement_8t_wallclock\": %.3f,\n",
               wallclock_improvement);
  std::fprintf(f, "  \"skewed_improvement_8t_makespan_model\": %.3f,\n",
               model_improvement);
  std::fprintf(f, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"schedule\": \"%s\", "
                 "\"threads\": %zu, \"ms\": %.3f, "
                 "\"speedup_vs_serial\": %.3f, \"memo_hit_rate\": %.4f, "
                 "\"model_makespan\": %llu}%s\n",
                 p.workload.c_str(), p.schedule.c_str(), p.threads, p.ms,
                 p.speedup_vs_serial, p.memo_hit_rate,
                 static_cast<unsigned long long>(p.makespan),
                 i + 1 == points.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  if (std::rename(tmp.c_str(), path) != 0) {
    std::fprintf(stderr, "cannot rename %s to %s\n", tmp.c_str(), path);
  }
}

void Run(const BenchOptions& opts) {
  const BenchEnv env = BenchEnv::Make(opts);
  PrintHeader("Extension: work-stealing parallel DM+EE", opts, env);
  MatchingFunction fn = env.RuleSubset(opts.rules, 12000);
  const CostModel model =
      CostModel::EstimateForFunction(fn, *env.ctx, env.sample);
  ApplyOrdering(fn, OrderingStrategy::kGreedyReduction, model, nullptr);
  env.ctx->Prewarm(fn.UsedFeatures());

  std::printf("profiling per-pair cost under early exit...\n");
  const std::vector<uint32_t> cost =
      ProfilePairCosts(fn, env.ds.candidates, *env.ctx);
  const uint64_t total_cost = std::accumulate(
      cost.begin(), cost.end(), uint64_t{0},
      [](uint64_t acc, uint32_t c) { return acc + c; });
  const uint32_t max_cost = *std::max_element(cost.begin(), cost.end());
  std::printf(
      "pairs=%zu total_pred_evals=%llu mean=%.1f max=%u (skew max/mean "
      "%.1fx)\n",
      cost.size(), static_cast<unsigned long long>(total_cost),
      static_cast<double>(total_cost) / static_cast<double>(cost.size()),
      max_cost,
      static_cast<double>(max_cost) * static_cast<double>(cost.size()) /
          static_cast<double>(total_cost));

  const std::vector<Workload> workloads =
      BuildWorkloads(env.ds.candidates, cost);

  const size_t hw = std::thread::hardware_concurrency();
  if (hw < 2) {
    std::printf(
        "WARNING: hardware_concurrency=%zu — wall-clock speedups below "
        "are time-sliced, not parallel (stamped into the JSON)\n",
        hw);
  }
  std::vector<size_t> thread_counts;
  for (size_t t = 1; t <= std::max<size_t>(8, hw); t *= 2) {
    thread_counts.push_back(t);
  }
  if (hw > 1 && std::find(thread_counts.begin(), thread_counts.end(),
                          hw) == thread_counts.end()) {
    thread_counts.push_back(hw);
  }

  std::vector<std::pair<std::string, double>> serial_ms;
  std::vector<Point> points;
  double skewed_static_8t = 0.0, skewed_dynamic_8t = 0.0;
  uint64_t skewed_static_8t_model = 0, skewed_dynamic_8t_model = 0;

  for (const Workload& w : workloads) {
    double serial = 0.0;
    double serial_hit_rate = 0.0;
    for (size_t rep = 0; rep < opts.reps; ++rep) {
      MemoMatcher matcher;
      Stopwatch timer;
      const MatchResult r = matcher.Run(fn, w.pairs, *env.ctx);
      serial += timer.ElapsedMillis();
      serial_hit_rate = HitRate(r.stats);
    }
    serial /= static_cast<double>(opts.reps);
    serial_ms.emplace_back(w.name, serial);
    const uint64_t work = std::accumulate(w.cost.begin(), w.cost.end(),
                                          uint64_t{0});
    std::printf("\n[%s] serial DM+EE: %.1f ms (memo hit rate %.1f%%)\n",
                w.name.c_str(), serial, 100.0 * serial_hit_rate);
    std::printf("%8s %9s %10s %10s %12s %10s %14s\n", "threads",
                "schedule", "ms", "speedup", "vs-static", "hit-rate",
                "model-balance");

    for (const size_t threads : thread_counts) {
      double static_pt_ms = 0.0;
      for (const bool dynamic : {false, true}) {
        ThreadPool pool(threads);
        double ms = 0.0;
        double hit_rate = 0.0;
        for (size_t rep = 0; rep < opts.reps; ++rep) {
          ParallelMemoMatcher matcher(ParallelMemoMatcher::Options{
              .pool = &pool, .dynamic_schedule = dynamic});
          Stopwatch timer;
          const MatchResult r = matcher.Run(fn, w.pairs, *env.ctx);
          ms += timer.ElapsedMillis();
          hit_rate = HitRate(r.stats);
        }
        ms /= static_cast<double>(opts.reps);
        Point p;
        p.workload = w.name;
        p.schedule = dynamic ? "dynamic" : "static";
        p.threads = threads;
        p.ms = ms;
        p.speedup_vs_serial = serial / ms;
        p.memo_hit_rate = hit_rate;
        p.makespan = SimulateMakespan(w.cost, threads, dynamic);
        points.push_back(p);
        if (!dynamic) static_pt_ms = ms;
        // model-balance: makespan / (work / threads) — 1.00 is a
        // perfectly balanced schedule, higher is worse.
        const double balance =
            static_cast<double>(p.makespan) /
            (static_cast<double>(work) / static_cast<double>(threads));
        std::printf("%8zu %9s %10.1f %10.2f %12s %9.1f%% %14.2f\n",
                    threads, p.schedule.c_str(), ms, p.speedup_vs_serial,
                    dynamic ? StrFormat("%.2fx", static_pt_ms / ms).c_str()
                            : "-",
                    100.0 * hit_rate, balance);
        if (w.name == "skewed" && threads == 8) {
          (dynamic ? skewed_dynamic_8t : skewed_static_8t) = ms;
          (dynamic ? skewed_dynamic_8t_model : skewed_static_8t_model) =
              p.makespan;
        }
      }
    }
  }

  const double wallclock_improvement =
      skewed_dynamic_8t > 0.0 ? skewed_static_8t / skewed_dynamic_8t : 0.0;
  const double model_improvement =
      skewed_dynamic_8t_model > 0
          ? static_cast<double>(skewed_static_8t_model) /
                static_cast<double>(skewed_dynamic_8t_model)
          : 0.0;
  // On a single-core host every schedule time-slices to the same
  // wall-clock, so the makespan model is the only meaningful scheduling
  // signal; on real multi-core hardware the wall-clock is authoritative.
  const bool use_model = hw < 2;
  const double improvement =
      use_model ? model_improvement : wallclock_improvement;
  std::printf(
      "\nskewed workload, 8 threads: dynamic %.1f ms vs static %.1f ms "
      "(%.2fx wall-clock, %.2fx modeled makespan; headline=%s)\n",
      skewed_dynamic_8t, skewed_static_8t, wallclock_improvement,
      model_improvement, use_model ? "model" : "wallclock");

  WriteJson(opts, env, hw, serial_ms, points, improvement,
            wallclock_improvement, model_improvement,
            use_model ? "makespan_model" : "wallclock",
            "BENCH_parallel.json");
  std::printf("wrote BENCH_parallel.json\n");
}

}  // namespace
}  // namespace emdbg::bench

int main(int argc, char** argv) {
  emdbg::bench::Run(emdbg::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
