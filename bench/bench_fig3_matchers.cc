/// Regenerates Fig. 3A/3B: matching run time versus rule-set size for the
/// five strategies — rudimentary baseline (R), early exit (EE), production
/// precomputation + early exit (PPR+EE), full precomputation + early exit
/// (FPR+EE), and dynamic memoing + early exit (DM+EE).
///
/// As in the paper, each data point averages over random rule subsets of
/// the given size. The expected shape: R grows steeply (it recomputes
/// every feature for every predicate), EE is far better but still
/// recomputes across rules, the precompute variants pay a large up-front
/// cost (FPR > PPR), and DM+EE dominates. The R and EE columns are capped
/// at smaller rule counts by default to keep the sweep fast (the paper's
/// R curve exceeds 10 minutes past ~20 rules).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/early_exit_matcher.h"
#include "src/core/memo_matcher.h"
#include "src/core/precompute_matcher.h"
#include "src/core/rudimentary_matcher.h"
#include "src/util/stopwatch.h"

namespace emdbg::bench {
namespace {

double TimeMatcher(Matcher& matcher, const MatchingFunction& fn,
                   const BenchEnv& env) {
  Stopwatch timer;
  const MatchResult result =
      matcher.Run(fn, env.ds.candidates, *env.ctx);
  (void)result;
  return timer.ElapsedMillis();
}

void Run(const BenchOptions& opts) {
  const BenchEnv env = BenchEnv::Make(opts);
  PrintHeader("Figure 3A/3B: run time (ms) vs number of rules", opts, env);

  const std::vector<size_t> rule_counts{5, 10, 20, 40, 80, 160, 240};
  const size_t kRudimentaryCap = 20;  // paper: R exceeds 10 min past ~20
  const size_t kEarlyExitCap = 80;

  std::printf("%6s %12s %12s %12s %12s %12s\n", "rules", "R", "EE",
              "PPR+EE", "FPR+EE", "DM+EE");
  for (const size_t n : rule_counts) {
    if (n > opts.rules) break;
    double r_ms = 0.0;
    double ee_ms = 0.0;
    double ppr_ms = 0.0;
    double fpr_ms = 0.0;
    double dm_ms = 0.0;
    for (size_t rep = 0; rep < opts.reps; ++rep) {
      const MatchingFunction fn = env.RuleSubset(n, 1000 + rep);
      RudimentaryMatcher rudimentary;
      EarlyExitMatcher early_exit;
      PrecomputeMatcher production(PrecomputeMatcher::Scope::kProduction);
      PrecomputeMatcher full(PrecomputeMatcher::Scope::kFull);
      MemoMatcher memo;
      if (n <= kRudimentaryCap) r_ms += TimeMatcher(rudimentary, fn, env);
      if (n <= kEarlyExitCap) ee_ms += TimeMatcher(early_exit, fn, env);
      ppr_ms += TimeMatcher(production, fn, env);
      fpr_ms += TimeMatcher(full, fn, env);
      dm_ms += TimeMatcher(memo, fn, env);
    }
    const double reps = static_cast<double>(opts.reps);
    char r_buf[32];
    char ee_buf[32];
    if (n <= kRudimentaryCap) {
      std::snprintf(r_buf, sizeof(r_buf), "%12.1f", r_ms / reps);
    } else {
      std::snprintf(r_buf, sizeof(r_buf), "%12s", "-");
    }
    if (n <= kEarlyExitCap) {
      std::snprintf(ee_buf, sizeof(ee_buf), "%12.1f", ee_ms / reps);
    } else {
      std::snprintf(ee_buf, sizeof(ee_buf), "%12s", "-");
    }
    std::printf("%6zu %s %s %12.1f %12.1f %12.1f\n", n, r_buf, ee_buf,
                ppr_ms / reps, fpr_ms / reps, dm_ms / reps);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace emdbg::bench

int main(int argc, char** argv) {
  emdbg::bench::Run(emdbg::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
