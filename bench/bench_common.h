#ifndef EMDBG_BENCH_BENCH_COMMON_H_
#define EMDBG_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>

#include "src/core/cost_model.h"
#include "src/core/pair_context.h"
#include "src/core/rule_generator.h"
#include "src/core/sampler.h"
#include "src/data/datasets.h"
#include "src/util/string_util.h"

namespace emdbg::bench {

/// Shared command-line options for the figure/table harnesses.
///
///   --scale=<f>   dataset scale factor relative to the paper's Table 2
///                 sizes (default 0.05 keeps every bench in seconds; 1.0
///                 reproduces the paper-scale Products dataset)
///   --rules=<n>   size of the generated rule set (default 255, as in the
///                 paper's Products rule set)
///   --reps=<n>    repetitions per data point (default 2; the paper uses 3)
///   --dataset=<name>  one of the six Table 2 datasets (default products)
struct BenchOptions {
  double scale = 0.05;
  size_t rules = 255;
  size_t reps = 2;
  DatasetId dataset = DatasetId::kProducts;

  static BenchOptions Parse(int argc, char** argv) {
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      double d = 0.0;
      int64_t n = 0;
      if (StartsWith(arg, "--scale=") &&
          ParseDouble(arg.substr(8), &d)) {
        opts.scale = d;
      } else if (StartsWith(arg, "--rules=") &&
                 ParseInt64(arg.substr(8), &n)) {
        opts.rules = static_cast<size_t>(n);
      } else if (StartsWith(arg, "--reps=") &&
                 ParseInt64(arg.substr(7), &n)) {
        opts.reps = static_cast<size_t>(n);
      } else if (StartsWith(arg, "--dataset=")) {
        auto id = DatasetIdFromName(arg.substr(10));
        if (id.ok()) opts.dataset = *id;
      }
    }
    return opts;
  }
};

/// A fully prepared benchmark environment: scaled dataset, catalog with
/// every same-attribute feature, evaluation context, estimation sample,
/// and a rule generator mirroring the paper's 255-rule Products set.
struct BenchEnv {
  DatasetProfile profile;
  GeneratedDataset ds;
  FeatureCatalog catalog;
  std::unique_ptr<PairContext> ctx;
  CandidateSet sample;  // 1% estimation sample (paper Sec. 7.3)
  std::unique_ptr<RuleGenerator> generator;

  static BenchEnv Make(const BenchOptions& opts,
                       uint64_t rule_seed = 20170321) {
    BenchEnv env;
    env.profile =
        ScaleProfile(PaperDatasetProfile(opts.dataset), opts.scale);
    env.ds = GenerateDataset(env.profile);
    env.catalog = FeatureCatalog(env.ds.a.schema(), env.ds.b.schema());
    env.catalog.InternAllSameAttribute();
    env.ctx = std::make_unique<PairContext>(env.ds.a, env.ds.b,
                                            env.catalog);
    Rng rng(rule_seed);
    env.sample = SamplePairs(env.ds.candidates, 0.01, rng, 100);
    RuleGeneratorConfig config;
    config.num_rules = opts.rules;
    config.min_predicates = 4;
    config.max_predicates = 9;
    // Paper Table 2: products uses 32 of 33 features. Our catalog has
    // 13 functions x 5 attributes; restrict to a 32-feature pool.
    config.feature_pool = 32;
    config.seed = rule_seed;
    env.generator =
        std::make_unique<RuleGenerator>(*env.ctx, env.sample, config);
    return env;
  }

  /// A fresh rule set of `n` rules drawn from the generator's pool (the
  /// paper evaluates random subsets of its 255 rules).
  MatchingFunction RuleSubset(size_t n, uint64_t seed) const {
    Rng rng(seed);
    MatchingFunction fn;
    for (const Rule& r : generator->GenerateRules(n, rng)) fn.AddRule(r);
    return fn;
  }
};

inline void PrintHeader(const char* title, const BenchOptions& opts,
                        const BenchEnv& env) {
  std::printf("## %s\n", title);
  std::printf(
      "# dataset=%s scale=%.3g: |A|=%zu |B|=%zu candidates=%zu "
      "true_matches=%zu rules=%zu reps=%zu\n",
      env.profile.name.c_str(), opts.scale, env.ds.a.num_rows(),
      env.ds.b.num_rows(), env.ds.candidates.size(),
      env.ds.true_matches.size(), opts.rules, opts.reps);
}

}  // namespace emdbg::bench

#endif  // EMDBG_BENCH_BENCH_COMMON_H_
