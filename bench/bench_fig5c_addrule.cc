/// Regenerates Fig. 5C: the add-rule experiment. Starting from an empty
/// matching function, rules are added one at a time; after each addition
/// the matching result is brought up to date in two ways:
///
///   * "precompute variation": re-evaluate the whole rule set with DM+EE
///     (early exit + check-cache-first) against the persistent memo;
///   * "fully incremental": Algorithm 10 — evaluate only the new rule on
///     the currently unmatched pairs.
///
/// Expected shape (paper): iteration 1 is slow for both (cold memo); the
/// precompute variation grows steadily with the rule count, while fully
/// incremental stays roughly flat with occasional spikes when a new rule
/// forces many fresh feature computations.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/incremental.h"
#include "src/core/memo_matcher.h"
#include "src/util/stats.h"
#include "src/util/stopwatch.h"

namespace emdbg::bench {
namespace {

void Run(const BenchOptions& opts) {
  const BenchEnv env = BenchEnv::Make(opts);
  PrintHeader("Figure 5C: add-rule iteration time (ms)", opts, env);

  Rng rng(6);
  const std::vector<Rule> pool =
      env.generator->GenerateRules(opts.rules, rng);

  // Fully incremental engine.
  IncrementalMatcher inc(*env.ctx, env.ds.candidates);
  inc.FullRun(MatchingFunction());

  // Precompute variation: persistent state, full re-run each iteration.
  MatchingFunction batch_fn;
  MatchState batch_state;
  MemoMatcher batch_matcher(
      MemoMatcher::Options{.check_cache_first = true});

  std::printf("%6s %16s %16s\n", "k", "precompute_ms", "incremental_ms");
  RunningStats precompute_stats;
  RunningStats incremental_stats;
  for (size_t k = 0; k < pool.size(); ++k) {
    batch_fn.AddRule(pool[k]);
    Stopwatch batch_timer;
    batch_matcher.RunWithState(batch_fn, env.ds.candidates, *env.ctx,
                               batch_state);
    const double batch_ms = batch_timer.ElapsedMillis();

    auto stats = inc.AddRule(pool[k]);
    const double inc_ms = stats.ok() ? stats->elapsed_ms : -1.0;

    precompute_stats.Add(batch_ms);
    incremental_stats.Add(inc_ms);
    // Print the first 10 iterations, then every 10th.
    if (k < 10 || (k + 1) % 10 == 0) {
      std::printf("%6zu %16.2f %16.2f\n", k + 1, batch_ms, inc_ms);
    }
  }
  std::printf(
      "# precompute: mean %.2f ms (max %.2f) | incremental: mean %.2f ms "
      "(max %.2f)\n\n",
      precompute_stats.mean(), precompute_stats.max(),
      incremental_stats.mean(), incremental_stats.max());
}

}  // namespace
}  // namespace emdbg::bench

int main(int argc, char** argv) {
  emdbg::bench::Run(emdbg::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
