/// Regenerates the paper's Table 2: the six real-world data sets
/// (synthetic equivalents — see DESIGN.md "Substitutions"). Prints one row
/// per dataset with table sizes, candidate-pair counts, and rule/feature
/// counts of the accompanying generated rule set.
///
/// By default the datasets are generated at --scale=0.05 of the paper's
/// sizes so this binary runs in seconds; pass --scale=1 for full Table 2
/// shapes.

#include <cstdio>
#include <set>

#include "bench/bench_common.h"
#include "src/core/rule_generator.h"

namespace emdbg::bench {
namespace {

void Run(const BenchOptions& opts) {
  std::printf("## Table 2: data sets used in the experiments\n");
  std::printf("# scale=%.3g (paper shapes at --scale=1)\n", opts.scale);
  std::printf("%-12s %9s %9s %12s %8s %7s %7s %7s\n", "dataset", "tableA",
              "tableB", "candidates", "matches", "rules", "used_f",
              "total_f");
  for (const DatasetProfile& base : AllPaperDatasetProfiles()) {
    const DatasetProfile profile = ScaleProfile(base, opts.scale);
    const GeneratedDataset ds = GenerateDataset(profile);
    FeatureCatalog catalog(ds.a.schema(), ds.b.schema());
    catalog.InternAllSameAttribute();
    PairContext ctx(ds.a, ds.b, catalog);
    Rng rng(1);
    const CandidateSet sample = SamplePairs(ds.candidates, 0.01, rng, 100);
    RuleGeneratorConfig config;
    config.num_rules = opts.rules;
    config.feature_pool = 32;
    config.seed = 99;
    RuleGenerator gen(ctx, sample, config);
    const MatchingFunction fn = gen.Generate();
    std::printf("%-12s %9zu %9zu %12zu %8zu %7zu %7zu %7zu\n",
                profile.name.c_str(), ds.a.num_rows(), ds.b.num_rows(),
                ds.candidates.size(), ds.true_matches.size(),
                fn.num_rules(), fn.UsedFeatures().size(), catalog.size());
  }
  std::printf("\n");
}

}  // namespace
}  // namespace emdbg::bench

int main(int argc, char** argv) {
  emdbg::bench::Run(emdbg::bench::BenchOptions::Parse(argc, argv));
  return 0;
}
