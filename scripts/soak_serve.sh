#!/usr/bin/env bash
# Soak test for the debug service: the loadgen drives N concurrent durable
# sessions against emdbg_serve under deterministic fault injection
# (journal fsync failures, dropped connection reads, slowed workers),
# SIGKILLs the server mid-flight, restarts it, and resumes every session.
# The loadgen exits nonzero if any post-crash session digest differs from
# its pre-crash value — i.e. if a single acknowledged edit was lost.
#
# A second phase checks clean SIGTERM shutdown: the server must drain,
# checkpoint, and exit 0 on its own.
#
#   scripts/soak_serve.sh [build-dir]          # default: build
#
# Produces BENCH_serve.json in the repo root. Takes ~30s.

set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"

serve="$build/tools/emdbg_serve"
loadgen="$build/tools/emdbg_loadgen"
for bin in "$serve" "$loadgen"; do
  if [ ! -x "$bin" ]; then
    echo "missing $bin — build with: cmake --build $build -j --target $(basename "$bin")" >&2
    exit 2
  fi
done

root="$(mktemp -d /tmp/emdbg_soak.XXXXXX)"
trap 'rm -rf "$root"' EXIT

echo "==> soak: fault-injected load + kill -9 recovery (root $root)"
"$loadgen" \
  --server-bin="$serve" \
  --dataset=products --scale=0.02 \
  --sessions=8 --edits=25 \
  --durability-root="$root/sessions" \
  --workers=4 \
  --server-arg=--fault=journal.fsync:9 \
  --server-arg=--fault=serve.slow_task:5 \
  --server-arg=--fault-prob=serve.read:0.02:7

python3 - <<'EOF'
import json
with open("BENCH_serve.json") as f:
    bench = json.load(f)
assert bench.get("recovery", {}).get("digest_mismatches", 1) == 0, bench
print("==> soak: zero lost acknowledged edits; BENCH_serve.json is valid")
EOF

echo "==> shutdown: SIGTERM must drain and exit cleanly"
log="$root/serve.log"
"$serve" --dataset=products --scale=0.01 --port=0 \
  --durability-root="$root/shutdown" >"$log" 2>&1 &
pid=$!
for _ in $(seq 1 100); do
  grep -q '^listening ' "$log" 2>/dev/null && break
  sleep 0.1
done
grep -q '^listening ' "$log" || { cat "$log" >&2; exit 1; }
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "server exited $rc after SIGTERM" >&2
  cat "$log" >&2
  exit 1
fi
echo "==> shutdown: clean exit after SIGTERM"
echo "==> soak_serve: all checks passed"
