#!/usr/bin/env bash
# Build-and-test gate for emdbg.
#
#   scripts/check.sh                 # release build + full test suite
#   scripts/check.sh asan            # AddressSanitizer build + tests
#   scripts/check.sh tsan            # ThreadSanitizer build + tests
#                                    #   (the cancellation/worker-drain
#                                    #   paths are the interesting part)
#   scripts/check.sh all             # release, then asan, then tsan
#
# Each mode uses its own build directory (build/, build-asan/,
# build-tsan/) so switching sanitizers never requires a clean.

set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

run_mode() {
  local mode="$1" dir sanitize
  case "$mode" in
    release) dir=build;      sanitize="" ;;
    asan)    dir=build-asan; sanitize=address ;;
    tsan)    dir=build-tsan; sanitize=thread ;;
    *) echo "unknown mode '$mode' (want release, asan, tsan, or all)" >&2
       exit 2 ;;
  esac

  echo "==> [$mode] configure"
  if [ -n "$sanitize" ]; then
    cmake -B "$dir" -S . \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DEMDBG_SANITIZE="$sanitize" \
      -DEMDBG_BUILD_BENCHMARKS=OFF >/dev/null
  else
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  fi

  echo "==> [$mode] build"
  cmake --build "$dir" -j "$jobs"

  echo "==> [$mode] test"
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

case "${1:-release}" in
  all)
    run_mode release
    run_mode asan
    run_mode tsan
    ;;
  *)
    run_mode "${1:-release}"
    ;;
esac

echo "==> all checks passed"
