#!/usr/bin/env bash
# Build-and-test gate for emdbg.
#
#   scripts/check.sh                 # release build + full test suite
#   scripts/check.sh asan            # AddressSanitizer build + tests
#   scripts/check.sh tsan            # ThreadSanitizer build + the
#                                    #   thread-pool / parallel-matcher /
#                                    #   incremental / session tests (the
#                                    #   concurrent paths; EMDBG_TSAN_ALL=1
#                                    #   runs the whole suite)
#   scripts/check.sh ubsan           # UBSan build + the arithmetic-heavy
#                                    #   and budget/governor tests
#                                    #   (EMDBG_UBSAN_ALL=1 = whole suite)
#   scripts/check.sh all             # release, asan, tsan, then ubsan
#
# Each mode uses its own build directory (build/, build-asan/,
# build-tsan/, build-ubsan/) so switching sanitizers never requires a
# clean; the sanitizer modes configure through the CMake presets in
# CMakePresets.json.

set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

# The tests that exercise concurrency: the work-stealing pool itself and
# everything that fans out over it (parallel matcher, pooled incremental
# re-matching, multi-threaded sessions, prewarm, cancellation drains),
# plus the serve layer (worker pool + poll loop + per-session queues),
# its wire protocol, the soak test, and fault injection (its registry is
# read from every worker thread).
tsan_filter='ThreadPool|Parallel|WorkerPool|MultiThreaded|Cancel|Sharded'
tsan_filter+='|Server|Soak|Wire|SessionDigest|Fault'

# UBSan focuses on the arithmetic-heavy kernels (similarity, CRC,
# bit-parallel Levenshtein, TF-IDF weights) and the resource-governor
# accounting, whose size_t charge/rollback/saturation paths are exactly
# where unsigned wraparound bugs would live.
ubsan_filter='Similarity|Levenshtein|Jaro|Cosine|Tfidf|SoftTfidf|Crc32c'
ubsan_filter+='|Numeric|MongeElkan|Alignment|Interner|IdKernels'
ubsan_filter+='|MemoryBudget|BudgetFault|Governor|Memo|Bitmap'

run_mode() {
  local mode="$1" dir
  case "$mode" in
    release) dir=build ;;
    asan)    dir=build-asan ;;
    tsan)    dir=build-tsan ;;
    ubsan)   dir=build-ubsan ;;
    *) echo "unknown mode '$mode' (want release, asan, tsan, ubsan, or all)" >&2
       exit 2 ;;
  esac

  echo "==> [$mode] configure"
  if [ "$mode" = release ]; then
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  else
    cmake --preset "$mode" >/dev/null
  fi

  echo "==> [$mode] build"
  cmake --build "$dir" -j "$jobs"

  echo "==> [$mode] test"
  if [ "$mode" = tsan ] && [ "${EMDBG_TSAN_ALL:-0}" != 1 ]; then
    ctest --test-dir "$dir" --output-on-failure -j "$jobs" \
      -R "$tsan_filter"
  elif [ "$mode" = ubsan ] && [ "${EMDBG_UBSAN_ALL:-0}" != 1 ]; then
    UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
      ctest --test-dir "$dir" --output-on-failure -j "$jobs" \
      -R "$ubsan_filter"
  else
    ctest --test-dir "$dir" --output-on-failure -j "$jobs"
  fi
}

case "${1:-release}" in
  all)
    run_mode release
    run_mode asan
    run_mode tsan
    run_mode ubsan
    ;;
  *)
    run_mode "${1:-release}"
    ;;
esac

echo "==> all checks passed"
