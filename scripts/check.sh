#!/usr/bin/env bash
# Build-and-test gate for emdbg.
#
#   scripts/check.sh                 # release build + full test suite
#   scripts/check.sh asan            # AddressSanitizer build + tests
#   scripts/check.sh tsan            # ThreadSanitizer build + the
#                                    #   thread-pool / parallel-matcher /
#                                    #   incremental / session tests (the
#                                    #   concurrent paths; EMDBG_TSAN_ALL=1
#                                    #   runs the whole suite)
#   scripts/check.sh all             # release, then asan, then tsan
#
# Each mode uses its own build directory (build/, build-asan/,
# build-tsan/) so switching sanitizers never requires a clean; the
# sanitizer modes configure through the CMake presets in
# CMakePresets.json.

set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

# The tests that exercise concurrency: the work-stealing pool itself and
# everything that fans out over it (parallel matcher, pooled incremental
# re-matching, multi-threaded sessions, prewarm, cancellation drains),
# plus the serve layer (worker pool + poll loop + per-session queues),
# its wire protocol, the soak test, and fault injection (its registry is
# read from every worker thread).
tsan_filter='ThreadPool|Parallel|WorkerPool|MultiThreaded|Cancel|Sharded'
tsan_filter+='|Server|Soak|Wire|SessionDigest|Fault'

run_mode() {
  local mode="$1" dir
  case "$mode" in
    release) dir=build ;;
    asan)    dir=build-asan ;;
    tsan)    dir=build-tsan ;;
    *) echo "unknown mode '$mode' (want release, asan, tsan, or all)" >&2
       exit 2 ;;
  esac

  echo "==> [$mode] configure"
  if [ "$mode" = release ]; then
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  else
    cmake --preset "$mode" >/dev/null
  fi

  echo "==> [$mode] build"
  cmake --build "$dir" -j "$jobs"

  echo "==> [$mode] test"
  if [ "$mode" = tsan ] && [ "${EMDBG_TSAN_ALL:-0}" != 1 ]; then
    ctest --test-dir "$dir" --output-on-failure -j "$jobs" \
      -R "$tsan_filter"
  else
    ctest --test-dir "$dir" --output-on-failure -j "$jobs"
  fi
}

case "${1:-release}" in
  all)
    run_mode release
    run_mode asan
    run_mode tsan
    ;;
  *)
    run_mode "${1:-release}"
    ;;
esac

echo "==> all checks passed"
