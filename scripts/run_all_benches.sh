#!/usr/bin/env bash
# Runs every benchmark binary and tees the combined output — the input for
# EXPERIMENTS.md. Pass extra flags through, e.g.:
#   scripts/run_all_benches.sh --scale=0.2 --reps=5
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${OUT:-bench_output.txt}

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "build first: cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

: > "$OUT"
for b in "$BUILD_DIR"/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "=== $(basename "$b") $* ===" | tee -a "$OUT"
  "$b" "$@" 2>&1 | tee -a "$OUT"
done
echo "wrote $OUT"
