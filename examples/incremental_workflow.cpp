/// Demonstrates the incremental engine (Sec. 6) head to head against
/// from-scratch re-runs: the same sequence of rule edits is applied to
/// (a) an incremental DebugSession and (b) a non-incremental one that
/// re-evaluates everything after each edit (the "precompute variation").
/// Both must produce identical matches; the incremental session should be
/// orders of magnitude cheaper per edit.
///
/// Usage: ./build/examples/incremental_workflow [--scale=0.05]

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/debug_session.h"
#include "src/data/datasets.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

using namespace emdbg;

namespace {

struct Step {
  const char* description;
  // Applies the edit to a session; returns false on error.
  bool (*apply)(DebugSession&);
};

bool AddFuzzy(DebugSession& s) {
  return s
      .AddRuleText(
          "fuzzy: trigram(title, title) >= 0.5 AND "
          "exact_match(category, category) >= 1")
      .ok();
}

bool AddModel(DebugSession& s) {
  return s.AddRuleText("model: exact_match(modelno, modelno) >= 1").ok();
}

bool AddBrandTitle(DebugSession& s) {
  return s
      .AddRuleText(
          "brandtitle: jaro_winkler(brand, brand) >= 0.92 AND "
          "jaccard(title, title) >= 0.45")
      .ok();
}

bool TightenFuzzy(DebugSession& s) {
  // Find rule "fuzzy" and its trigram predicate.
  for (const Rule& r : s.function().rules()) {
    if (r.name() != "fuzzy") continue;
    for (const Predicate& p : r.predicates()) {
      if (s.catalog().feature(p.feature).fn == SimFunction::kTrigram) {
        return s.SetThreshold(r.id(), p.id, 0.6).ok();
      }
    }
  }
  return false;
}

bool RelaxBrandTitle(DebugSession& s) {
  for (const Rule& r : s.function().rules()) {
    if (r.name() != "brandtitle") continue;
    for (const Predicate& p : r.predicates()) {
      if (s.catalog().feature(p.feature).fn == SimFunction::kJaccard) {
        return s.SetThreshold(r.id(), p.id, 0.35).ok();
      }
    }
  }
  return false;
}

bool RemoveModel(DebugSession& s) {
  for (const Rule& r : s.function().rules()) {
    if (r.name() == "model") return s.RemoveRule(r.id()).ok();
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.05;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    double v = 0.0;
    if (StartsWith(arg, "--scale=") && ParseDouble(arg.substr(8), &v)) {
      scale = v;
    }
  }
  const DatasetProfile profile =
      ScaleProfile(PaperDatasetProfile(DatasetId::kProducts), scale);
  const GeneratedDataset ds = GenerateDataset(profile);
  std::printf("dataset: %zu candidates\n\n", ds.candidates.size());

  DebugSession::Options inc_options;
  inc_options.incremental = true;
  DebugSession incremental(ds.a, ds.b, ds.candidates, inc_options);
  DebugSession::Options batch_options;
  batch_options.incremental = false;
  DebugSession batch(ds.a, ds.b, ds.candidates, batch_options);

  // Seed both with one rule and run once (cold start).
  if (!AddFuzzy(incremental) || !AddFuzzy(batch)) return 1;
  incremental.Run();
  batch.Run();
  std::printf("cold start: incremental %.1f ms | batch %.1f ms\n\n",
              incremental.last_stats().elapsed_ms,
              batch.last_stats().elapsed_ms);

  const std::vector<Step> steps = {
      {"add rule 'model'", AddModel},
      {"add rule 'brandtitle'", AddBrandTitle},
      {"tighten fuzzy trigram", TightenFuzzy},
      {"relax brandtitle jaccard", RelaxBrandTitle},
      {"remove rule 'model'", RemoveModel},
  };
  std::printf("%-28s %14s %14s %8s\n", "edit", "incremental_ms",
              "batch_ms", "agree");
  for (const Step& step : steps) {
    if (!step.apply(incremental)) return 1;
    const double inc_ms = incremental.last_stats().elapsed_ms;
    Stopwatch batch_timer;
    if (!step.apply(batch)) return 1;
    batch.Run();
    const double batch_ms = batch_timer.ElapsedMillis();
    const bool agree = incremental.Run() == batch.Run();
    std::printf("%-28s %14.2f %14.2f %8s\n", step.description, inc_ms,
                batch_ms, agree ? "yes" : "NO!");
  }
  std::printf("\nincremental state: %s\n",
              incremental.MemoryReport().c_str());
  return 0;
}
