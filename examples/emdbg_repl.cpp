/// An interactive rule-debugging shell — the "full system" the paper's
/// conclusion sketches. Loads two CSV tables (or generates the synthetic
/// products dataset), blocks them, and then accepts commands:
///
///   add <rule-dsl>            add a rule, e.g. add r1: jaccard(title, title) >= 0.7
///   del <rule-name>           remove a rule
///   set <rule> <pred#> <t>    change a predicate threshold
///   rules                     list rules with stable ids
///   run [deadline_ms]         apply the rules (incremental after 1st run);
///                             Ctrl-C or an exceeded deadline stops the run
///                             cleanly and keeps the session alive
///   durable <dir>             enable crash-safe journaling + checkpoints
///   checkpoint                force a checkpoint now
///   recover <dir>             restore a crashed durable session
///   score                     precision/recall vs labels (synthetic mode)
///   explain <a#> <b#>         full decision trace for a pair
///   why <a#> <b#>             near-miss analysis for an unmatched pair
///   save <path> / load <path> persist or restore the rule set
///   mem                       memory report
///   quit
///
/// Usage:
///   ./build/examples/emdbg_repl                        # synthetic products
///   ./build/examples/emdbg_repl a.csv b.csv category   # own data + key blocker
///
/// `--threads=N` (anywhere on the command line) runs full and
/// incremental matching on the session's persistent work-stealing pool
/// (0 = all hardware threads); results are identical to serial.
/// `--block[=N]` switches to columnar batch evaluation (bare or =0 picks
/// a cost-model-driven block size; N = pairs per block, rounded up to a
/// multiple of 64) — same results, fewer orchestration stalls.
///
/// Also scriptable: pipe commands via stdin.

#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/block/key_blocker.h"
#include "src/core/debug_session.h"
#include "src/core/explain.h"
#include "src/core/rule_parser.h"
#include "src/core/feature_profiler.h"
#include "src/core/rule_simplifier.h"
#include "src/core/threshold_advisor.h"
#include "src/data/datasets.h"
#include "src/data/table_io.h"
#include "src/util/cancellation.h"
#include "src/util/string_util.h"

using namespace emdbg;

namespace {

RuleId FindRuleByName(const MatchingFunction& fn, const std::string& name) {
  for (const Rule& r : fn.rules()) {
    if (r.name() == name) return r.id();
  }
  return kInvalidRule;
}

void PrintHelp() {
  std::printf(
      "commands: add <dsl> | del <rule> | set <rule> <pred#> <t> | rules |"
      " run [deadline_ms] | score | explain <a> <b> | why <a> <b> |"
      " advise <rule> <pred#> | lint | profile <fn> <attr> | undo |"
      " history | report | durable <dir> | checkpoint | recover <dir> |"
      " save <p> | load <p> | mem | help | quit\n");
}

}  // namespace

int main(int argc, char** argv) {
  Table a;
  Table b;
  CandidateSet pairs;
  PairLabels labels;
  bool have_labels = false;

  DebugSession::Options options;
  std::vector<char*> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    int64_t n = 0;
    if (StartsWith(arg, "--threads=") &&
        ParseInt64(arg.substr(10), &n) && n >= 0) {
      options.num_threads = static_cast<size_t>(n);
    } else if (arg == "--block") {
      options.block_size = 0;  // bare flag = auto block size
    } else if (StartsWith(arg, "--block=") &&
               ParseInt64(arg.substr(8), &n) && n >= 0) {
      options.block_size = static_cast<size_t>(n);
    } else {
      positional.push_back(argv[i]);
    }
  }

  if (positional.size() >= 3) {
    auto ta = LoadTableCsv(positional[0]);
    auto tb = LoadTableCsv(positional[1]);
    if (!ta.ok() || !tb.ok()) {
      std::fprintf(stderr, "load failed: %s %s\n",
                   ta.status().ToString().c_str(),
                   tb.status().ToString().c_str());
      return 1;
    }
    auto blocked = KeyBlocker(positional[2]).Block(*ta, *tb);
    if (!blocked.ok()) {
      std::fprintf(stderr, "blocking failed: %s\n",
                   blocked.status().ToString().c_str());
      return 1;
    }
    a = std::move(*ta);
    b = std::move(*tb);
    pairs = std::move(*blocked);
  } else {
    const DatasetProfile profile =
        ScaleProfile(PaperDatasetProfile(DatasetId::kProducts), 0.05);
    GeneratedDataset ds = GenerateDataset(profile);
    a = std::move(ds.a);
    b = std::move(ds.b);
    pairs = std::move(ds.candidates);
    labels = std::move(ds.labels);
    have_labels = true;
    std::printf("synthetic products dataset: %zu candidates "
                "(labels available — try 'score')\n",
                pairs.size());
  }

  DebugSession session(std::move(a), std::move(b), std::move(pairs),
                       options);
  if (session.pool() != nullptr) {
    std::printf("worker pool: %zu threads\n",
                session.pool()->num_workers());
  }
  PrintHelp();

  // Ctrl-C during a run cancels it (the run returns partial and the
  // session stays alive); the token is re-armed before each run.
  // SIGTERM / SIGHUP additionally request exit: the prompt read returns
  // with EINTR, the loop breaks, and a durable session is checkpointed
  // before the process leaves — service-style shutdown for scripted use.
  CancellationToken cancel;
  ShutdownSignals shutdown(cancel);

  std::string line;
  while (std::printf("emdbg> "), std::fflush(stdout),
         !shutdown.exit_requested() && std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
    } else if (cmd == "add") {
      std::string rest;
      std::getline(in, rest);
      auto rid = session.AddRuleText(rest);
      if (!rid.ok()) {
        std::printf("error: %s\n", rid.status().ToString().c_str());
      } else {
        std::printf("added rule %s (%s)\n",
                    session.function().RuleById(*rid)->name().c_str(),
                    session.last_stats().ToString().c_str());
      }
    } else if (cmd == "del") {
      std::string name;
      in >> name;
      const RuleId rid = FindRuleByName(session.function(), name);
      if (rid == kInvalidRule) {
        std::printf("no rule named '%s'\n", name.c_str());
        continue;
      }
      const Status s = session.RemoveRule(rid);
      std::printf("%s\n", s.ok() ? "removed" : s.ToString().c_str());
    } else if (cmd == "set") {
      std::string name;
      size_t pred_pos = 0;
      double threshold = 0.0;
      in >> name >> pred_pos >> threshold;
      const RuleId rid = FindRuleByName(session.function(), name);
      if (rid == kInvalidRule) {
        std::printf("no rule named '%s'\n", name.c_str());
        continue;
      }
      const Rule* rule = session.function().RuleById(rid);
      if (pred_pos >= rule->size()) {
        std::printf("rule has %zu predicates\n", rule->size());
        continue;
      }
      const Status s = session.SetThreshold(
          rid, rule->predicate(pred_pos).id, threshold);
      std::printf("%s (%s)\n", s.ok() ? "ok" : s.ToString().c_str(),
                  session.last_stats().ToString().c_str());
    } else if (cmd == "rules") {
      const MatchingFunction& fn = session.function();
      if (fn.empty()) std::printf("(no rules)\n");
      for (const Rule& r : fn.rules()) {
        std::printf("%s\n", r.ToString(session.catalog()).c_str());
      }
    } else if (cmd == "run") {
      double deadline_ms = 0.0;
      in >> deadline_ms;
      cancel.Reset();  // a Ctrl-C from a previous run must not linger
      const RunControl control =
          deadline_ms > 0
              ? RunControl(cancel, Deadline::AfterMillis(deadline_ms))
              : RunControl(cancel);
      const MatchResult result = session.Run(control);
      if (result.partial) {
        std::printf("run stopped early (%s): %zu of %zu pairs evaluated, "
                    "%zu matched so far (%s)\n",
                    result.status.ToString().c_str(),
                    result.pairs_completed, session.candidates().size(),
                    result.MatchCount(),
                    session.last_stats().ToString().c_str());
      } else {
        std::printf("%zu / %zu pairs match (%s)\n", result.MatchCount(),
                    session.candidates().size(),
                    session.last_stats().ToString().c_str());
      }
    } else if (cmd == "durable") {
      std::string dir;
      in >> dir;
      if (dir.empty()) {
        std::printf("usage: durable <dir>\n");
        continue;
      }
      const Status s = session.EnableDurability(dir);
      std::printf("%s\n", s.ok() ? "durability on — every edit is "
                                   "journaled, checkpoint written"
                                 : s.ToString().c_str());
    } else if (cmd == "checkpoint") {
      const Status s = session.Checkpoint();
      std::printf("%s\n",
                  s.ok() ? "checkpoint written" : s.ToString().c_str());
    } else if (cmd == "recover") {
      std::string dir;
      in >> dir;
      if (dir.empty()) {
        std::printf("usage: recover <dir>\n");
        continue;
      }
      const Status s = session.Recover(dir);
      std::printf("%s\n", s.ok() ? "session recovered — checkpoint loaded "
                                   "and journal replayed"
                                 : s.ToString().c_str());
    } else if (cmd == "score") {
      if (!have_labels) {
        std::printf("no labels loaded\n");
        continue;
      }
      std::printf("%s\n", session.Score(labels).ToString().c_str());
    } else if (cmd == "explain" || cmd == "why") {
      uint32_t ra = 0;
      uint32_t rb = 0;
      in >> ra >> rb;
      if (ra >= session.context().table_a().num_rows() ||
          rb >= session.context().table_b().num_rows()) {
        std::printf("row out of range\n");
        continue;
      }
      if (cmd == "explain") {
        std::printf("%s", ExplainPair(session.function(), PairId{ra, rb},
                                      session.context())
                              .ToString(session.catalog())
                              .c_str());
      } else {
        std::printf("%s",
                    NearMissesToString(
                        FindNearMisses(session.function(), PairId{ra, rb},
                                       session.context()),
                        session.catalog())
                        .c_str());
      }
    } else if (cmd == "profile") {
      if (!have_labels) {
        std::printf("profile needs labels (synthetic mode only)\n");
        continue;
      }
      std::string fn_name;
      std::string attr;
      in >> fn_name >> attr;
      auto sim = SimFunctionFromName(fn_name);
      if (!sim.ok()) {
        std::printf("error: %s\n", sim.status().ToString().c_str());
        continue;
      }
      auto feature = session.catalog().InternByName(*sim, attr, attr);
      if (!feature.ok()) {
        std::printf("error: %s\n", feature.status().ToString().c_str());
        continue;
      }
      auto profile = ProfileFeature(*feature, session.candidates(), labels,
                                    session.context());
      if (!profile.ok()) {
        std::printf("error: %s\n", profile.status().ToString().c_str());
        continue;
      }
      std::printf("%s", profile->ToString(session.catalog()).c_str());
    } else if (cmd == "lint") {
      const auto findings =
          AnalyzeRules(session.function(), session.catalog());
      if (findings.empty()) {
        std::printf("no findings — the rule set is clean\n");
      }
      for (const SimplifierFinding& f : findings) {
        std::printf("[%s] %s\n", FindingKindName(f.kind),
                    f.description.c_str());
      }
    } else if (cmd == "undo") {
      const Status s = session.Undo();
      std::printf("%s (%s)\n", s.ok() ? "undone" : s.ToString().c_str(),
                  session.last_stats().ToString().c_str());
    } else if (cmd == "history") {
      const std::string h = session.History();
      std::printf("%s", h.empty() ? "(no edits journaled)\n" : h.c_str());
    } else if (cmd == "advise") {
      if (!have_labels) {
        std::printf("advise needs labels (synthetic mode only)\n");
        continue;
      }
      std::string name;
      size_t pred_pos = 0;
      in >> name >> pred_pos;
      const RuleId rid = FindRuleByName(session.function(), name);
      if (rid == kInvalidRule) {
        std::printf("no rule named '%s'\n", name.c_str());
        continue;
      }
      const Rule* rule = session.function().RuleById(rid);
      if (pred_pos >= rule->size()) {
        std::printf("rule has %zu predicates\n", rule->size());
        continue;
      }
      auto advice = AdviseThreshold(
          session.function(), rid, rule->predicate(pred_pos).id,
          session.candidates(), labels, session.context());
      if (!advice.ok()) {
        std::printf("error: %s\n", advice.status().ToString().c_str());
        continue;
      }
      std::printf("%10s %10s %10s %10s\n", "threshold", "precision",
                  "recall", "f1");
      for (const ThresholdOption& opt : advice->options) {
        std::printf("%10.3f %10.3f %10.3f %10.3f%s\n", opt.threshold,
                    opt.precision, opt.recall, opt.f1,
                    &opt == &advice->best() ? "  <- suggested" : "");
      }
    } else if (cmd == "save") {
      std::string path;
      in >> path;
      const Status s =
          SaveRulesFile(session.function(), session.catalog(), path);
      std::printf("%s\n", s.ok() ? "saved" : s.ToString().c_str());
    } else if (cmd == "suspend") {
      std::string prefix;
      in >> prefix;
      const Status s = session.SaveSession(prefix);
      std::printf("%s\n",
                  s.ok() ? "session suspended (rules + state)"
                         : s.ToString().c_str());
    } else if (cmd == "resume") {
      std::string prefix;
      in >> prefix;
      const Status s = session.ResumeSession(prefix);
      std::printf("%s\n", s.ok() ? "session resumed — no recomputation"
                                 : s.ToString().c_str());
    } else if (cmd == "load") {
      std::string path;
      in >> path;
      auto fn = LoadRulesFile(path, session.catalog());
      if (!fn.ok()) {
        std::printf("error: %s\n", fn.status().ToString().c_str());
        continue;
      }
      // Replace current rules with the loaded set.
      while (!session.function().empty()) {
        (void)session.RemoveRule(session.function().rule(0).id());
      }
      for (const Rule& r : fn->rules()) {
        Rule copy = r;  // ids are re-assigned by the session's function
        if (!session.AddRule(copy).ok()) break;
      }
      std::printf("loaded %zu rules\n", session.function().num_rules());
    } else if (cmd == "mem") {
      std::printf("%s\n", session.MemoryReport().c_str());
    } else if (cmd == "report") {
      std::printf("%s", session.RuleActivityReport().c_str());
    } else {
      std::printf("unknown command '%s'\n", cmd.c_str());
      PrintHelp();
    }
  }

  if (shutdown.exit_requested() && session.durable()) {
    const Status s = session.Checkpoint();
    if (s.ok()) {
      std::fprintf(stderr, "\nshutdown requested: durable session "
                           "checkpointed; resume with 'recover <dir>'\n");
    } else {
      std::fprintf(stderr,
                   "\nshutdown requested, but the final checkpoint failed: "
                   "%s (the journal is still authoritative)\n",
                   s.ToString().c_str());
    }
  } else if (shutdown.exit_requested()) {
    std::fprintf(stderr, "\nshutdown requested: exiting\n");
  }
  return 0;
}
