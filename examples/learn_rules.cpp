/// Reproduces how the paper obtained its 255-rule Products set (Sec. 7.1):
/// train a random forest over similarity features on a labeled sample,
/// extract the positive root-to-leaf paths as CNF rules (cf. Fig. 4's
/// mixed >= / < rules), and load them into a debugging session.
///
/// Usage: ./build/examples/learn_rules [--scale=0.05] [--trees=30]

#include <cstdio>
#include <string>
#include <unordered_set>

#include "src/core/debug_session.h"
#include "src/core/sampler.h"
#include "src/data/datasets.h"
#include "src/learn/rule_extraction.h"
#include "src/util/string_util.h"

using namespace emdbg;

int main(int argc, char** argv) {
  double scale = 0.05;
  size_t trees = 30;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    double d = 0.0;
    int64_t n = 0;
    if (StartsWith(arg, "--scale=") && ParseDouble(arg.substr(8), &d)) {
      scale = d;
    } else if (StartsWith(arg, "--trees=") &&
               ParseInt64(arg.substr(8), &n)) {
      trees = static_cast<size_t>(n);
    }
  }

  const DatasetProfile profile =
      ScaleProfile(PaperDatasetProfile(DatasetId::kProducts), scale);
  const GeneratedDataset ds = GenerateDataset(profile);
  std::printf("dataset: %zu candidates, %zu true matches\n",
              ds.candidates.size(), ds.true_matches.size());

  // Feature space: all same-attribute features (Table 2's "total
  // features" superset).
  FeatureCatalog catalog(ds.a.schema(), ds.b.schema());
  const std::vector<FeatureId> features = catalog.InternAllSameAttribute();
  PairContext ctx(ds.a, ds.b, catalog);

  // Labeled training sample: a random 30% of the candidates (the paper
  // labels a sample of candidate pairs; we have generator ground truth).
  Rng rng(12);
  const CandidateSet train = SamplePairs(ds.candidates, 0.3, rng, 500);
  std::vector<char> labels(train.size(), 0);
  {
    std::unordered_set<uint64_t> match_keys;
    for (const PairId& m : ds.true_matches) {
      match_keys.insert((static_cast<uint64_t>(m.a) << 32) | m.b);
    }
    for (size_t i = 0; i < train.size(); ++i) {
      const PairId p = train.pair(i);
      labels[i] =
          match_keys.count((static_cast<uint64_t>(p.a) << 32) | p.b) ? 1
                                                                     : 0;
    }
  }

  std::printf("computing %zu features x %zu sample pairs...\n",
              features.size(), train.size());
  const FeatureMatrix matrix = BuildFeatureMatrix(ctx, train, features);

  ForestConfig forest_config;
  forest_config.num_trees = trees;
  forest_config.tree.max_depth = 7;
  forest_config.seed = 13;
  const RandomForest forest =
      RandomForest::Train(matrix, labels, forest_config);

  RuleExtractionConfig extraction;
  extraction.min_purity = 0.92;
  extraction.min_samples = 3;
  const std::vector<Rule> rules =
      ExtractRules(forest, features, extraction);
  std::printf("forest: %zu trees -> %zu extracted positive rules\n",
              forest.num_trees(), rules.size());

  DebugSession session(ds.a, ds.b, ds.candidates);
  for (const Rule& learned : rules) {
    // Transfer to the session's catalog (same schemas → intern by value).
    Rule copy;
    for (const Predicate& p : learned.predicates()) {
      Predicate q = p;
      q.feature = session.catalog().Intern(catalog.feature(p.feature));
      copy.AddPredicate(q);
    }
    if (!session.AddRule(copy).ok()) return 1;
  }

  const QualityMetrics quality = session.Score(ds.labels);
  std::printf("learned rule set quality: %s\n", quality.ToString().c_str());
  std::printf("matching work: %s\n",
              session.last_stats().ToString().c_str());

  // Show a few of the learned rules, paper-Fig.4 style.
  std::printf("\nsample rules:\n");
  const MatchingFunction& fn = session.function();
  for (size_t i = 0; i < std::min<size_t>(5, fn.num_rules()); ++i) {
    std::printf("  %s\n", fn.rule(i).ToString(session.catalog()).c_str());
  }
  return 0;
}
