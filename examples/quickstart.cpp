/// Quickstart: the paper's Figure 2 example in ~60 lines.
///
/// Two small people tables are matched with a DNF rule set written in the
/// textual DSL; the session applies it with early exit + dynamic memoing
/// and we print each candidate pair's decision.
///
/// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/core/debug_session.h"

using namespace emdbg;

int main() {
  // Table A and Table B (Figure 2 of the paper, lightly extended).
  Table a("A", Schema({"name", "phone", "zip", "street"}));
  (void)a.AppendRow({"John Smith", "206-453-1978", "53703", "12 main st"});
  (void)a.AppendRow({"Bob Jones", "206-453-1978", "53703", "240 elm ave"});

  Table b("B", Schema({"name", "phone", "zip", "street"}));
  (void)b.AppendRow({"John Smith", "453 1978", "53703", "12 main st"});
  (void)b.AppendRow({"John Smyth", "206-453-1978", "53704", "12 main st"});

  // All pairs as candidates (a blocker would normally prune these).
  CandidateSet pairs;
  for (uint32_t i = 0; i < a.num_rows(); ++i) {
    for (uint32_t j = 0; j < b.num_rows(); ++j) {
      pairs.Add(PairId{i, j});
    }
  }

  DebugSession session(a, b, pairs);

  // B1 = (p_name) OR (p_phone AND p2_name) — the paper's first function.
  auto r1 = session.AddRuleText("name: jaccard(name, name) >= 0.9");
  auto r2 = session.AddRuleText(
      "phone: exact_match(phone, phone) >= 1 AND "
      "jaccard(name, name) >= 0.4");
  if (!r1.ok() || !r2.ok()) {
    std::fprintf(stderr, "rule error: %s %s\n",
                 r1.status().ToString().c_str(),
                 r2.status().ToString().c_str());
    return 1;
  }

  const Bitmap& matches = session.Run();
  std::printf("Matching function:\n%s\n\n",
              session.function().ToString(session.catalog()).c_str());
  for (size_t i = 0; i < pairs.size(); ++i) {
    const PairId p = session.candidates().pair(i);
    std::printf("a%u (%s) vs b%u (%s): %s\n", p.a,
                session.context().table_a().Value(p.a, 0).c_str(), p.b,
                session.context().table_b().Value(p.b, 0).c_str(),
                matches.Get(i) ? "MATCH" : "no match");
  }
  std::printf("\nwork: %s\n", session.last_stats().ToString().c_str());
  return 0;
}
