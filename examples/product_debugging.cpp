/// An analyst debugging session on the (generated) Walmart/Amazon-style
/// products dataset — the paper's motivating scenario. The analyst:
///
///   1. writes a strict first rule, runs, inspects precision/recall;
///   2. notices missing matches and adds a fuzzier rule (incremental);
///   3. sees precision drop and tightens a threshold (incremental);
///   4. removes a rule that stopped pulling its weight (incremental).
///
/// Each step prints quality against ground truth and how much work the
/// incremental engine actually did (milliseconds, feature computations).
///
/// Usage: ./build/examples/product_debugging [--scale=0.05]

#include <cstdio>
#include <string>

#include "src/core/debug_session.h"
#include "src/data/datasets.h"
#include "src/util/string_util.h"

using namespace emdbg;

namespace {

void Report(const char* step, DebugSession& session,
            const PairLabels& labels) {
  const QualityMetrics m = session.Score(labels);
  std::printf("%-28s %s | %s\n", step, m.ToString().c_str(),
              session.last_stats().ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  double scale = 0.05;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    double v = 0.0;
    if (StartsWith(arg, "--scale=") && ParseDouble(arg.substr(8), &v)) {
      scale = v;
    }
  }
  const DatasetProfile profile =
      ScaleProfile(PaperDatasetProfile(DatasetId::kProducts), scale);
  std::printf("generating %s (|A|=%zu |B|=%zu)...\n", profile.name.c_str(),
              profile.table_a_rows, profile.table_b_rows);
  const GeneratedDataset ds = GenerateDataset(profile);
  std::printf("candidates=%zu true_matches=%zu\n\n", ds.candidates.size(),
              ds.true_matches.size());

  DebugSession session(ds.a, ds.b, ds.candidates);

  // Iteration 1: a strict, high-precision rule.
  auto strict = session.AddRuleText(
      "strict: exact_match(modelno, modelno) >= 1 AND "
      "jaccard(title, title) >= 0.6");
  if (!strict.ok()) return 1;
  Report("1. strict rule", session, ds.labels);

  // Iteration 2: recall is low — add a fuzzier title rule.
  auto fuzzy = session.AddRuleText(
      "fuzzy: trigram(title, title) >= 0.5 AND "
      "jaro_winkler(brand, brand) >= 0.9 AND "
      "exact_match(category, category) >= 1");
  if (!fuzzy.ok()) return 1;
  Report("2. + fuzzy title rule", session, ds.labels);

  // Iteration 3: relax the strict rule's title threshold to catch dirty
  // twins that still share the model number.
  {
    const Rule* rule = session.function().RuleById(*strict);
    PredicateId title_pid = kInvalidPredicate;
    for (const Predicate& p : rule->predicates()) {
      if (session.catalog().feature(p.feature).fn == SimFunction::kJaccard) {
        title_pid = p.id;
      }
    }
    (void)session.SetThreshold(*strict, title_pid, 0.35);
  }
  Report("3. relax strict title", session, ds.labels);

  // Iteration 4: the fuzzy rule lets in false positives — tighten it.
  {
    const Rule* rule = session.function().RuleById(*fuzzy);
    PredicateId trigram_pid = kInvalidPredicate;
    for (const Predicate& p : rule->predicates()) {
      if (session.catalog().feature(p.feature).fn == SimFunction::kTrigram) {
        trigram_pid = p.id;
      }
    }
    (void)session.SetThreshold(*fuzzy, trigram_pid, 0.62);
  }
  Report("4. tighten fuzzy trigram", session, ds.labels);

  // Iteration 5: try a phone-book-style catch-all, then drop it.
  auto catchall =
      session.AddRuleText("all: jaccard(title, title) >= 0.25");
  if (!catchall.ok()) return 1;
  Report("5. + low-precision rule", session, ds.labels);
  (void)session.RemoveRule(*catchall);
  Report("6. removed it again", session, ds.labels);

  std::printf("\ntotal work: %s\n", session.total_stats().ToString().c_str());
  std::printf("state: %s\n", session.MemoryReport().c_str());
  return 0;
}
