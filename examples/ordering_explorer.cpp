/// Explores the paper's ordering optimization (Sec. 5): for a generated
/// rule set, prints per-rule cost-model estimates (cost, selectivity),
/// then compares the modeled and measured run time of random, Lemma 1 /
/// Theorem 1 ("independent"), Algorithm 5, and Algorithm 6 orderings.
///
/// Usage: ./build/examples/ordering_explorer [--rules=40] [--scale=0.03]

#include <cstdio>
#include <string>

#include "src/core/memo_matcher.h"
#include "src/core/ordering.h"
#include "src/core/rule_generator.h"
#include "src/core/sampler.h"
#include "src/data/datasets.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

using namespace emdbg;

int main(int argc, char** argv) {
  double scale = 0.03;
  size_t rules = 40;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    double d = 0.0;
    int64_t n = 0;
    if (StartsWith(arg, "--scale=") && ParseDouble(arg.substr(8), &d)) {
      scale = d;
    } else if (StartsWith(arg, "--rules=") &&
               ParseInt64(arg.substr(8), &n)) {
      rules = static_cast<size_t>(n);
    }
  }

  const DatasetProfile profile =
      ScaleProfile(PaperDatasetProfile(DatasetId::kProducts), scale);
  const GeneratedDataset ds = GenerateDataset(profile);
  FeatureCatalog catalog(ds.a.schema(), ds.b.schema());
  catalog.InternAllSameAttribute();
  PairContext ctx(ds.a, ds.b, catalog);
  Rng rng(1);
  const CandidateSet sample = SamplePairs(ds.candidates, 0.01, rng, 100);

  RuleGeneratorConfig config;
  config.num_rules = rules;
  config.feature_pool = 32;
  config.seed = 3;
  RuleGenerator gen(ctx, sample, config);
  MatchingFunction fn = gen.Generate();
  const CostModel model = CostModel::EstimateForFunction(fn, ctx, sample);

  std::printf("per-rule estimates (first 10 rules, analyst order):\n");
  std::printf("%-6s %6s %12s %12s\n", "rule", "preds", "cost_us", "sel");
  for (size_t i = 0; i < std::min<size_t>(10, fn.num_rules()); ++i) {
    const Rule& r = fn.rule(i);
    std::printf("%-6s %6zu %12.2f %12.5f\n", r.name().c_str(), r.size(),
                model.RuleCostNoMemo(r), model.RuleSelectivity(r));
  }

  std::printf("\nordering comparison over %zu rules, %zu pairs:\n", rules,
              ds.candidates.size());
  std::printf("%-18s %12s %12s %14s\n", "strategy", "model_ms",
              "actual_ms", "computations");
  Rng order_rng(7);
  for (const OrderingStrategy s :
       {OrderingStrategy::kAsWritten, OrderingStrategy::kRandom,
        OrderingStrategy::kIndependent, OrderingStrategy::kGreedyCost,
        OrderingStrategy::kGreedyReduction}) {
    MatchingFunction ordered = fn;
    ApplyOrdering(ordered, s, model, &order_rng);
    const double model_ms = model.EstimateRuntimeMs(
        ordered, ds.candidates.size(), /*with_memo=*/true);
    MemoMatcher matcher(MemoMatcher::Options{.check_cache_first = true});
    Stopwatch timer;
    const MatchResult result = matcher.Run(ordered, ds.candidates, ctx);
    std::printf("%-18s %12.1f %12.1f %14zu\n", OrderingStrategyName(s),
                model_ms, timer.ElapsedMillis(),
                result.stats.feature_computations);
  }
  return 0;
}
